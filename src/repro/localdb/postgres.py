"""Postgres-flavoured component DBMS.

Postgres semantics are close to the global MYRIAD dialect: the empty string
is distinct from NULL, LIMIT/OFFSET work natively, TRUE/FALSE literals and
BOOLEAN columns exist, and ``NOW()`` is the clock function.  The subclass
mostly pins the dialect used by the gateway printer.
"""

from __future__ import annotations

from repro.localdb.dbms import LocalDBMS
from repro.sql import POSTGRES_DIALECT


class PostgresDBMS(LocalDBMS):
    """Component DBMS speaking the Postgres dialect."""

    dialect = POSTGRES_DIALECT
