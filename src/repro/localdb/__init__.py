"""Component DBMS simulators (the paper's Oracle and Postgres back ends)."""

from repro.localdb.dbms import LocalDBMS, Session
from repro.localdb.oracle import OracleDBMS
from repro.localdb.postgres import PostgresDBMS

__all__ = ["LocalDBMS", "Session", "OracleDBMS", "PostgresDBMS"]
