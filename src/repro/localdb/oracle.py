"""Oracle-flavoured component DBMS.

Models the Oracle v7 semantics that matter to a federation layer:

- the empty string is NULL (stored values and literals alike)
- no ``LIMIT``: row limiting arrives as a ``ROWNUM <= n`` predicate, which
  this DBMS recognises and converts back into a limit
- ``SYSDATE`` instead of ``NOW()`` (handled by the shared function table)
- no BOOLEAN type: the dialect maps it to NUMBER(1); TRUE/FALSE literals
  arrive as 1/0 from the gateway printer
"""

from __future__ import annotations

from repro.localdb.dbms import LocalDBMS
from repro.sql import ORACLE_DIALECT, ast


class OracleDBMS(LocalDBMS):
    """Component DBMS speaking the Oracle dialect."""

    dialect = ORACLE_DIALECT

    def adapt_statement(self, statement: ast.Statement) -> ast.Statement:
        statement = _nullify_empty_strings(statement)
        if isinstance(statement, ast.Select):
            statement = _rownum_to_limit(statement)
        elif isinstance(statement, ast.SetOperation):
            statement.left = self.adapt_statement(statement.left)
            statement.right = self.adapt_statement(statement.right)
        return statement

    def adapt_stored_value(self, value: object) -> object:
        if value == "":
            return None
        return value


def _nullify_empty_strings(statement: ast.Statement) -> ast.Statement:
    """Replace every ``''`` literal with NULL (Oracle semantics)."""
    from repro.engine.executor import _transform_statement_expressions

    def replace(expr: ast.Expression) -> ast.Expression:
        if isinstance(expr, ast.Literal) and expr.value == "" and isinstance(
            expr.value, str
        ):
            return ast.Literal(None)
        return expr

    return _transform_statement_expressions(statement, replace)


def _rownum_to_limit(select: ast.Select) -> ast.Select:
    """Recognise ``ROWNUM <= n`` / ``ROWNUM < n`` conjuncts as LIMIT."""
    conjuncts = ast.split_conjuncts(select.where)
    kept: list[ast.Expression] = []
    limit = select.limit
    for conjunct in conjuncts:
        bound = _rownum_bound(conjunct)
        if bound is not None:
            limit = bound if limit is None else min(limit, bound)
        else:
            kept.append(conjunct)
    if limit != select.limit:
        select.where = ast.conjoin(kept)
        select.limit = limit
    # Derived tables may carry their own ROWNUM predicates.
    for ref in select.from_clause:
        _adapt_ref(ref)
    return select


def _adapt_ref(ref: ast.TableRef) -> None:
    if isinstance(ref, ast.SubqueryRef) and isinstance(ref.query, ast.Select):
        _rownum_to_limit(ref.query)
    elif isinstance(ref, ast.Join):
        _adapt_ref(ref.left)
        _adapt_ref(ref.right)


def _rownum_bound(expr: ast.Expression) -> int | None:
    if not isinstance(expr, ast.BinaryOp):
        return None
    if expr.op not in ("<", "<="):
        return None
    left, right = expr.left, expr.right
    if (
        isinstance(left, ast.ColumnRef)
        and left.table is None
        and left.name.upper() == "ROWNUM"
        and isinstance(right, ast.Literal)
        and isinstance(right.value, int)
    ):
        return right.value if expr.op == "<=" else right.value - 1
    return None
