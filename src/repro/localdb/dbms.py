"""Component DBMS: a complete local database behind a session API.

A :class:`LocalDBMS` bundles catalog + engine + 2PL lock manager + WAL +
transaction manager, exactly the stack MYRIAD assumed inside each autonomous
component system.  Gateways talk to it only through :class:`Session` — the
same way the real prototype talked to Oracle/Postgres through embedded SQL —
so local autonomy is a hard boundary in the code, too.

Dialect subclasses (:mod:`repro.localdb.oracle`,
:mod:`repro.localdb.postgres`) override the statement-adaptation hooks to
model the semantic quirks that make heterogeneous integration interesting.
"""

from __future__ import annotations

import datetime
import itertools
import threading
from collections.abc import Callable

from repro.concurrency import (
    LocalTransaction,
    LocalTransactionManager,
    TxnMutator,
)
from repro.engine import LocalEngine, Mutator, ResultSet
from repro.errors import TransactionAborted, TransactionError
from repro.sql import GLOBAL_DIALECT, Dialect, ast, parse_statement
from repro.storage import Catalog

_dbms_counter = itertools.count(1)


class LocalDBMS:
    """One autonomous component database."""

    #: Dialect this DBMS speaks; gateways print SQL for it accordingly.
    dialect: Dialect = GLOBAL_DIALECT

    def __init__(
        self,
        name: str | None = None,
        lock_timeout: float | None = 5.0,
        clock: Callable[[], datetime.datetime] | None = None,
        functions: dict[str, Callable] | None = None,
        mvcc_reads: bool = True,
        vectorized: bool = False,
    ):
        self.name = name or f"dbms{next(_dbms_counter)}"
        #: When True (default), autocommit SELECTs and ``BEGIN READ ONLY``
        #: transactions run against an MVCC snapshot — no table locks, no
        #: WAL records, never blocked by writers.  False restores the pure
        #: 2PL read behaviour (the E16 baseline).
        self.mvcc_reads = mvcc_reads
        self.catalog = Catalog(self.name)
        self.transactions = LocalTransactionManager(lock_timeout=lock_timeout)
        # vectorized: SELECTs run batch-at-a-time on the columnar engine
        # (identical results, same rows_scanned accounting; see
        # repro.engine.columnar).  Off by default — the E20 baseline.
        self.engine = LocalEngine(
            self.catalog,
            functions=functions,
            now=clock,
            vectorized=vectorized,
        )
        self._session_counter = itertools.count(1)
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def connect(self) -> "Session":
        with self._mutex:
            session_id = f"{self.name}-s{next(self._session_counter)}"
        return Session(self, session_id)

    def execute(self, sql: str | ast.Statement, params=None) -> ResultSet | int:
        """One-shot autocommit execution on a throwaway session."""
        return self.connect().execute(sql, params)

    def execute_script(self, script: str) -> None:
        """Run a ';'-separated script in autocommit mode.

        If a statement fails — or the script opens a ``BEGIN`` it never
        commits — any transaction still open on the throwaway session is
        rolled back before the session is discarded, so a broken script
        can never leak table locks.
        """
        from repro.sql import parse_script

        session = self.connect()
        try:
            for statement in parse_script(script):
                session.execute(statement)
        finally:
            if session.in_transaction:
                session.rollback()

    # ------------------------------------------------------------------
    # Dialect adaptation hooks
    # ------------------------------------------------------------------

    def adapt_statement(self, statement: ast.Statement) -> ast.Statement:
        """Rewrite an incoming statement per this DBMS's semantics."""
        return statement

    def adapt_stored_value(self, value: object) -> object:
        """Transform a value before it is stored (e.g. Oracle '' → NULL)."""
        return value

    # ------------------------------------------------------------------
    # Introspection used by gateways and tools
    # ------------------------------------------------------------------

    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    def table_schema(self, name: str):
        return self.catalog.get_table(name).schema

    def stats(self, table_name: str, refresh: bool = False):
        return self.catalog.stats(table_name, refresh)


class Session:
    """A connection to one LocalDBMS with optional explicit transactions.

    Thread ownership: a session is a single-client object — the intended
    model is one thread per session (gateways open one per global-txn
    branch, the serving layer one per client).  As a safety net every
    public method serialises on an internal reentrant lock, so accidental
    sharing degrades to serialisation instead of corrupting ``txn`` state.

    Read paths: when the DBMS has ``mvcc_reads`` enabled, autocommit
    SELECTs and ``begin(read_only=True)`` transactions execute against an
    MVCC snapshot — no table locks, no WAL traffic, immune to writer
    blocking — while explicit read-write transactions (and global-txn
    branches) keep strict-2PL locking reads for serialisability.
    """

    def __init__(self, dbms: LocalDBMS, session_id: str):
        self.dbms = dbms
        self.session_id = session_id
        self.txn: LocalTransaction | None = None
        #: Overrides the DBMS-level lock timeout for this session, if set.
        self.lock_timeout: float | None = None
        #: Per-session monotonic transaction counter: successive
        #: transactions get distinct ids (``<session>-t1``, ``-t2`` ...)
        #: so their BEGIN/COMMIT WAL records stay distinguishable.
        self._txn_seq = itertools.count(1)
        #: Read view of an open read-only transaction, else None.
        self._snapshot = None
        self._serial = threading.RLock()

    # ------------------------------------------------------------------
    # Transaction control
    # ------------------------------------------------------------------

    def begin(
        self, global_id: object | None = None, read_only: bool = False
    ) -> LocalTransaction | None:
        """Open a transaction.

        ``read_only=True`` opens a snapshot-read transaction instead: every
        statement until commit/rollback reads the same MVCC snapshot,
        acquires no locks, and DML is rejected.  Returns the
        :class:`LocalTransaction` (or ``None`` for read-only)."""
        with self._serial:
            if self.txn is not None or self._snapshot is not None:
                raise TransactionError(
                    f"session {self.session_id} already has an open transaction"
                )
            if read_only:
                if global_id is not None:
                    raise TransactionError(
                        "a global-transaction branch cannot be read-only"
                    )
                self._snapshot = self.dbms.transactions.begin_snapshot()
                return None
            self.txn = self.dbms.transactions.begin(
                f"{self.session_id}-t{next(self._txn_seq)}",
                global_id=global_id,
            )
            return self.txn

    def commit(self) -> None:
        with self._serial:
            if self._snapshot is not None:
                self._snapshot.release()
                self._snapshot = None
                return
            if self.txn is None:
                return
            self.dbms.transactions.commit(self.txn)
            self.txn = None

    def rollback(self) -> None:
        with self._serial:
            if self._snapshot is not None:
                self._snapshot.release()
                self._snapshot = None
                return
            if self.txn is None:
                return
            self.dbms.transactions.abort(self.txn)
            self.txn = None

    @property
    def in_transaction(self) -> bool:
        return self.txn is not None or self._snapshot is not None

    @property
    def read_only(self) -> bool:
        """True inside an open ``BEGIN READ ONLY`` transaction."""
        return self._snapshot is not None

    # -- 2PC participant pass-through (used by the gateway) ---------------

    def prepare(self) -> bool:
        with self._serial:
            if self.txn is None:
                raise TransactionError(
                    "nothing to prepare: no open transaction"
                )
            return self.dbms.transactions.prepare(self.txn)

    def commit_prepared(self) -> None:
        with self._serial:
            if self.txn is None:
                raise TransactionError("no prepared transaction")
            self.dbms.transactions.commit_prepared(self.txn)
            self.txn = None

    def rollback_prepared(self) -> None:
        with self._serial:
            if self.txn is None:
                raise TransactionError("no prepared transaction")
            self.dbms.transactions.abort_prepared(self.txn)
            self.txn = None

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def execute(
        self, sql: str | ast.Statement, params: list[object] | None = None
    ) -> ResultSet | int:
        statement = parse_statement(sql) if isinstance(sql, str) else sql
        with self._serial:
            return self._execute_statement(statement, params)

    def _execute_statement(
        self, statement: ast.Statement, params: list[object] | None
    ) -> ResultSet | int:
        if isinstance(statement, ast.BeginTransaction):
            self.begin(read_only=statement.read_only)
            return 0
        if isinstance(statement, ast.CommitTransaction):
            self.commit()
            return 0
        if isinstance(statement, ast.RollbackTransaction):
            self.rollback()
            return 0

        statement = self.dbms.adapt_statement(statement)
        is_query = isinstance(statement, (ast.Select, ast.SetOperation))

        if self._snapshot is not None:
            # Read-only transaction: repeatable snapshot reads, no locks.
            if not is_query:
                raise TransactionError(
                    f"session {self.session_id}: read-only transaction "
                    f"cannot execute {type(statement).__name__}"
                )
            return self.dbms.engine.execute(
                statement, params, snapshot=self._snapshot
            )

        if is_query and self.txn is None and self.dbms.mvcc_reads:
            # Autocommit read: one-statement snapshot, no locks, no WAL.
            snapshot = self.dbms.transactions.begin_snapshot()
            try:
                return self.dbms.engine.execute(
                    statement, params, snapshot=snapshot
                )
            finally:
                snapshot.release()

        autocommit = self.txn is None
        if autocommit:
            self.begin()
        mutator = TxnMutator(
            self.dbms.transactions,
            self.txn,
            lock_timeout=self.lock_timeout,
        )
        try:
            result = self.dbms.engine.execute(statement, params, mutator=mutator)
        except TransactionAborted:
            # Deadlock victim or lock timeout: the whole local transaction
            # rolls back (the paper's model: the gateway reports upward and
            # the global transaction aborts).
            self.rollback()
            raise
        except Exception:
            if autocommit:
                self.rollback()
            raise
        if autocommit:
            self.commit()
        return result

    def query(self, sql: str, params: list[object] | None = None) -> ResultSet:
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise TransactionError("statement did not produce rows")
        return result


def make_mutator_for(session: Session) -> Mutator:
    """Expose a session's transactional mutator (for advanced callers)."""
    if session.txn is None:
        raise TransactionError("session has no open transaction")
    return TxnMutator(session.dbms.transactions, session.txn)
