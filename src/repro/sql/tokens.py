"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Kinds of lexical tokens produced by :class:`repro.sql.lexer.Lexer`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    QUOTED_IDENTIFIER = "quoted_identifier"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    PARAMETER = "parameter"  # ? positional parameter
    EOF = "eof"


#: Reserved words recognised by the parser.  Anything not in this set lexes
#: as an identifier.  The set is the union of what the MYRIAD global SQL
#: dialect and both gateway dialects need.
KEYWORDS = frozenset(
    {
        "ALL",
        "AND",
        "AS",
        "ASC",
        "BEGIN",
        "BETWEEN",
        "BOOLEAN",
        "BY",
        "CASE",
        "CAST",
        "CHAR",
        "COMMIT",
        "CREATE",
        "CROSS",
        "DATE",
        "DECIMAL",
        "DEFAULT",
        "DELETE",
        "DESC",
        "DISTINCT",
        "DOUBLE",
        "DROP",
        "ELSE",
        "END",
        "ESCAPE",
        "EXCEPT",
        "EXISTS",
        "FALSE",
        "FLOAT",
        "FROM",
        "FULL",
        "GROUP",
        "HAVING",
        "IF",
        "IN",
        "INDEX",
        "INNER",
        "INSERT",
        "INT",
        "INTEGER",
        "INTERSECT",
        "INTO",
        "IS",
        "JOIN",
        "KEY",
        "LEFT",
        "LIKE",
        "LIMIT",
        "NOT",
        "NULL",
        "NUMBER",
        "NUMERIC",
        "OFFSET",
        "ON",
        "OR",
        "ORDER",
        "OUTER",
        "PRIMARY",
        "RIGHT",
        "ROLLBACK",
        "ROWNUM",
        "SELECT",
        "SET",
        "SMALLINT",
        "TABLE",
        "TEXT",
        "THEN",
        "TIMESTAMP",
        "TRANSACTION",
        "TRUE",
        "UNION",
        "UNIQUE",
        "UPDATE",
        "USING",
        "VALUES",
        "VARCHAR",
        "VARCHAR2",
        "WHEN",
        "WHERE",
        "WORK",
    }
)

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPERATORS = ("<>", "!=", ">=", "<=", "||")

SINGLE_CHAR_OPERATORS = frozenset("+-*/%<>=")

PUNCTUATION = frozenset("(),.;")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``value`` preserves the original spelling except for keywords, which are
    upper-cased so the parser can compare case-insensitively.
    """

    type: TokenType
    value: str
    line: int
    column: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        """Return True if this token has the given type (and value, if given)."""
        if self.type is not token_type:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r} @{self.line}:{self.column})"
