"""Hand-written SQL lexer.

Turns SQL text into a list of :class:`~repro.sql.tokens.Token`.  Supports:

- keywords (case-insensitive) and identifiers (``[A-Za-z_][A-Za-z0-9_$#]*``)
- double-quoted delimited identifiers (``"Weird Name"``)
- single-quoted string literals with ``''`` escaping
- integer and float literals (including ``1e-3`` exponents)
- line comments (``-- ...``) and block comments (``/* ... */``)
- multi-character operators (``<>``, ``!=``, ``>=``, ``<=``, ``||``)
- ``?`` positional parameters
"""

from __future__ import annotations

from repro.errors import LexerError
from repro.sql.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789$#")
_DIGITS = frozenset("0123456789")


class Lexer:
    """Single-pass scanner over SQL source text."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- helpers ----------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.text):
            return ""
        return self.text[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self.pos, self.line, self.column)

    # -- scanning ---------------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Scan the whole input and return tokens, ending with an EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.text):
                tokens.append(Token(TokenType.EOF, "", self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while self.pos < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexerError(
                        "unterminated block comment", self.pos, start_line, start_col
                    )
            else:
                return

    def _next_token(self) -> Token:
        ch = self._peek()
        line, column = self.line, self.column

        if ch in _IDENT_START:
            return self._lex_word(line, column)
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, column)
        if ch == "'":
            return self._lex_string(line, column)
        if ch == '"':
            return self._lex_quoted_identifier(line, column)
        if ch == "?":
            self._advance()
            return Token(TokenType.PARAMETER, "?", line, column)

        for op in MULTI_CHAR_OPERATORS:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenType.OPERATOR, op, line, column)
        if ch in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token(TokenType.OPERATOR, ch, line, column)
        if ch in PUNCTUATION:
            self._advance()
            return Token(TokenType.PUNCTUATION, ch, line, column)

        raise self._error(f"unexpected character {ch!r}")

    def _lex_word(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.text) and self._peek() in _IDENT_CONT:
            self._advance()
        word = self.text[start : self.pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, line, column)
        return Token(TokenType.IDENTIFIER, word, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        is_float = False
        while self._peek() in _DIGITS:
            self._advance()
        if self._peek() == "." and self._peek(1) in _DIGITS:
            is_float = True
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        elif self._peek() == "." and self._peek(1) not in _IDENT_START:
            # trailing dot as in "1." — treat as float
            is_float = True
            self._advance()
        if self._peek() in ("e", "E"):
            lookahead = 1
            if self._peek(1) in ("+", "-"):
                lookahead = 2
            if self._peek(lookahead) in _DIGITS:
                is_float = True
                self._advance(lookahead)
                while self._peek() in _DIGITS:
                    self._advance()
        text = self.text[start : self.pos]
        token_type = TokenType.FLOAT if is_float else TokenType.INTEGER
        return Token(token_type, text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise LexerError("unterminated string literal", self.pos, line, column)
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":  # escaped quote
                    parts.append("'")
                    self._advance(2)
                else:
                    self._advance()
                    return Token(TokenType.STRING, "".join(parts), line, column)
            else:
                parts.append(ch)
                self._advance()

    def _lex_quoted_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise LexerError(
                    "unterminated quoted identifier", self.pos, line, column
                )
            ch = self._peek()
            if ch == '"':
                if self._peek(1) == '"':
                    parts.append('"')
                    self._advance(2)
                else:
                    self._advance()
                    return Token(
                        TokenType.QUOTED_IDENTIFIER, "".join(parts), line, column
                    )
            else:
                parts.append(ch)
                self._advance()


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize ``text`` and return the token list."""
    return Lexer(text).tokenize()
