"""Recursive-descent parser for the MYRIAD SQL dialect.

Produces :mod:`repro.sql.ast` nodes.  The grammar covers the subset MYRIAD
needs end-to-end: SELECT blocks with explicit/implicit joins, subqueries
(derived tables, IN/EXISTS/scalar), aggregation, set operations, DML
(INSERT/UPDATE/DELETE), DDL (CREATE/DROP TABLE, CREATE INDEX), and
transaction-control statements.

Usage::

    from repro.sql import parse_statement, parse_query
    stmt = parse_statement("SELECT name FROM emp WHERE sal > 1000")
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType

_COMPARISON_OPS = frozenset({"=", "<>", "!=", "<", ">", "<=", ">="})
_TYPE_KEYWORDS = frozenset(
    {
        "INT",
        "INTEGER",
        "SMALLINT",
        "FLOAT",
        "DOUBLE",
        "NUMBER",
        "NUMERIC",
        "DECIMAL",
        "CHAR",
        "VARCHAR",
        "VARCHAR2",
        "TEXT",
        "DATE",
        "TIMESTAMP",
        "BOOLEAN",
    }
)


class Parser:
    """Parses one or more SQL statements from a token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0
        self._parameter_count = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self.current
        found = token.value or "<end of input>"
        return ParseError(f"{message}, found {found!r}", token.line, token.column)

    def _at_keyword(self, *keywords: str) -> bool:
        token = self.current
        return token.type is TokenType.KEYWORD and token.value in keywords

    def _accept_keyword(self, *keywords: str) -> str | None:
        if self._at_keyword(*keywords):
            return self._advance().value
        return None

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            raise self._error(f"expected {keyword}")

    def _accept_soft_keyword(self, word: str) -> bool:
        """Accept a non-reserved word matched by value (e.g. READ, ONLY)."""
        token = self.current
        if (
            token.type is TokenType.IDENTIFIER
            and token.value.upper() == word
        ):
            self._advance()
            return True
        return False

    def _at_punct(self, value: str) -> bool:
        return self.current.matches(TokenType.PUNCTUATION, value)

    def _accept_punct(self, value: str) -> bool:
        if self._at_punct(value):
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise self._error(f"expected {value!r}")

    def _at_operator(self, *values: str) -> bool:
        token = self.current
        return token.type is TokenType.OPERATOR and token.value in values

    def _accept_operator(self, *values: str) -> str | None:
        if self._at_operator(*values):
            return self._advance().value
        return None

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self.current
        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            self._advance()
            return token.value
        # Allow non-reserved-looking keywords (type names etc.) as identifiers
        if token.type is TokenType.KEYWORD and token.value in _TYPE_KEYWORDS:
            self._advance()
            return token.value
        raise self._error(f"expected {what}")

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Parse exactly one statement (optionally ';'-terminated)."""
        statement = self._parse_statement()
        self._accept_punct(";")
        if self.current.type is not TokenType.EOF:
            raise self._error("unexpected input after statement")
        return statement

    def parse_script(self) -> list[ast.Statement]:
        """Parse a ';'-separated sequence of statements."""
        statements: list[ast.Statement] = []
        while self.current.type is not TokenType.EOF:
            statements.append(self._parse_statement())
            while self._accept_punct(";"):
                pass
        return statements

    def _parse_statement(self) -> ast.Statement:
        if self._at_keyword("SELECT") or self._at_punct("("):
            return self._parse_query()
        if self._at_keyword("INSERT"):
            return self._parse_insert()
        if self._at_keyword("UPDATE"):
            return self._parse_update()
        if self._at_keyword("DELETE"):
            return self._parse_delete()
        if self._at_keyword("CREATE"):
            return self._parse_create()
        if self._at_keyword("DROP"):
            return self._parse_drop()
        if self._accept_keyword("BEGIN"):
            self._accept_keyword("TRANSACTION", "WORK")
            # READ ONLY are soft keywords (still usable as identifiers
            # elsewhere), so match them as identifier tokens by value.
            if self._accept_soft_keyword("READ"):
                if not self._accept_soft_keyword("ONLY"):
                    raise self._error("expected ONLY after READ")
                return ast.BeginTransaction(read_only=True)
            return ast.BeginTransaction()
        if self._accept_keyword("COMMIT"):
            self._accept_keyword("TRANSACTION", "WORK")
            return ast.CommitTransaction()
        if self._accept_keyword("ROLLBACK"):
            self._accept_keyword("TRANSACTION", "WORK")
            return ast.RollbackTransaction()
        raise self._error("expected a statement")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _parse_query(self) -> ast.Query:
        """Parse a query with optional set operations and trailing clauses."""
        query = self._parse_query_term()
        while True:
            kind: ast.SetOpKind | None = None
            if self._accept_keyword("UNION"):
                if self._accept_keyword("ALL"):
                    kind = ast.SetOpKind.UNION_ALL
                else:
                    kind = ast.SetOpKind.UNION
            elif self._accept_keyword("INTERSECT"):
                kind = ast.SetOpKind.INTERSECT
            elif self._accept_keyword("EXCEPT"):
                kind = ast.SetOpKind.EXCEPT
            if kind is None:
                break
            parenthesised = self._at_punct("(")
            right = self._parse_query_term()
            query = ast.SetOperation(kind, query, right)
            # A trailing ORDER BY/LIMIT belongs to the whole set operation,
            # but an unparenthesised right-hand SELECT block will already
            # have consumed it; hoist it up.
            if isinstance(right, ast.Select) and not parenthesised:
                query.order_by = right.order_by
                query.limit = right.limit
                query.offset = right.offset
                right.order_by = []
                right.limit = None
                right.offset = None
        if isinstance(query, ast.SetOperation):
            more_order = self._parse_order_by()
            if more_order:
                query.order_by = more_order
            limit, offset = self._parse_limit_offset()
            if limit is not None:
                query.limit = limit
            if offset is not None:
                query.offset = offset
        return query

    def _parse_query_term(self) -> ast.Query:
        if self._accept_punct("("):
            query = self._parse_query()
            self._expect_punct(")")
            return query
        return self._parse_select_block()

    def _parse_select_block(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")

        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())

        from_clause: list[ast.TableRef] = []
        if self._accept_keyword("FROM"):
            from_clause.append(self._parse_table_ref())
            while self._accept_punct(","):
                from_clause.append(self._parse_table_ref())

        where = self._parse_expression() if self._accept_keyword("WHERE") else None

        group_by: list[ast.Expression] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expression())
            while self._accept_punct(","):
                group_by.append(self._parse_expression())

        having = self._parse_expression() if self._accept_keyword("HAVING") else None
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit_offset()

        return ast.Select(
            items=items,
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_order_by(self) -> list[ast.OrderItem]:
        if not self._accept_keyword("ORDER"):
            return []
        self._expect_keyword("BY")
        items = [self._parse_order_item()]
        while self._accept_punct(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self._parse_expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expression, ascending)

    def _parse_limit_offset(self) -> tuple[int | None, int | None]:
        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_integer("LIMIT value")
        if self._accept_keyword("OFFSET"):
            offset = self._parse_integer("OFFSET value")
        return limit, offset

    def _parse_integer(self, what: str) -> int:
        token = self.current
        if token.type is not TokenType.INTEGER:
            raise self._error(f"expected integer {what}")
        self._advance()
        return int(token.value)

    def _parse_select_item(self) -> ast.SelectItem:
        if self._accept_operator("*"):
            return ast.SelectItem(ast.Star())
        # t.* — identifier '.' '*'
        if (
            self.current.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER)
            and self._peek(1).matches(TokenType.PUNCTUATION, ".")
            and self._peek(2).matches(TokenType.OPERATOR, "*")
        ):
            table = self._advance().value
            self._advance()  # .
            self._advance()  # *
            return ast.SelectItem(ast.Star(table))
        expression = self._parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self.current.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            alias = self._advance().value
        return ast.SelectItem(expression, alias)

    # ------------------------------------------------------------------
    # Table references
    # ------------------------------------------------------------------

    def _parse_table_ref(self) -> ast.TableRef:
        ref = self._parse_table_primary()
        while True:
            join_type = self._parse_join_type()
            if join_type is None:
                return ref
            right = self._parse_table_primary()
            condition: ast.Expression | None = None
            using: list[str] = []
            if join_type is not ast.JoinType.CROSS:
                if self._accept_keyword("ON"):
                    condition = self._parse_expression()
                elif self._accept_keyword("USING"):
                    self._expect_punct("(")
                    using.append(self._expect_identifier("column name"))
                    while self._accept_punct(","):
                        using.append(self._expect_identifier("column name"))
                    self._expect_punct(")")
                else:
                    raise self._error("expected ON or USING after JOIN")
            ref = ast.Join(ref, right, join_type, condition, using)

    def _parse_join_type(self) -> ast.JoinType | None:
        if self._accept_keyword("CROSS"):
            self._expect_keyword("JOIN")
            return ast.JoinType.CROSS
        if self._accept_keyword("INNER"):
            self._expect_keyword("JOIN")
            return ast.JoinType.INNER
        if self._accept_keyword("LEFT"):
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return ast.JoinType.LEFT
        if self._accept_keyword("RIGHT"):
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return ast.JoinType.RIGHT
        if self._accept_keyword("FULL"):
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return ast.JoinType.FULL
        if self._accept_keyword("JOIN"):
            return ast.JoinType.INNER
        return None

    def _parse_table_primary(self) -> ast.TableRef:
        if self._accept_punct("("):
            # Either a derived table or a parenthesised join
            if self._at_keyword("SELECT") or self._at_punct("("):
                query = self._parse_query()
                self._expect_punct(")")
                self._accept_keyword("AS")
                alias = self._expect_identifier("derived-table alias")
                return ast.SubqueryRef(query, alias)
            ref = self._parse_table_ref()
            self._expect_punct(")")
            return ref
        name = self._expect_identifier("table name")
        # Allow schema-qualified names: db.table
        if self._at_punct(".") and self._peek(1).type in (
            TokenType.IDENTIFIER,
            TokenType.QUOTED_IDENTIFIER,
        ):
            self._advance()
            name = f"{name}.{self._advance().value}"
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self.current.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            alias = self._advance().value
        return ast.TableName(name, alias)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_additive()

        negated = bool(self._accept_keyword("NOT"))

        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)

        if self._accept_keyword("LIKE"):
            pattern = self._parse_additive()
            op = "NOT LIKE" if negated else "LIKE"
            return ast.BinaryOp(op, left, pattern)

        if self._accept_keyword("IN"):
            self._expect_punct("(")
            if self._at_keyword("SELECT"):
                query = self._parse_query()
                self._expect_punct(")")
                return ast.InSubquery(left, query, negated)
            items = [self._parse_expression()]
            while self._accept_punct(","):
                items.append(self._parse_expression())
            self._expect_punct(")")
            return ast.InList(left, items, negated)

        if negated:
            raise self._error("expected BETWEEN, LIKE or IN after NOT")

        if self._accept_keyword("IS"):
            is_negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return ast.IsNull(left, is_negated)

        op = self._accept_operator(*_COMPARISON_OPS)
        if op is not None:
            if op == "!=":
                op = "<>"
            right = self._parse_additive()
            return ast.BinaryOp(op, left, right)
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            op = self._accept_operator("+", "-", "||")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self._parse_unary())

    def _parse_unary(self) -> ast.Expression:
        op = self._accept_operator("-", "+")
        if op is not None:
            return ast.UnaryOp(op, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self.current

        if token.type is TokenType.INTEGER:
            self._advance()
            return ast.Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self._advance()
            return ast.Literal(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PARAMETER:
            self._advance()
            parameter = ast.Parameter(self._parameter_count)
            self._parameter_count += 1
            return parameter

        if token.type is TokenType.KEYWORD:
            if self._accept_keyword("NULL"):
                return ast.Literal(None)
            if self._accept_keyword("TRUE"):
                return ast.Literal(True)
            if self._accept_keyword("FALSE"):
                return ast.Literal(False)
            if self._accept_keyword("DATE"):
                if self.current.type is TokenType.STRING:
                    return ast.Cast(ast.Literal(self._advance().value), "DATE")
                return ast.ColumnRef("DATE")
            if self._accept_keyword("CASE"):
                return self._parse_case()
            if self._accept_keyword("CAST"):
                self._expect_punct("(")
                operand = self._parse_expression()
                self._expect_keyword("AS")
                type_name, params = self._parse_type_name()
                self._expect_punct(")")
                full = type_name
                if params:
                    full = f"{type_name}({','.join(str(p) for p in params)})"
                return ast.Cast(operand, full)
            if self._accept_keyword("EXISTS"):
                self._expect_punct("(")
                query = self._parse_query()
                self._expect_punct(")")
                return ast.Exists(query)
            if self._accept_keyword("ROWNUM"):
                return ast.ColumnRef("ROWNUM")

        if self._accept_punct("("):
            if self._at_keyword("SELECT"):
                query = self._parse_query()
                self._expect_punct(")")
                return ast.ScalarSubquery(query)
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression

        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            return self._parse_identifier_expression()

        raise self._error("expected an expression")

    def _parse_identifier_expression(self) -> ast.Expression:
        name = self._advance().value

        if self._at_punct("("):
            return self._parse_function_call(name)

        if self._at_punct("."):
            nxt = self._peek(1)
            if nxt.matches(TokenType.OPERATOR, "*"):
                self._advance()
                self._advance()
                return ast.Star(name)
            if nxt.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
                self._advance()
                column = self._advance().value
                return ast.ColumnRef(column, table=name)

        return ast.ColumnRef(name)

    def _parse_function_call(self, name: str) -> ast.Expression:
        self._expect_punct("(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        args: list[ast.Expression] = []
        if not self._at_punct(")"):
            if self._accept_operator("*"):
                args.append(ast.Star())
            else:
                args.append(self._parse_expression())
                while self._accept_punct(","):
                    args.append(self._parse_expression())
        self._expect_punct(")")
        return ast.FunctionCall(name.upper(), args, distinct)

    def _parse_case(self) -> ast.Expression:
        operand: ast.Expression | None = None
        if not self._at_keyword("WHEN"):
            operand = self._parse_expression()
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            result = self._parse_expression()
            whens.append((condition, result))
        if not whens:
            raise self._error("CASE requires at least one WHEN clause")
        default = self._parse_expression() if self._accept_keyword("ELSE") else None
        self._expect_keyword("END")
        return ast.Case(operand, whens, default)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier("table name")
        columns: list[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_identifier("column name"))
            while self._accept_punct(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_punct(")")
        if self._accept_keyword("VALUES"):
            rows = [self._parse_value_row()]
            while self._accept_punct(","):
                rows.append(self._parse_value_row())
            return ast.Insert(table, columns, rows)
        if self._at_keyword("SELECT") or self._at_punct("("):
            return ast.Insert(table, columns, [], self._parse_query())
        raise self._error("expected VALUES or SELECT in INSERT")

    def _parse_value_row(self) -> list[ast.Expression]:
        self._expect_punct("(")
        row = [self._parse_expression()]
        while self._accept_punct(","):
            row.append(self._parse_expression())
        self._expect_punct(")")
        return row

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier("table name")
        alias = None
        if self.current.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            alias = self._advance().value
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        where = self._parse_expression() if self._accept_keyword("WHERE") else None
        return ast.Update(table, assignments, where, alias)

    def _parse_assignment(self) -> tuple[str, ast.Expression]:
        column = self._expect_identifier("column name")
        if not self._accept_operator("="):
            raise self._error("expected '=' in assignment")
        return column, self._parse_expression()

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier("table name")
        alias = None
        if self.current.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            alias = self._advance().value
        where = self._parse_expression() if self._accept_keyword("WHERE") else None
        return ast.Delete(table, where, alias)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        unique = bool(self._accept_keyword("UNIQUE"))
        if self._accept_keyword("INDEX"):
            name = self._expect_identifier("index name")
            self._expect_keyword("ON")
            table = self._expect_identifier("table name")
            self._expect_punct("(")
            columns = [self._expect_identifier("column name")]
            while self._accept_punct(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_punct(")")
            return ast.CreateIndex(name, table, columns, unique)
        if unique:
            raise self._error("expected INDEX after CREATE UNIQUE")
        self._expect_keyword("TABLE")
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._expect_identifier("table name")
        self._expect_punct("(")
        columns: list[ast.ColumnDef] = []
        primary_key: list[str] = []
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                self._expect_punct("(")
                primary_key.append(self._expect_identifier("column name"))
                while self._accept_punct(","):
                    primary_key.append(self._expect_identifier("column name"))
                self._expect_punct(")")
            else:
                columns.append(self._parse_column_def())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return ast.CreateTable(name, columns, primary_key, if_not_exists)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_identifier("column name")
        type_name, params = self._parse_type_name()
        column = ast.ColumnDef(name, type_name, tuple(params))
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                column.not_null = True
            elif self._accept_keyword("NULL"):
                pass
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                column.primary_key = True
                column.not_null = True
            elif self._accept_keyword("UNIQUE"):
                column.unique = True
            elif self._accept_keyword("DEFAULT"):
                column.default = self._parse_expression()
            else:
                return column

    def _parse_type_name(self) -> tuple[str, list[int]]:
        token = self.current
        if token.type is TokenType.KEYWORD and token.value in _TYPE_KEYWORDS:
            self._advance()
            type_name = token.value
            if type_name == "DOUBLE":
                self._accept_keyword("PRECISION")
        elif token.type is TokenType.IDENTIFIER:
            self._advance()
            type_name = token.value.upper()
        else:
            raise self._error("expected a type name")
        params: list[int] = []
        if self._accept_punct("("):
            params.append(self._parse_integer("type parameter"))
            while self._accept_punct(","):
                params.append(self._parse_integer("type parameter"))
            self._expect_punct(")")
        return type_name, params

    def _parse_drop(self) -> ast.DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._expect_identifier("table name")
        return ast.DropTable(name, if_exists)


# ---------------------------------------------------------------------------
# Module-level convenience functions
# ---------------------------------------------------------------------------


def parse_statement(text: str) -> ast.Statement:
    """Parse a single SQL statement."""
    return Parser(text).parse_statement()


def parse_query(text: str) -> ast.Query:
    """Parse a single SELECT/set-operation query, rejecting other statements."""
    statement = parse_statement(text)
    if not isinstance(statement, (ast.Select, ast.SetOperation)):
        raise ParseError("expected a query")
    return statement


def parse_script(text: str) -> list[ast.Statement]:
    """Parse a ';'-separated SQL script into a list of statements."""
    return Parser(text).parse_script()


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone scalar expression (used for integration mappings)."""
    parser = Parser(text)
    expression = parser._parse_expression()
    if parser.current.type is not TokenType.EOF:
        raise parser._error("unexpected input after expression")
    return expression
