"""Render :mod:`repro.sql.ast` nodes back to SQL text.

The printer is dialect-aware: gateways use it to translate the rewritten
global query fragments into the SQL understood by each component DBMS
(see :data:`repro.sql.dialect.ORACLE_DIALECT` /
:data:`repro.sql.dialect.POSTGRES_DIALECT`).

Round-trip property: for the global dialect,
``parse_statement(to_sql(stmt)) == stmt`` structurally (modulo redundant
parentheses), which the test suite checks with hypothesis.
"""

from __future__ import annotations

from repro.errors import SQLError
from repro.sql import ast
from repro.sql.dialect import GLOBAL_DIALECT, Dialect

#: Binding strength used to decide where parentheses are required.
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4,
    "<>": 4,
    "<": 4,
    ">": 4,
    "<=": 4,
    ">=": 4,
    "LIKE": 4,
    "NOT LIKE": 4,
    "+": 5,
    "-": 5,
    "||": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


class SQLPrinter:
    """Stateless AST → SQL-text renderer for one dialect."""

    def __init__(self, dialect: Dialect = GLOBAL_DIALECT):
        self.dialect = dialect

    # -- statements ---------------------------------------------------

    def print_statement(self, statement: ast.Statement) -> str:
        if isinstance(statement, ast.Select):
            return self.print_select(statement)
        if isinstance(statement, ast.SetOperation):
            return self.print_set_operation(statement)
        if isinstance(statement, ast.Insert):
            return self._print_insert(statement)
        if isinstance(statement, ast.Update):
            return self._print_update(statement)
        if isinstance(statement, ast.Delete):
            return self._print_delete(statement)
        if isinstance(statement, ast.CreateTable):
            return self._print_create_table(statement)
        if isinstance(statement, ast.DropTable):
            clause = "IF EXISTS " if statement.if_exists else ""
            return f"DROP TABLE {clause}{self._ident(statement.name)}"
        if isinstance(statement, ast.CreateIndex):
            unique = "UNIQUE " if statement.unique else ""
            columns = ", ".join(self._ident(c) for c in statement.columns)
            return (
                f"CREATE {unique}INDEX {self._ident(statement.name)} "
                f"ON {self._ident(statement.table)} ({columns})"
            )
        if isinstance(statement, ast.BeginTransaction):
            return "BEGIN READ ONLY" if statement.read_only else "BEGIN"
        if isinstance(statement, ast.CommitTransaction):
            return "COMMIT"
        if isinstance(statement, ast.RollbackTransaction):
            return "ROLLBACK"
        raise SQLError(f"cannot print statement {type(statement).__name__}")

    def print_query(self, query: ast.Query) -> str:
        if isinstance(query, ast.Select):
            return self.print_select(query)
        return self.print_set_operation(query)

    def print_select(self, select: ast.Select) -> str:
        limit, offset, select = self._adapt_limit(select)
        parts = ["SELECT"]
        if select.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(self._print_select_item(i) for i in select.items))
        if select.from_clause:
            parts.append("FROM")
            parts.append(
                ", ".join(self._print_table_ref(t) for t in select.from_clause)
            )
        if select.where is not None:
            parts.append("WHERE")
            parts.append(self.print_expression(select.where))
        if select.group_by:
            parts.append("GROUP BY")
            parts.append(", ".join(self.print_expression(g) for g in select.group_by))
        if select.having is not None:
            parts.append("HAVING")
            parts.append(self.print_expression(select.having))
        if select.order_by:
            parts.append("ORDER BY")
            parts.append(", ".join(self._print_order_item(o) for o in select.order_by))
        if limit is not None:
            parts.append(f"LIMIT {limit}")
        if offset is not None:
            parts.append(f"OFFSET {offset}")
        return " ".join(parts)

    def _adapt_limit(
        self, select: ast.Select
    ) -> tuple[int | None, int | None, ast.Select]:
        """Handle dialects without LIMIT by rewriting to a ROWNUM predicate.

        Oracle evaluates ROWNUM *before* ORDER BY, so an ordered+limited
        query must be wrapped in a derived table (the classic top-N idiom):
        ``SELECT * FROM (SELECT ... ORDER BY ...) WHERE ROWNUM <= n``.
        """
        if select.limit is None or self.dialect.supports_limit:
            return select.limit, select.offset, select
        if not self.dialect.uses_rownum:
            raise SQLError(
                f"dialect {self.dialect.name} supports neither LIMIT nor ROWNUM"
            )
        rownum_bound = select.limit + (select.offset or 0)
        predicate: ast.Expression = ast.BinaryOp(
            "<=", ast.ColumnRef("ROWNUM"), ast.Literal(rownum_bound)
        )
        if select.order_by or select.group_by or select.having is not None:
            inner = ast.Select(
                items=select.items,
                from_clause=select.from_clause,
                where=select.where,
                group_by=select.group_by,
                having=select.having,
                order_by=select.order_by,
                distinct=select.distinct,
            )
            rewritten = ast.Select(
                items=[ast.SelectItem(ast.Star())],
                from_clause=[ast.SubqueryRef(inner, "__topn")],
                where=predicate,
            )
            return None, None, rewritten
        rewritten = ast.Select(
            items=select.items,
            from_clause=select.from_clause,
            where=ast.conjoin([p for p in (select.where, predicate) if p is not None]),
            group_by=select.group_by,
            having=select.having,
            order_by=select.order_by,
            distinct=select.distinct,
        )
        return None, None, rewritten

    def print_set_operation(self, op: ast.SetOperation) -> str:
        left = self._print_query_term(op.left)
        right = self._print_query_term(op.right)
        text = f"{left} {op.kind.value} {right}"
        if op.order_by:
            text += " ORDER BY " + ", ".join(
                self._print_order_item(o) for o in op.order_by
            )
        if op.limit is not None:
            text += f" LIMIT {op.limit}"
        if op.offset is not None:
            text += f" OFFSET {op.offset}"
        return text

    def _print_query_term(self, query: ast.Query) -> str:
        if isinstance(query, ast.SetOperation):
            return f"({self.print_set_operation(query)})"
        # Parenthesise SELECT terms that carry their own ORDER BY/LIMIT
        if query.order_by or query.limit is not None:
            return f"({self.print_select(query)})"
        return self.print_select(query)

    def _print_select_item(self, item: ast.SelectItem) -> str:
        text = self.print_expression(item.expression)
        if item.alias:
            text += f" AS {self._ident(item.alias)}"
        return text

    def _print_order_item(self, item: ast.OrderItem) -> str:
        direction = "ASC" if item.ascending else "DESC"
        return f"{self.print_expression(item.expression)} {direction}"

    # -- table refs -----------------------------------------------------

    def _print_table_ref(self, ref: ast.TableRef) -> str:
        if isinstance(ref, ast.TableName):
            text = self._ident(ref.name)
            if ref.alias:
                text += f" AS {self._ident(ref.alias)}"
            return text
        if isinstance(ref, ast.SubqueryRef):
            return f"({self.print_query(ref.query)}) AS {self._ident(ref.alias)}"
        if isinstance(ref, ast.Join):
            return self._print_join(ref)
        raise SQLError(f"cannot print table ref {type(ref).__name__}")

    def _print_join(self, join: ast.Join) -> str:
        if (
            join.join_type is ast.JoinType.FULL
            and not self.dialect.supports_full_outer_join
        ):
            raise SQLError(
                f"dialect {self.dialect.name} does not support FULL OUTER JOIN; "
                "the gateway must decompose it"
            )
        left = self._print_table_ref(join.left)
        right = self._print_table_ref(join.right)
        if isinstance(join.right, ast.Join):
            right = f"({right})"
        keyword = {
            ast.JoinType.INNER: "JOIN",
            ast.JoinType.LEFT: "LEFT JOIN",
            ast.JoinType.RIGHT: "RIGHT JOIN",
            ast.JoinType.FULL: "FULL JOIN",
            ast.JoinType.CROSS: "CROSS JOIN",
        }[join.join_type]
        text = f"{left} {keyword} {right}"
        if join.condition is not None:
            text += f" ON {self.print_expression(join.condition)}"
        elif join.using:
            columns = ", ".join(self._ident(c) for c in join.using)
            text += f" USING ({columns})"
        return text

    # -- expressions ----------------------------------------------------

    def print_expression(self, expr: ast.Expression, parent_prec: int = 0) -> str:
        if isinstance(expr, ast.Literal):
            return self._print_literal(expr.value)
        if isinstance(expr, ast.ColumnRef):
            if expr.table:
                return f"{self._ident(expr.table)}.{self._ident(expr.name)}"
            return self._ident(expr.name)
        if isinstance(expr, ast.Star):
            return f"{self._ident(expr.table)}.*" if expr.table else "*"
        if isinstance(expr, ast.Parameter):
            return "?"
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "NOT":
                inner = self.print_expression(expr.operand, 3)
                text = f"NOT {inner}"
                return f"({text})" if parent_prec > 3 else text
            return f"{expr.op}{self.print_expression(expr.operand, 7)}"
        if isinstance(expr, ast.BinaryOp):
            return self._print_binary(expr, parent_prec)
        if isinstance(expr, ast.IsNull):
            negation = " NOT" if expr.negated else ""
            inner = self.print_expression(expr.operand, 5)
            text = f"{inner} IS{negation} NULL"
            return f"({text})" if parent_prec > 3 else text
        if isinstance(expr, ast.Between):
            negation = "NOT " if expr.negated else ""
            text = (
                f"{self.print_expression(expr.operand, 5)} {negation}BETWEEN "
                f"{self.print_expression(expr.low, 5)} AND "
                f"{self.print_expression(expr.high, 5)}"
            )
            return f"({text})" if parent_prec > 3 else text
        if isinstance(expr, ast.InList):
            negation = "NOT " if expr.negated else ""
            items = ", ".join(self.print_expression(i) for i in expr.items)
            text = f"{self.print_expression(expr.operand, 5)} {negation}IN ({items})"
            return f"({text})" if parent_prec > 3 else text
        if isinstance(expr, ast.InSubquery):
            negation = "NOT " if expr.negated else ""
            text = (
                f"{self.print_expression(expr.operand, 5)} {negation}IN "
                f"({self.print_query(expr.query)})"
            )
            return f"({text})" if parent_prec > 3 else text
        if isinstance(expr, ast.Exists):
            negation = "NOT " if expr.negated else ""
            return f"{negation}EXISTS ({self.print_query(expr.query)})"
        if isinstance(expr, ast.ScalarSubquery):
            return f"({self.print_query(expr.query)})"
        if isinstance(expr, ast.FunctionCall):
            return self._print_function(expr)
        if isinstance(expr, ast.Case):
            return self._print_case(expr)
        if isinstance(expr, ast.Cast):
            target = self.dialect.map_type(expr.type_name)
            return f"CAST({self.print_expression(expr.operand)} AS {target})"
        raise SQLError(f"cannot print expression {type(expr).__name__}")

    def _print_binary(self, expr: ast.BinaryOp, parent_prec: int) -> str:
        precedence = _PRECEDENCE.get(expr.op, 4)
        # Comparisons are non-associative in the grammar: both operands of
        # "=" must bind tighter, or "a = b = c" comes out unparseable.
        non_associative = precedence == 4
        left = self.print_expression(
            expr.left, precedence + 1 if non_associative else precedence
        )
        right = self.print_expression(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        if precedence < parent_prec:
            return f"({text})"
        return text

    def _print_function(self, expr: ast.FunctionCall) -> str:
        name = self.dialect.map_function(expr.name)
        if not expr.args and name in ("SYSDATE",):
            return name  # Oracle SYSDATE is parenless
        distinct = "DISTINCT " if expr.distinct else ""
        args = ", ".join(self.print_expression(a) for a in expr.args)
        return f"{name}({distinct}{args})"

    def _print_case(self, expr: ast.Case) -> str:
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(self.print_expression(expr.operand))
        for condition, result in expr.whens:
            parts.append(
                f"WHEN {self.print_expression(condition)} "
                f"THEN {self.print_expression(result)}"
            )
        if expr.default is not None:
            parts.append(f"ELSE {self.print_expression(expr.default)}")
        parts.append("END")
        return " ".join(parts)

    def _print_literal(self, value: object) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            if self.dialect.supports_boolean_literals:
                return "TRUE" if value else "FALSE"
            return "1" if value else "0"
        if isinstance(value, (int, float)):
            return repr(value)
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        # dates and timestamps print via ISO format strings
        return f"'{value}'"

    # -- DML / DDL ------------------------------------------------------

    def _print_insert(self, statement: ast.Insert) -> str:
        text = f"INSERT INTO {self._ident(statement.table)}"
        if statement.columns:
            columns = ", ".join(self._ident(c) for c in statement.columns)
            text += f" ({columns})"
        if statement.query is not None:
            return f"{text} {self.print_query(statement.query)}"
        rows = ", ".join(
            "(" + ", ".join(self.print_expression(v) for v in row) + ")"
            for row in statement.rows
        )
        return f"{text} VALUES {rows}"

    def _print_update(self, statement: ast.Update) -> str:
        assignments = ", ".join(
            f"{self._ident(col)} = {self.print_expression(value)}"
            for col, value in statement.assignments
        )
        text = f"UPDATE {self._ident(statement.table)}"
        if statement.alias:
            text += f" {self._ident(statement.alias)}"
        text += f" SET {assignments}"
        if statement.where is not None:
            text += f" WHERE {self.print_expression(statement.where)}"
        return text

    def _print_delete(self, statement: ast.Delete) -> str:
        text = f"DELETE FROM {self._ident(statement.table)}"
        if statement.alias:
            text += f" {self._ident(statement.alias)}"
        if statement.where is not None:
            text += f" WHERE {self.print_expression(statement.where)}"
        return text

    def _print_create_table(self, statement: ast.CreateTable) -> str:
        pieces: list[str] = []
        for column in statement.columns:
            type_name = column.type_name
            if column.type_params:
                type_name += "(" + ",".join(str(p) for p in column.type_params) + ")"
            else:
                type_name = self.dialect.map_type(type_name)
            text = f"{self._ident(column.name)} {type_name}"
            if column.primary_key:
                text += " PRIMARY KEY"
            elif column.not_null:
                text += " NOT NULL"
            if column.unique:
                text += " UNIQUE"
            if column.default is not None:
                text += f" DEFAULT {self.print_expression(column.default)}"
            pieces.append(text)
        if statement.primary_key:
            key = ", ".join(self._ident(c) for c in statement.primary_key)
            pieces.append(f"PRIMARY KEY ({key})")
        clause = "IF NOT EXISTS " if statement.if_not_exists else ""
        body = ", ".join(pieces)
        return f"CREATE TABLE {clause}{self._ident(statement.name)} ({body})"

    # -- identifiers ------------------------------------------------------

    _PLAIN_IDENT_CHARS = frozenset(
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$#."
    )

    def _ident(self, name: str) -> str:
        if name and all(c in self._PLAIN_IDENT_CHARS for c in name):
            return name
        escaped = name.replace('"', '""')
        return f'"{escaped}"'


def to_sql(node: ast.Statement, dialect: Dialect = GLOBAL_DIALECT) -> str:
    """Render a statement to SQL text in the given dialect."""
    return SQLPrinter(dialect).print_statement(node)


def expression_to_sql(expr: ast.Expression, dialect: Dialect = GLOBAL_DIALECT) -> str:
    """Render a scalar expression to SQL text in the given dialect."""
    return SQLPrinter(dialect).print_expression(expr)
