"""SQL dialect descriptions.

A :class:`Dialect` captures the differences between the global MYRIAD SQL
dialect and the component-DBMS dialects (Oracle-style and Postgres-style)
that matter to gateway translation:

- type-name mapping (``VARCHAR`` vs ``VARCHAR2`` vs ``TEXT``, ...)
- row-limiting syntax (``LIMIT n`` vs ``ROWNUM <= n``)
- boolean literal support (Oracle pre-23c has no BOOLEAN: booleans ship as 0/1)
- string-concatenation spelling
- empty-string semantics (Oracle treats ``''`` as NULL)
- current-date function name (``NOW()`` vs ``SYSDATE``)

Dialects are declarative; the actual rendering lives in
:mod:`repro.sql.printer` and semantic quirks are enforced by
:mod:`repro.localdb`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Dialect:
    """Declarative description of one SQL dialect."""

    name: str
    #: Map from canonical (global) type names to this dialect's spelling.
    type_map: dict[str, str] = field(default_factory=dict)
    #: True if the dialect supports ``LIMIT n [OFFSET m]``.
    supports_limit: bool = True
    #: True if row limiting must be expressed as a ``ROWNUM <= n`` predicate.
    uses_rownum: bool = False
    #: True if TRUE/FALSE literals exist; otherwise booleans render as 1/0.
    supports_boolean_literals: bool = True
    #: True if the empty string is distinct from NULL.
    empty_string_is_null: bool = False
    #: Function-name translations applied when rendering calls.
    function_map: dict[str, str] = field(default_factory=dict)
    #: True if FULL OUTER JOIN is directly supported.
    supports_full_outer_join: bool = True

    def map_type(self, canonical: str) -> str:
        """Translate a canonical type name into this dialect's spelling."""
        return self.type_map.get(canonical.upper(), canonical.upper())

    def map_function(self, name: str) -> str:
        return self.function_map.get(name.upper(), name.upper())


#: The federation-level dialect: what global users write.
GLOBAL_DIALECT = Dialect(name="myriad")

#: Oracle-v7-flavoured dialect for the Oracle gateway.
ORACLE_DIALECT = Dialect(
    name="oracle",
    type_map={
        "INTEGER": "NUMBER(38)",
        "INT": "NUMBER(38)",
        "SMALLINT": "NUMBER(5)",
        "FLOAT": "NUMBER",
        "DOUBLE": "NUMBER",
        "DECIMAL": "NUMBER",
        "NUMERIC": "NUMBER",
        "VARCHAR": "VARCHAR2",
        "TEXT": "VARCHAR2(4000)",
        "BOOLEAN": "NUMBER(1)",
    },
    supports_limit=False,
    uses_rownum=True,
    supports_boolean_literals=False,
    empty_string_is_null=True,
    function_map={"NOW": "SYSDATE", "CURRENT_DATE": "SYSDATE"},
    supports_full_outer_join=False,
)

#: Postgres-flavoured dialect for the Postgres gateway.
POSTGRES_DIALECT = Dialect(
    name="postgres",
    type_map={
        "NUMBER": "NUMERIC",
        "VARCHAR2": "VARCHAR",
    },
    supports_limit=True,
    uses_rownum=False,
    supports_boolean_literals=True,
    empty_string_is_null=False,
    function_map={"SYSDATE": "NOW"},
)

DIALECTS: dict[str, Dialect] = {
    dialect.name: dialect
    for dialect in (GLOBAL_DIALECT, ORACLE_DIALECT, POSTGRES_DIALECT)
}


def get_dialect(name: str) -> Dialect:
    """Look up a registered dialect by name."""
    try:
        return DIALECTS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown SQL dialect: {name!r}") from None
