"""SQL front end: lexer, parser, AST, and dialect-aware printer.

This package implements the global MYRIAD SQL dialect plus the
Oracle/Postgres gateway dialects, entirely from scratch.

Typical usage::

    from repro.sql import parse_statement, to_sql
    from repro.sql.dialect import ORACLE_DIALECT

    stmt = parse_statement("SELECT name, salary FROM emp WHERE salary > 1000")
    oracle_text = to_sql(stmt, ORACLE_DIALECT)
"""

from repro.sql import ast
from repro.sql.dialect import (
    DIALECTS,
    GLOBAL_DIALECT,
    ORACLE_DIALECT,
    POSTGRES_DIALECT,
    Dialect,
    get_dialect,
)
from repro.sql.lexer import Lexer, tokenize
from repro.sql.parser import (
    Parser,
    parse_expression,
    parse_query,
    parse_script,
    parse_statement,
)
from repro.sql.printer import SQLPrinter, expression_to_sql, to_sql

__all__ = [
    "ast",
    "DIALECTS",
    "GLOBAL_DIALECT",
    "ORACLE_DIALECT",
    "POSTGRES_DIALECT",
    "Dialect",
    "get_dialect",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_query",
    "parse_script",
    "parse_statement",
    "SQLPrinter",
    "expression_to_sql",
    "to_sql",
]
