"""Abstract syntax tree for the MYRIAD SQL dialect.

The same AST is used at every level of the system: the federation layer
parses global SQL into it, the query processor rewrites it (view expansion,
predicate pushdown, localization), gateways render it back to dialect-specific
SQL text, and local DBMSs execute it.

Nodes are plain mutable dataclasses with structural equality, which makes
rewrite passes straightforward.  Traversal helpers (:func:`walk_expressions`,
:func:`transform_expression`, :func:`split_conjuncts`, ...) live at the bottom
of the module.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field


class Node:
    """Base class for all AST nodes (statements, table refs, expressions)."""

    __slots__ = ()


# ===========================================================================
# Expressions
# ===========================================================================


class Expression(Node):
    """Base class for scalar expressions and predicates."""

    __slots__ = ()


@dataclass(eq=True)
class Literal(Expression):
    """A constant: number, string, boolean, date string, or NULL (value=None)."""

    value: object

    def __hash__(self) -> int:
        return hash((Literal, self.value))


NULL = Literal(None)
TRUE = Literal(True)
FALSE = Literal(False)


@dataclass(eq=True)
class ColumnRef(Expression):
    """A (possibly qualified) column reference: ``t.c`` or ``c``."""

    name: str
    table: str | None = None

    def __hash__(self) -> int:
        return hash((ColumnRef, self.table, self.name))

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(eq=True)
class Star(Expression):
    """``*`` or ``t.*`` in a projection list or inside COUNT(*)."""

    table: str | None = None

    def __hash__(self) -> int:
        return hash((Star, self.table))


@dataclass(eq=True)
class Parameter(Expression):
    """A ``?`` positional parameter (0-based index)."""

    index: int

    def __hash__(self) -> int:
        return hash((Parameter, self.index))


@dataclass(eq=True)
class UnaryOp(Expression):
    """``NOT x``, ``-x``, ``+x``."""

    op: str
    operand: Expression

    def __hash__(self) -> int:
        return hash((UnaryOp, self.op, self.operand))


@dataclass(eq=True)
class BinaryOp(Expression):
    """Binary operators: arithmetic, comparison, AND/OR, ``||``, LIKE."""

    op: str
    left: Expression
    right: Expression

    def __hash__(self) -> int:
        return hash((BinaryOp, self.op, self.left, self.right))


@dataclass(eq=True)
class IsNull(Expression):
    """``x IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def __hash__(self) -> int:
        return hash((IsNull, self.operand, self.negated))


@dataclass(eq=True)
class Between(Expression):
    """``x [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def __hash__(self) -> int:
        return hash((Between, self.operand, self.low, self.high, self.negated))


@dataclass(eq=True)
class InList(Expression):
    """``x [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    items: list[Expression]
    negated: bool = False

    def __hash__(self) -> int:
        return hash((InList, self.operand, tuple(self.items), self.negated))


@dataclass(eq=True)
class InSubquery(Expression):
    """``x [NOT] IN (SELECT ...)``."""

    operand: Expression
    query: "Query"
    negated: bool = False

    def __hash__(self) -> int:
        return hash((InSubquery, self.operand, id(self.query), self.negated))


@dataclass(eq=True)
class Exists(Expression):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: "Query"
    negated: bool = False

    def __hash__(self) -> int:
        return hash((Exists, id(self.query), self.negated))


@dataclass(eq=True)
class ScalarSubquery(Expression):
    """A subquery used as a scalar value: ``(SELECT MAX(x) FROM t)``."""

    query: "Query"

    def __hash__(self) -> int:
        return hash((ScalarSubquery, id(self.query)))


#: Names the engine treats as aggregate functions.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


@dataclass(eq=True)
class FunctionCall(Expression):
    """A function call; covers builtins, aggregates, and user-defined
    integration functions registered with a federation."""

    name: str
    args: list[Expression] = field(default_factory=list)
    distinct: bool = False  # COUNT(DISTINCT x)

    def __hash__(self) -> int:
        return hash((FunctionCall, self.name, tuple(self.args), self.distinct))

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in AGGREGATE_FUNCTIONS


@dataclass(eq=True)
class Case(Expression):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    operand: Expression | None
    whens: list[tuple[Expression, Expression]]
    default: Expression | None = None

    def __hash__(self) -> int:
        return hash((Case, self.operand, tuple(self.whens), self.default))


@dataclass(eq=True)
class Cast(Expression):
    """``CAST(expr AS type)``."""

    operand: Expression
    type_name: str

    def __hash__(self) -> int:
        return hash((Cast, self.operand, self.type_name))


# ===========================================================================
# Table references
# ===========================================================================


class TableRef(Node):
    """Base class for items in a FROM clause."""

    __slots__ = ()


@dataclass(eq=True)
class TableName(TableRef):
    """A named table (optionally aliased)."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this table is visible as inside the query."""
        return self.alias or self.name


@dataclass(eq=True)
class SubqueryRef(TableRef):
    """A derived table: ``(SELECT ...) alias``."""

    query: "Query"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


class JoinType(enum.Enum):
    INNER = "INNER"
    LEFT = "LEFT OUTER"
    RIGHT = "RIGHT OUTER"
    FULL = "FULL OUTER"
    CROSS = "CROSS"


@dataclass(eq=True)
class Join(TableRef):
    """An explicit join between two table references."""

    left: TableRef
    right: TableRef
    join_type: JoinType = JoinType.INNER
    condition: Expression | None = None
    using: list[str] = field(default_factory=list)


# ===========================================================================
# Statements
# ===========================================================================


class Statement(Node):
    """Base class for executable statements."""

    __slots__ = ()


@dataclass(eq=True)
class SelectItem(Node):
    """One projection: expression plus optional alias."""

    expression: Expression
    alias: str | None = None

    @property
    def output_name(self) -> str:
        """Column name this item produces in the result."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        return "?column?"


@dataclass(eq=True)
class OrderItem(Node):
    expression: Expression
    ascending: bool = True


@dataclass(eq=True)
class Select(Statement):
    """A SELECT query block."""

    items: list[SelectItem]
    from_clause: list[TableRef] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


class SetOpKind(enum.Enum):
    UNION = "UNION"
    UNION_ALL = "UNION ALL"
    INTERSECT = "INTERSECT"
    EXCEPT = "EXCEPT"


@dataclass(eq=True)
class SetOperation(Statement):
    """UNION / UNION ALL / INTERSECT / EXCEPT of two query blocks."""

    kind: SetOpKind
    left: "Query"
    right: "Query"
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None


#: A query is either a single block or a set operation over blocks.
Query = Select | SetOperation


@dataclass(eq=True)
class Insert(Statement):
    table: str
    columns: list[str] = field(default_factory=list)
    rows: list[list[Expression]] = field(default_factory=list)
    query: Query | None = None  # INSERT ... SELECT


@dataclass(eq=True)
class Update(Statement):
    table: str
    assignments: list[tuple[str, Expression]] = field(default_factory=list)
    where: Expression | None = None
    alias: str | None = None


@dataclass(eq=True)
class Delete(Statement):
    table: str
    where: Expression | None = None
    alias: str | None = None


@dataclass(eq=True)
class ColumnDef(Node):
    """One column in a CREATE TABLE."""

    name: str
    type_name: str
    type_params: tuple[int, ...] = ()
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Expression | None = None


@dataclass(eq=True)
class CreateTable(Statement):
    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    primary_key: list[str] = field(default_factory=list)
    if_not_exists: bool = False


@dataclass(eq=True)
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass(eq=True)
class CreateIndex(Statement):
    name: str
    table: str
    columns: list[str] = field(default_factory=list)
    unique: bool = False


@dataclass(eq=True)
class BeginTransaction(Statement):
    #: ``BEGIN READ ONLY``: run against an MVCC snapshot, lock-free.
    read_only: bool = False


@dataclass(eq=True)
class CommitTransaction(Statement):
    pass


@dataclass(eq=True)
class RollbackTransaction(Statement):
    pass


# ===========================================================================
# Traversal helpers
# ===========================================================================


def child_expressions(expr: Expression) -> Iterator[Expression]:
    """Yield the direct sub-expressions of ``expr`` (not subquery internals)."""
    if isinstance(expr, UnaryOp):
        yield expr.operand
    elif isinstance(expr, BinaryOp):
        yield expr.left
        yield expr.right
    elif isinstance(expr, IsNull):
        yield expr.operand
    elif isinstance(expr, Between):
        yield expr.operand
        yield expr.low
        yield expr.high
    elif isinstance(expr, InList):
        yield expr.operand
        yield from expr.items
    elif isinstance(expr, InSubquery):
        yield expr.operand
    elif isinstance(expr, FunctionCall):
        yield from expr.args
    elif isinstance(expr, Case):
        if expr.operand is not None:
            yield expr.operand
        for condition, result in expr.whens:
            yield condition
            yield result
        if expr.default is not None:
            yield expr.default
    elif isinstance(expr, Cast):
        yield expr.operand


def walk_expressions(expr: Expression) -> Iterator[Expression]:
    """Yield ``expr`` and every nested sub-expression, pre-order."""
    yield expr
    for child in child_expressions(expr):
        yield from walk_expressions(child)


def transform_expression(
    expr: Expression, fn: Callable[[Expression], Expression]
) -> Expression:
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives each node after its children have been transformed and
    returns a (possibly new) node.  Subquery bodies are not entered.
    """
    if isinstance(expr, UnaryOp):
        expr = UnaryOp(expr.op, transform_expression(expr.operand, fn))
    elif isinstance(expr, BinaryOp):
        expr = BinaryOp(
            expr.op,
            transform_expression(expr.left, fn),
            transform_expression(expr.right, fn),
        )
    elif isinstance(expr, IsNull):
        expr = IsNull(transform_expression(expr.operand, fn), expr.negated)
    elif isinstance(expr, Between):
        expr = Between(
            transform_expression(expr.operand, fn),
            transform_expression(expr.low, fn),
            transform_expression(expr.high, fn),
            expr.negated,
        )
    elif isinstance(expr, InList):
        expr = InList(
            transform_expression(expr.operand, fn),
            [transform_expression(item, fn) for item in expr.items],
            expr.negated,
        )
    elif isinstance(expr, InSubquery):
        expr = InSubquery(
            transform_expression(expr.operand, fn), expr.query, expr.negated
        )
    elif isinstance(expr, FunctionCall):
        expr = FunctionCall(
            expr.name,
            [transform_expression(arg, fn) for arg in expr.args],
            expr.distinct,
        )
    elif isinstance(expr, Case):
        expr = Case(
            transform_expression(expr.operand, fn) if expr.operand else None,
            [
                (transform_expression(c, fn), transform_expression(r, fn))
                for c, r in expr.whens
            ],
            transform_expression(expr.default, fn) if expr.default else None,
        )
    elif isinstance(expr, Cast):
        expr = Cast(transform_expression(expr.operand, fn), expr.type_name)
    return fn(expr)


def column_refs(expr: Expression) -> list[ColumnRef]:
    """All column references appearing in ``expr`` (excluding subqueries)."""
    return [node for node in walk_expressions(expr) if isinstance(node, ColumnRef)]


def referenced_tables(expr: Expression) -> set[str]:
    """Table qualifiers mentioned by column references in ``expr``."""
    return {ref.table for ref in column_refs(expr) if ref.table}


def contains_aggregate(expr: Expression) -> bool:
    """True if any nested function call is an aggregate."""
    return any(
        isinstance(node, FunctionCall) and node.is_aggregate
        for node in walk_expressions(expr)
    )


def split_conjuncts(expr: Expression | None) -> list[Expression]:
    """Split a predicate on top-level ANDs: ``a AND (b AND c)`` → [a, b, c]."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(predicates: list[Expression]) -> Expression | None:
    """Combine predicates with AND; returns None for an empty list."""
    result: Expression | None = None
    for predicate in predicates:
        result = predicate if result is None else BinaryOp("AND", result, predicate)
    return result
