"""Workloads: the university example federation and synthetic generators."""

from repro.workloads.contention import ContentionResult, run_contention
from repro.workloads.synth import (
    build_bank_sites,
    build_partitioned_sites,
    build_two_site_join,
    total_balance,
)
from repro.workloads.university import build_university_system, gpa_from_percent

__all__ = [
    "ContentionResult",
    "run_contention",
    "build_bank_sites",
    "build_partitioned_sites",
    "build_two_site_join",
    "total_balance",
    "build_university_system",
    "gpa_from_percent",
]
