"""The university example federation.

Recreates the flavour of the paper's demonstration databases: a university
with two campuses running different DBMSs (an Oracle-style system at the
Twin Cities campus, a Postgres-style one at Duluth), integrated into a
single enterprise-wide schema:

- ``student`` — horizontal union of both campuses' student tables, with a
  campus tag and a user-defined integration function normalising GPA scales
  (Twin Cities stores 0–4.0; Duluth stores percentages)
- ``course`` — horizontal union of course catalogues
- ``enrollment`` — horizontal union
- ``staff_directory`` — a *join merge*: HR data lives at Twin Cities,
  payroll at Duluth, keyed by a shared employee id, with conflict
  resolution for the phone number both sides store
"""

from __future__ import annotations

import random

from repro.myriad import MyriadSystem
from repro.schema import join_merge, union_merge

_FIRST = [
    "ALICE", "BOB", "CAROL", "DAVE", "ERIN", "FRANK", "GRACE", "HEIDI",
    "IVAN", "JUDY", "KEN", "LAURA", "MALLORY", "NED", "OLIVE", "PEGGY",
]
_LAST = [
    "ANDERSON", "JOHNSON", "OLSON", "PETERSON", "LARSON", "NELSON",
    "CARLSON", "HANSON", "JENSEN", "SWANSON",
]
_SUBJECTS = ["CS", "EE", "MATH", "STAT", "PHYS", "CHEM", "BIO", "ECON"]


def gpa_from_percent(percent: object) -> object:
    """User-defined integration function: 0–100 scale → 0–4.0 scale."""
    if percent is None:
        return None
    return round(float(percent) * 4.0 / 100.0, 2)


def build_university_system(
    students_per_campus: int = 120,
    courses_per_campus: int = 24,
    enrollments_per_student: int = 3,
    staff_count: int = 40,
    seed: int = 42,
    query_timeout: float | None = 5.0,
) -> MyriadSystem:
    """Build and populate the two-campus university federation."""
    rng = random.Random(seed)
    system = MyriadSystem(query_timeout=query_timeout)

    twin = system.add_oracle("twin_cities")
    duluth = system.add_postgres("duluth")

    # ------------------------------------------------------------------
    # Twin Cities (Oracle dialect): 4.0-scale GPA, (sid, sname, gpa, major)
    # ------------------------------------------------------------------
    twin.dbms.execute_script(
        """
        CREATE TABLE tc_student (
            sid INTEGER PRIMARY KEY,
            sname VARCHAR2(40) NOT NULL,
            gpa NUMBER,
            major VARCHAR2(10)
        );
        CREATE TABLE tc_course (
            cno VARCHAR2(10) PRIMARY KEY,
            title VARCHAR2(60),
            credits INTEGER
        );
        CREATE TABLE tc_enrollment (
            sid INTEGER,
            cno VARCHAR2(10),
            grade NUMBER
        );
        CREATE TABLE hr_staff (
            emp_id INTEGER PRIMARY KEY,
            emp_name VARCHAR2(40),
            title VARCHAR2(30),
            office VARCHAR2(20),
            phone VARCHAR2(16)
        );
        """
    )

    # ------------------------------------------------------------------
    # Duluth (Postgres dialect): percent GPA, different column names
    # ------------------------------------------------------------------
    duluth.dbms.execute_script(
        """
        CREATE TABLE dul_students (
            student_no INTEGER PRIMARY KEY,
            full_name VARCHAR(40) NOT NULL,
            grade_pct FLOAT,
            dept VARCHAR(10)
        );
        CREATE TABLE dul_courses (
            course_code VARCHAR(10) PRIMARY KEY,
            course_title VARCHAR(60),
            units INTEGER
        );
        CREATE TABLE dul_enrollment (
            student_no INTEGER,
            course_code VARCHAR(10),
            score FLOAT
        );
        CREATE TABLE payroll_staff (
            employee INTEGER PRIMARY KEY,
            salary FLOAT,
            phone_no VARCHAR(16)
        );
        """
    )

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def name() -> str:
        return f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"

    tc = twin.dbms.connect()
    tc.begin()
    for sid in range(1, students_per_campus + 1):
        tc.execute(
            "INSERT INTO tc_student VALUES (?, ?, ?, ?)",
            [sid, name(), round(rng.uniform(1.8, 4.0), 2), rng.choice(_SUBJECTS)],
        )
    tc_courses = []
    for i in range(courses_per_campus):
        cno = f"{rng.choice(_SUBJECTS)}{1000 + i}"
        tc_courses.append(cno)
        tc.execute(
            "INSERT INTO tc_course VALUES (?, ?, ?)",
            [cno, f"Topics in {cno}", rng.choice([3, 4])],
        )
    for sid in range(1, students_per_campus + 1):
        for cno in rng.sample(tc_courses, min(enrollments_per_student, len(tc_courses))):
            tc.execute(
                "INSERT INTO tc_enrollment VALUES (?, ?, ?)",
                [sid, cno, round(rng.uniform(1.0, 4.0), 1)],
            )
    for emp in range(1, staff_count + 1):
        tc.execute(
            "INSERT INTO hr_staff VALUES (?, ?, ?, ?, ?)",
            [
                emp,
                name(),
                rng.choice(["Professor", "Lecturer", "Staff", "Adjunct"]),
                f"EE{rng.randint(100, 499)}",
                f"612-555-{rng.randint(1000, 9999)}",
            ],
        )
    tc.commit()

    du = duluth.dbms.connect()
    du.begin()
    for sid in range(1, students_per_campus + 1):
        du.execute(
            "INSERT INTO dul_students VALUES (?, ?, ?, ?)",
            [
                10000 + sid,
                name(),
                round(rng.uniform(45.0, 100.0), 1),
                rng.choice(_SUBJECTS),
            ],
        )
    du_courses = []
    for i in range(courses_per_campus):
        code = f"D{rng.choice(_SUBJECTS)}{2000 + i}"
        du_courses.append(code)
        du.execute(
            "INSERT INTO dul_courses VALUES (?, ?, ?)",
            [code, f"Duluth {code}", rng.choice([3, 4])],
        )
    for sid in range(1, students_per_campus + 1):
        for code in rng.sample(
            du_courses, min(enrollments_per_student, len(du_courses))
        ):
            du.execute(
                "INSERT INTO dul_enrollment VALUES (?, ?, ?)",
                [10000 + sid, code, round(rng.uniform(40.0, 100.0), 1)],
            )
    # Payroll covers a subset of HR staff plus some Duluth-only employees;
    # phone numbers sometimes disagree with HR (conflicts to resolve).
    for emp in range(1, staff_count + 1):
        if rng.random() < 0.8:
            phone = (
                f"612-555-{rng.randint(1000, 9999)}"
                if rng.random() < 0.3
                else None
            )
            du.execute(
                "INSERT INTO payroll_staff VALUES (?, ?, ?)",
                [emp, round(rng.uniform(40000, 140000), 2), phone],
            )
    for emp in range(staff_count + 1, staff_count + 6):
        du.execute(
            "INSERT INTO payroll_staff VALUES (?, ?, ?)",
            [emp, round(rng.uniform(40000, 90000), 2),
             f"218-555-{rng.randint(1000, 9999)}"],
        )
    du.commit()

    # ------------------------------------------------------------------
    # Export schemas (what each campus is willing to share)
    # ------------------------------------------------------------------
    twin.export_table(
        "tc_student",
        "student",
        {"sid": "sid", "name": "sname", "gpa": "gpa", "major": "major"},
    )
    twin.export_table(
        "tc_course",
        "course",
        {"cno": "cno", "title": "title", "credits": "credits"},
    )
    twin.export_table(
        "tc_enrollment",
        "enrollment",
        {"sid": "sid", "cno": "cno", "grade": "grade"},
    )
    twin.export_table(
        "hr_staff",
        "staff_hr",
        {
            "emp_id": "emp_id",
            "name": "emp_name",
            "title": "title",
            "office": "office",
            "phone": "phone",
        },
    )

    duluth.export_table(
        "dul_students",
        "student",
        {
            "sid": "student_no",
            "name": "full_name",
            "grade_pct": "grade_pct",
            "major": "dept",
        },
    )
    duluth.export_table(
        "dul_courses",
        "course",
        {"cno": "course_code", "title": "course_title", "credits": "units"},
    )
    duluth.export_table(
        "dul_enrollment",
        "enrollment",
        {"sid": "student_no", "cno": "course_code", "score": "score"},
    )
    duluth.export_table(
        "payroll_staff",
        "staff_payroll",
        {"emp_id": "employee", "salary": "salary", "phone": "phone_no"},
    )

    # ------------------------------------------------------------------
    # The federation and its integrated relations
    # ------------------------------------------------------------------
    fed = system.create_federation("university")
    fed.register_function("GPA_FROM_PERCENT", gpa_from_percent)

    # Horizontal merges with schema reconciliation.  Duluth GPAs go through
    # the user-defined integration function.
    fed.define_relation(
        "student",
        "SELECT sid, name, gpa, major, 'twin_cities' AS campus "
        "FROM twin_cities.student "
        "UNION ALL "
        "SELECT sid, name, GPA_FROM_PERCENT(grade_pct) AS gpa, major, "
        "'duluth' AS campus FROM duluth.student",
    )
    fed.add_relation(
        union_merge(
            "course",
            [
                ("twin_cities", "course", ["cno", "title", "credits"]),
                ("duluth", "course", ["cno", "title", "credits"]),
            ],
            source_tag_column="campus",
        )
    )
    fed.define_relation(
        "enrollment",
        "SELECT sid, cno, grade, 'twin_cities' AS campus "
        "FROM twin_cities.enrollment "
        "UNION ALL "
        "SELECT sid, cno, GPA_FROM_PERCENT(score) AS grade, "
        "'duluth' AS campus FROM duluth.enrollment",
    )
    # Vertical merge with conflict resolution: HR is authoritative for the
    # phone when present, else payroll's value (PREFER_FIRST).
    fed.add_relation(
        join_merge(
            "staff_directory",
            left=("twin_cities", "staff_hr"),
            right=("duluth", "staff_payroll"),
            on=[("emp_id", "emp_id")],
            attributes={
                "emp_id": ("key", 0),
                "name": ("left", "name"),
                "title": ("left", "title"),
                "salary": ("right", "salary"),
                "phone": ("resolve", "PREFER_FIRST", "phone", "phone"),
            },
        )
    )
    return system
