"""Contention workload driver for the deadlock/timeout experiments.

Runs a mix of multi-site transfer transactions against a bank federation
(:func:`repro.workloads.synth.build_bank_sites`) from several worker
threads, inducing lock conflicts and *global* deadlocks (T1 holds site A and
wants site B while T2 holds B and wants A — invisible to either local
deadlock detector).

Collects the statistics the paper's timeout mechanism trades off: commits,
timeout aborts, local-deadlock aborts, and — via the wait-for-graph oracle —
how many timeout aborts were *false* (no real global deadlock at the time).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.errors import TransactionAborted, TwoPhaseCommitError
from repro.myriad import MyriadSystem
from repro.txn import WaitForGraphDetector


@dataclass
class ContentionResult:
    """Outcome of one contention run."""

    committed: int = 0
    timeout_aborts: int = 0
    deadlock_aborts: int = 0  # local detector victims
    other_aborts: int = 0
    false_timeout_aborts: int = 0
    true_timeout_aborts: int = 0
    wall_seconds: float = 0.0
    oracle_cycles_seen: int = 0
    per_txn_latency: list[float] = field(default_factory=list)

    @property
    def attempted(self) -> int:
        return (
            self.committed
            + self.timeout_aborts
            + self.deadlock_aborts
            + self.other_aborts
        )

    @property
    def throughput(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.committed / self.wall_seconds

    @property
    def false_abort_rate(self) -> float:
        if self.timeout_aborts == 0:
            return 0.0
        return self.false_timeout_aborts / self.timeout_aborts


def run_contention(
    system: MyriadSystem,
    site_count: int,
    accounts_per_site: int,
    workers: int = 4,
    transactions_per_worker: int = 25,
    hotspot_accounts: int = 2,
    hotspot_probability: float = 0.8,
    timeout_s: float = 0.25,
    seed: int = 3,
    think_time_s: float = 0.0,
    policy: str = "timeout",
) -> ContentionResult:
    """Drive transfer transactions and classify every outcome.

    Each transaction debits an account at one site and credits an account at
    another (both UPDATEs under one global transaction, 2PC commit).  With a
    small hotspot set and opposite site orders, global deadlocks occur.

    ``policy`` selects the resolution mechanism:

    - ``"timeout"`` — the paper's: each local query carries ``timeout_s``
    - ``"wfg"`` — active global wait-for-graph detection
      (:class:`repro.txn.GlobalDeadlockMonitor`); ``timeout_s`` then acts
      only as a generous backstop (10x)
    """
    from repro.txn.deadlock import GlobalDeadlockMonitor

    result = ContentionResult()
    result_lock = threading.Lock()
    oracle = WaitForGraphDetector(system.gateways)
    monitor: GlobalDeadlockMonitor | None = None
    if policy == "wfg":
        monitor = GlobalDeadlockMonitor(
            system.gateways, interval_s=min(timeout_s / 2, 0.05)
        )
        monitor.start()
        effective_timeout = timeout_s * 10
    elif policy == "timeout":
        effective_timeout = timeout_s
    else:
        raise ValueError(f"unknown contention policy {policy!r}")
    system.transactions.query_timeout = effective_timeout

    stop_oracle = threading.Event()
    deadlocked_at_some_point: set[object] = set()

    def oracle_loop() -> None:
        while not stop_oracle.is_set():
            txns = oracle.deadlocked_transactions()
            if txns:
                with result_lock:
                    deadlocked_at_some_point.update(txns)
                    result.oracle_cycles_seen += 1
            time.sleep(timeout_s / 4 if timeout_s > 0.02 else 0.005)

    def pick_account(rng: random.Random, site_index: int) -> int:
        base = site_index * accounts_per_site
        if rng.random() < hotspot_probability:
            return base + rng.randrange(max(hotspot_accounts, 1))
        return base + rng.randrange(accounts_per_site)

    def worker(worker_index: int) -> None:
        rng = random.Random(seed * 1000 + worker_index)
        for _ in range(transactions_per_worker):
            from_site = rng.randrange(site_count)
            to_site = (from_site + 1 + rng.randrange(site_count - 1)) % (
                site_count
            ) if site_count > 1 else from_site
            amount = round(rng.uniform(1, 50), 2)
            debit_account = pick_account(rng, from_site)
            credit_account = pick_account(rng, to_site)

            txn = system.begin_transaction()
            started = time.monotonic()
            try:
                txn.execute(
                    f"b{from_site}",
                    f"UPDATE account SET balance = balance - {amount} "
                    f"WHERE acct = {debit_account}",
                    timeout=effective_timeout,
                )
                if think_time_s:
                    time.sleep(think_time_s)
                txn.execute(
                    f"b{to_site}",
                    f"UPDATE account SET balance = balance + {amount} "
                    f"WHERE acct = {credit_account}",
                    timeout=effective_timeout,
                )
                txn.commit()
                with result_lock:
                    result.committed += 1
                    result.per_txn_latency.append(time.monotonic() - started)
            except TransactionAborted as error:
                with result_lock:
                    if error.reason == "timeout":
                        result.timeout_aborts += 1
                        if txn.global_id in deadlocked_at_some_point:
                            result.true_timeout_aborts += 1
                        else:
                            result.false_timeout_aborts += 1
                    elif error.reason == "deadlock":
                        result.deadlock_aborts += 1
                    else:
                        result.other_aborts += 1
            except TwoPhaseCommitError:
                with result_lock:
                    result.other_aborts += 1

    oracle_thread = threading.Thread(target=oracle_loop, daemon=True)
    oracle_thread.start()
    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(workers)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.wall_seconds = time.monotonic() - started
    stop_oracle.set()
    oracle_thread.join(timeout=2)
    if monitor is not None:
        monitor.stop()
        result.oracle_cycles_seen = max(
            result.oracle_cycles_seen, monitor.cycles_seen
        )
    return result
