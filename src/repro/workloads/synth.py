"""Synthetic workload generators for the benchmark suite.

Everything is seeded and deterministic.  The builders return a configured
:class:`~repro.myriad.MyriadSystem` plus whatever handles the experiment
needs.
"""

from __future__ import annotations

import random

from repro.myriad import MyriadSystem
from repro.schema import union_merge


def _load_site(gateway, ddl: str, insert_sql: str, rows: list) -> None:
    """Create a table and load rows at a site — on *every* replica.

    With ``replication_factor > 1`` the gateway fronts a replica group;
    seed data (like DDL) must exist identically at each replica, so the
    builders generate the row list once (one RNG draw order, bit-identical
    to the unreplicated build) and load it everywhere.
    """
    dbmses = getattr(gateway, "replica_dbmses", None) or [gateway.dbms]
    for dbms in dbmses:
        dbms.execute(ddl)
        session = dbms.connect()
        session.begin()
        for row in rows:
            session.execute(insert_sql, list(row))
        session.commit()


def build_two_site_join(
    left_rows: int,
    right_rows: int,
    match_fraction: float = 0.5,
    selectivity: float = 1.0,
    payload_width: int = 32,
    seed: int = 7,
    query_timeout: float | None = 5.0,
    observability: bool = True,
    **system_kwargs,
) -> MyriadSystem:
    """Two sites, one relation each, joinable on ``k``.

    - ``match_fraction``: fraction of right rows whose key matches some left
      key (controls semijoin benefit)
    - ``selectivity``: fraction of left rows passing ``flt < cutoff`` where
      the benchmark query filters ``WHERE l.flt < {selectivity}`` (column
      ``flt`` is uniform in [0,1))
    - ``payload_width``: width of the ``pad`` column (bytes shipped per row)

    Exports: site ``s1`` exports ``left_rel(k, flt, pad)``; site ``s2``
    exports ``right_rel(k, val, pad)``.
    """
    rng = random.Random(seed)
    system = MyriadSystem(
        query_timeout=query_timeout,
        observability=observability,
        **system_kwargs,
    )
    s1 = system.add_postgres("s1")
    s2 = system.add_oracle("s2")

    pad = "x" * payload_width
    left = [(key, rng.random(), pad) for key in range(left_rows)]

    matchable = max(int(left_rows), 1)
    right = []
    for rid in range(right_rows):
        if rng.random() < match_fraction:
            key = rng.randrange(matchable)  # matches a left key
        else:
            key = matchable + rng.randrange(max(right_rows, 1))  # misses
        right.append((rid, key, rng.random(), pad))

    _load_site(
        s1,
        "CREATE TABLE left_t (k INTEGER PRIMARY KEY, flt FLOAT, pad VARCHAR(%d))"
        % max(payload_width, 1),
        "INSERT INTO left_t VALUES (?, ?, ?)",
        left,
    )
    _load_site(
        s2,
        "CREATE TABLE right_t (rid INTEGER PRIMARY KEY, k INTEGER, "
        "val FLOAT, pad VARCHAR2(%d))" % max(payload_width, 1),
        "INSERT INTO right_t VALUES (?, ?, ?, ?)",
        right,
    )

    s1.export_table("left_t", "left_rel", ["k", "flt", "pad"])
    s2.export_table("right_t", "right_rel", ["rid", "k", "val", "pad"])

    fed = system.create_federation("synth")
    fed.define_relation(
        "lhs", "SELECT k, flt, pad FROM s1.left_rel"
    )
    fed.define_relation(
        "rhs", "SELECT rid, k, val, pad FROM s2.right_rel"
    )
    return system


def build_partitioned_sites(
    site_count: int,
    rows_per_site: int,
    payload_width: int = 24,
    seed: int = 11,
    query_timeout: float | None = 5.0,
    observability: bool = True,
    **system_kwargs,
) -> MyriadSystem:
    """One relation horizontally partitioned across N sites.

    Each site ``p<i>`` exports ``part(k, grp, val, pad)``; the federation
    integrates them as ``measurements`` (a union with a site tag).
    Alternating sites are Oracle- and Postgres-dialect, so scale-out tests
    also cross dialects.  ``observability=False`` builds the system with
    tracing/metrics off — the baseline of the E12 overhead benchmark.
    Extra keyword arguments (``network``, ``parallel_fetches``,
    ``fragment_cache``, ...) pass straight to :class:`MyriadSystem` — the
    E15 parallelism/caching benchmark uses them.
    """
    rng = random.Random(seed)
    system = MyriadSystem(
        query_timeout=query_timeout,
        observability=observability,
        **system_kwargs,
    )
    pad = "x" * payload_width

    sources = []
    for index in range(site_count):
        site = f"p{index}"
        if index % 2 == 0:
            gateway = system.add_postgres(site)
            pad_type = f"VARCHAR({max(payload_width, 1)})"
        else:
            gateway = system.add_oracle(site)
            pad_type = f"VARCHAR2({max(payload_width, 1)})"
        base = index * rows_per_site
        rows = [
            (base + offset, rng.randrange(16), rng.random(), pad)
            for offset in range(rows_per_site)
        ]
        _load_site(
            gateway,
            f"CREATE TABLE part_t (k INTEGER PRIMARY KEY, grp INTEGER, "
            f"val FLOAT, pad {pad_type})",
            "INSERT INTO part_t VALUES (?, ?, ?, ?)",
            rows,
        )
        gateway.export_table("part_t", "part", ["k", "grp", "val", "pad"])
        sources.append((site, "part", ["k", "grp", "val", "pad"]))

    fed = system.create_federation("synth")
    fed.add_relation(
        union_merge("measurements", sources, source_tag_column="site")
    )
    return system


def build_bank_sites(
    site_count: int,
    accounts_per_site: int,
    initial_balance: float = 1000.0,
    query_timeout: float | None = 0.5,
    **system_kwargs,
) -> MyriadSystem:
    """Bank accounts spread over N sites, for transaction experiments.

    Site ``b<i>`` holds table ``account(acct INTEGER PRIMARY KEY,
    balance FLOAT)``.  Used by the 2PC-overhead and deadlock benchmarks:
    transfers between sites become multi-site global transactions.
    Extra keyword arguments (``mvcc_reads``, ``parallel_fetches``, ...)
    pass straight to :class:`MyriadSystem` — the E16 serving benchmark
    uses ``mvcc_reads=False`` for its 2PL-read baseline.
    """
    system = MyriadSystem(query_timeout=query_timeout, **system_kwargs)
    for index in range(site_count):
        site = f"b{index}"
        gateway = (
            system.add_postgres(site)
            if index % 2 == 0
            else system.add_oracle(site)
        )
        _load_site(
            gateway,
            "CREATE TABLE account (acct INTEGER PRIMARY KEY, balance FLOAT)",
            "INSERT INTO account VALUES (?, ?)",
            [
                (index * accounts_per_site + acct, initial_balance)
                for acct in range(accounts_per_site)
            ],
        )
        gateway.export_table("account", "account", ["acct", "balance"])

    fed = system.create_federation("bank")
    fed.add_relation(
        union_merge(
            "accounts",
            [
                (f"b{i}", "account", ["acct", "balance"])
                for i in range(site_count)
            ],
            source_tag_column="site",
        )
    )
    return system


def total_balance(system: MyriadSystem) -> float:
    """Federation-wide balance invariant used by the transaction tests."""
    result = system.query("bank", "SELECT SUM(balance) FROM accounts")
    return float(result.scalar())
