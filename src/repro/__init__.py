"""repro — a full reproduction of the MYRIAD federated database prototype.

MYRIAD (U. Minnesota, SIGMOD 1994) integrates autonomous component DBMSs
into federations of integrated relations, processes global SQL queries via
gateways, and runs serializable global transactions with two-phase commit
and timeout-based global deadlock resolution.

Public entry points:

- :class:`~repro.myriad.MyriadSystem` — build a federation end to end
- :mod:`repro.workloads` — ready-made example federations and generators
- :mod:`repro.tools` — the schema-browsing / query REPL
"""

from repro.errors import (
    DeadlockError,
    FederationError,
    GatewayError,
    GatewayTimeout,
    LockTimeoutError,
    MessageDropped,
    MyriadError,
    NetworkError,
    TransactionAborted,
    TwoPhaseCommitError,
)
from repro.myriad import MyriadSystem
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.schema import Federation, join_merge, union_merge, view_relation

__version__ = "1.0.0"

__all__ = [
    "MyriadSystem",
    "Observability",
    "MetricsRegistry",
    "Tracer",
    "Federation",
    "join_merge",
    "union_merge",
    "view_relation",
    "MyriadError",
    "FederationError",
    "GatewayError",
    "GatewayTimeout",
    "DeadlockError",
    "LockTimeoutError",
    "NetworkError",
    "MessageDropped",
    "TransactionAborted",
    "TwoPhaseCommitError",
    "__version__",
]
