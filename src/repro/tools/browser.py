"""Schema browser: textual views of components, exports, and federations.

Backs the query interface's browse commands.  All functions return plain
strings so the REPL, tests, and docs can use them alike.
"""

from __future__ import annotations

from repro.myriad import MyriadSystem


def list_components(system: MyriadSystem) -> str:
    """One line per component DBMS: site, dialect, tables."""
    lines = ["Component DBMSs:"]
    for site in system.site_names():
        dbms = system.component(site)
        tables = ", ".join(dbms.table_names()) or "(no tables)"
        lines.append(f"  {site} [{dbms.dialect.name}]: {tables}")
    return "\n".join(lines)


def list_exports(system: MyriadSystem, site: str) -> str:
    """Export relations of one site, with column mappings."""
    gateway = system.gateway(site)
    lines = [f"Exports of {site}:"]
    if not gateway.export_names():
        lines.append("  (none)")
    for name in gateway.export_names():
        relation = gateway.exports.get(name)
        mapping = ", ".join(
            f"{export}<-{local}" if export != local else export
            for export, local in relation.columns.items()
        )
        predicate = (
            f" WHERE {relation.predicate}" if relation.predicate else ""
        )
        lines.append(
            f"  {name} = {relation.local_table}({mapping}){predicate}"
        )
    return "\n".join(lines)


def list_federations(system: MyriadSystem) -> str:
    lines = ["Federations:"]
    if not system.federation_names():
        lines.append("  (none)")
    for name in system.federation_names():
        federation = system.federation(name)
        relations = ", ".join(federation.relation_names()) or "(empty)"
        lines.append(f"  {name}: {relations}")
    return "\n".join(lines)


def describe_relation(
    system: MyriadSystem, federation_name: str, relation_name: str
) -> str:
    """An integrated relation: columns, sources, lineage, definition."""
    federation = system.federation(federation_name)
    relation = federation.get_relation(relation_name)
    lines = [f"Integrated relation {relation.name} (federation {federation.name})"]
    try:
        columns = ", ".join(relation.column_names)
        lines.append(f"  columns: {columns}")
    except Exception:  # star projections: columns not statically known
        lines.append("  columns: (dynamic)")
    sources = relation.sources()
    if sources:
        lines.append(
            "  sources: "
            + ", ".join(f"{site}.{export}" for site, export in sources)
        )
    for column, origins in relation.lineage.items():
        origin_text = ", ".join(
            f"{o.site}.{o.export}.{o.column}" for o in origins
        )
        lines.append(f"  lineage {column}: {origin_text}")
    lines.append(f"  definition: {relation.definition_sql()}")
    return "\n".join(lines)


def describe_export(system: MyriadSystem, site: str, export: str) -> str:
    """Schema and statistics of one export relation."""
    gateway = system.gateway(site)
    schema = gateway.export_relation_schema(export)
    stats = gateway.export_stats(export)
    lines = [f"Export {site}.{export}:"]
    for column in schema.columns:
        column_stats = stats.column(column.name)
        extra = ""
        if column_stats is not None:
            extra = (
                f"  [distinct={column_stats.distinct}, "
                f"nulls={column_stats.null_count}]"
            )
        lines.append(f"  {column.name} {column.datatype}{extra}")
    if schema.primary_key:
        lines.append(f"  PRIMARY KEY ({', '.join(schema.primary_key)})")
    lines.append(f"  rows: {stats.row_count}")
    return "\n".join(lines)


def format_result(columns: list[str], rows: list[tuple], limit: int = 50) -> str:
    """A small fixed-width table for REPL output."""
    shown = rows[:limit]
    cells = [[_render(value) for value in row] for row in shown]
    widths = [len(c) for c in columns]
    for row in cells:
        for position, text in enumerate(row):
            widths[position] = max(widths[position], len(text))
    header = " | ".join(
        name.ljust(widths[position]) for position, name in enumerate(columns)
    )
    rule = "-+-".join("-" * width for width in widths)
    lines = [header, rule]
    for row in cells:
        lines.append(
            " | ".join(
                text.ljust(widths[position])
                for position, text in enumerate(row)
            )
        )
    if len(rows) > limit:
        lines.append(f"... ({len(rows)} rows total)")
    else:
        lines.append(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return "\n".join(lines)


def _render(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
