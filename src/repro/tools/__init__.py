"""Application tools: schema browser and the query-interface REPL."""

from repro.tools import browser
from repro.tools.repl import QueryInterface

__all__ = ["browser", "QueryInterface"]
