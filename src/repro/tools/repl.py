r"""The MYRIAD query interface: a scriptable REPL.

The paper's application-tool layer: federation users and DBAs browse, modify
and create federated schemas and pose queries and transactions.  Commands:

- ``\components`` — list component DBMSs
- ``\exports <site>`` — list a site's export relations
- ``\export <site> <local_table> [AS <name>]`` — export a local table
- ``\federations`` — list federations
- ``\create federation <name>`` / ``\use <federation>``
- ``\relations`` — integrated relations of the current federation
- ``\describe <relation>`` — columns, sources, lineage, definition
- ``\define <name> AS <select-sql>`` — create an integrated relation
- ``\drop relation <name>`` — remove an integrated relation
- ``\stats <site> <export>`` — export relation schema + statistics
- ``\explain [simple|cost] <sql>`` — show the global plan
- ``\optimizer <simple|cost|cost-nosemijoin>`` — set the default optimizer
- ``\at <site> <sql>`` — run a statement on a site inside the current
  global transaction
- ``BEGIN`` / ``COMMIT`` / ``ROLLBACK`` — global transaction control
- anything else — a global SELECT against the current federation

The class is fully scriptable (``run_line`` returns the output string), so
tests and demos drive it without a terminal.
"""

from __future__ import annotations

import sys

from repro.errors import MyriadError
from repro.myriad import MyriadSystem
from repro.tools import browser
from repro.txn import GlobalTransaction


class QueryInterface:
    """Interactive/scriptable front end over a MyriadSystem."""

    def __init__(self, system: MyriadSystem, federation: str | None = None):
        self.system = system
        names = system.federation_names()
        self.current_federation: str | None = federation or (
            names[0] if names else None
        )
        self.txn: GlobalTransaction | None = None
        self.optimizer: str | None = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def run_line(self, line: str) -> str:
        """Execute one command/query; returns printable output."""
        line = line.strip().rstrip(";")
        if not line:
            return ""
        try:
            if line.startswith("\\"):
                return self._command(line[1:])
            upper = line.upper()
            if upper in ("BEGIN", "BEGIN TRANSACTION", "BEGIN WORK"):
                return self._begin()
            if upper in ("COMMIT", "COMMIT TRANSACTION", "COMMIT WORK"):
                return self._commit()
            if upper in ("ROLLBACK", "ROLLBACK TRANSACTION", "ABORT"):
                return self._rollback()
            first_word = upper.split(None, 1)[0] if upper else ""
            if first_word in ("INSERT", "UPDATE", "DELETE"):
                return self._dml(line)
            return self._query(line)
        except MyriadError as error:
            return f"error: {error}"

    def run_script(self, text: str) -> list[str]:
        """Run many lines; returns the per-line outputs."""
        return [self.run_line(line) for line in text.splitlines() if line.strip()]

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def _command(self, body: str) -> str:
        parts = body.split(None, 1)
        verb = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""

        if verb == "components":
            return browser.list_components(self.system)
        if verb == "exports":
            if not rest:
                return "usage: \\exports <site>"
            return browser.list_exports(self.system, rest.strip())
        if verb == "export":
            return self._export(rest)
        if verb == "federations":
            return browser.list_federations(self.system)
        if verb == "create":
            words = rest.split()
            if len(words) == 2 and words[0].lower() == "federation":
                self.system.create_federation(words[1])
                self.current_federation = words[1]
                return f"federation {words[1]} created (now current)"
            return "usage: \\create federation <name>"
        if verb == "use":
            federation = self.system.federation(rest.strip())
            self.current_federation = federation.name
            return f"using federation {federation.name}"
        if verb == "relations":
            federation = self._require_federation()
            names = federation.relation_names()
            return "integrated relations: " + (", ".join(names) or "(none)")
        if verb == "describe":
            return browser.describe_relation(
                self.system, self._require_federation().name, rest.strip()
            )
        if verb == "define":
            return self._define(rest)
        if verb == "drop":
            words = rest.split()
            if len(words) == 2 and words[0].lower() == "relation":
                self._require_federation().drop_relation(words[1])
                return f"relation {words[1]} dropped"
            return "usage: \\drop relation <name>"
        if verb == "explain":
            return self._explain(rest)
        if verb == "optimizer":
            choice = rest.strip().lower()
            processor = self.system.processor(self._require_federation().name)
            if choice not in processor.optimizers:
                return (
                    "usage: \\optimizer "
                    + "|".join(sorted(processor.optimizers))
                )
            self.optimizer = choice
            return f"default optimizer: {choice}"
        if verb == "at":
            return self._at(rest)
        if verb == "stats":
            words = rest.split()
            if len(words) != 2:
                return "usage: \\stats <site> <export>"
            return browser.describe_export(self.system, words[0], words[1])
        if verb in ("help", "?"):
            return __doc__ or ""
        return f"unknown command \\{verb} (try \\help)"

    def _export(self, rest: str) -> str:
        words = rest.split()
        if len(words) not in (2, 4) or (
            len(words) == 4 and words[2].upper() != "AS"
        ):
            return "usage: \\export <site> <local_table> [AS <name>]"
        site, local_table = words[0], words[1]
        export_name = words[3] if len(words) == 4 else None
        gateway = self.system.gateway(site)
        relation = gateway.export_table(local_table, export_name)
        return f"exported {site}.{relation.name} (from {local_table})"

    def _define(self, rest: str) -> str:
        name, _, sql = rest.partition(" AS ")
        if not sql:
            name, _, sql = rest.partition(" as ")
        if not sql:
            return "usage: \\define <name> AS <select-sql>"
        federation = self._require_federation()
        federation.define_relation(name.strip(), sql.strip())
        return f"integrated relation {name.strip()} defined"

    def _explain(self, rest: str) -> str:
        optimizer = self.optimizer
        words = rest.split(None, 1)
        if words and words[0].lower() in ("simple", "cost", "cost-nosemijoin"):
            optimizer = words[0].lower()
            rest = words[1] if len(words) > 1 else ""
        if not rest.strip():
            return "usage: \\explain [simple|cost|cost-nosemijoin] <sql>"
        return self.system.explain(
            self._require_federation().name, rest, optimizer
        )

    def _at(self, rest: str) -> str:
        words = rest.split(None, 1)
        if len(words) != 2:
            return "usage: \\at <site> <sql>"
        site, sql = words
        if self.txn is None:
            return "error: \\at requires an open global transaction (BEGIN)"
        result = self.txn.execute(site, sql)
        if hasattr(result, "columns"):
            return browser.format_result(result.columns, result.rows)
        return f"{result} row(s) affected at {site}"

    # ------------------------------------------------------------------
    # Transactions and queries
    # ------------------------------------------------------------------

    def _begin(self) -> str:
        if self.txn is not None:
            return "error: a global transaction is already open"
        self.txn = self.system.begin_transaction()
        return f"global transaction {self.txn.global_id} started"

    def _commit(self) -> str:
        if self.txn is None:
            return "error: no open global transaction"
        global_id = self.txn.global_id
        try:
            self.txn.commit()
        finally:
            self.txn = None
        return f"global transaction {global_id} committed"

    def _rollback(self) -> str:
        if self.txn is None:
            return "error: no open global transaction"
        global_id = self.txn.global_id
        self.txn.abort()
        self.txn = None
        return f"global transaction {global_id} aborted"

    def _dml(self, sql: str) -> str:
        """DML against an updatable integrated relation (autocommit or txn)."""
        federation = self._require_federation()
        if self.txn is not None:
            count = self.system.transactional_update(
                self.txn, federation.name, sql
            )
        else:
            count = self.system.update(federation.name, sql)
        return f"{count} row(s) affected"

    def _query(self, sql: str) -> str:
        federation = self._require_federation()
        if self.txn is not None:
            result = self.system.transactional_query(
                self.txn, federation.name, sql, self.optimizer
            )
        else:
            result = self.system.query(federation.name, sql, self.optimizer)
        table = browser.format_result(result.columns, result.rows)
        footer = (
            f"[{result.trace.message_count} msgs, "
            f"{result.trace.total_bytes} bytes, "
            f"{result.trace.elapsed_s * 1000:.2f}ms simulated]"
        )
        return f"{table}\n{footer}"

    def _require_federation(self):
        if self.current_federation is None:
            raise MyriadError(
                "no federation selected (\\create federation <name> or \\use)"
            )
        return self.system.federation(self.current_federation)


def main() -> int:  # pragma: no cover - interactive entry point
    """Interactive loop over the demo university federation."""
    from repro.workloads import build_university_system

    print("MYRIAD query interface — demo university federation")
    print("type \\help for commands, ctrl-D to exit")
    interface = QueryInterface(build_university_system())
    while True:
        try:
            line = input("myriad> ")
        except EOFError:
            print()
            return 0
        output = interface.run_line(line)
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
