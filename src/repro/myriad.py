"""MyriadSystem — the top-level facade tying every subsystem together.

A :class:`MyriadSystem` owns the simulated network, the component DBMSs and
their gateways, any number of federations, and the global transaction
manager.  It is the API a downstream user starts from::

    from repro import MyriadSystem

    system = MyriadSystem()
    ora = system.add_oracle("ora")
    pg = system.add_postgres("pg")
    ... create tables, export them ...
    fed = system.create_federation("corp")
    fed.add_relation(union_merge(...))
    result = system.query("corp", "SELECT ... FROM all_emp ...")
"""

from __future__ import annotations

from repro.errors import FederationError
from repro.gateway import Gateway
from repro.health import HealthTracker
from repro.localdb import LocalDBMS, OracleDBMS, PostgresDBMS
from repro.net import FaultInjector, Network
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.query import GlobalQueryProcessor, GlobalResult
from repro.schema import Federation
from repro.txn import GlobalTransaction, GlobalTransactionManager


class MyriadSystem:
    """One MYRIAD installation: components, gateways, federations, GTM."""

    def __init__(
        self,
        network: Network | None = None,
        query_timeout: float | None = 5.0,
        default_optimizer: str = "cost",
        observability: bool = True,
        parallel_fetches: int = 4,
        plan_cache_size: int = 64,
        fragment_cache: bool | int = True,
        mvcc_reads: bool = True,
        adaptive_feedback: bool = False,
        adaptive_replan: bool = False,
        replan_threshold: float = 3.0,
        slow_query_threshold_s: float | None = 1.0,
        trace_sample_rate: float = 1.0,
        replication_factor: int = 1,
        follower_reads: bool = False,
        replication_staleness: int = 0,
        replication_seed: int = 0,
        retry_jitter: bool = False,
        jitter_seed: int = 0,
        vectorized: bool = False,
        wire_compression: bool = False,
    ):
        self.network = network or Network()
        # One observability handle serves the whole installation; every
        # subsystem reaches it through the shared network.  A caller-built
        # network that already carries a handle keeps it (and keeps its
        # own threshold/sampling settings).
        if self.network.obs is None:
            self.network.obs = Observability(
                enabled=observability,
                slow_query_threshold_s=slow_query_threshold_s,
                trace_sample_rate=trace_sample_rate,
            )
        self.obs: Observability = self.network.obs
        # Windowed metrics and SLO burn rates run on the simulated clock.
        self.obs.bind_clock(lambda: self.network.now_s)
        if self.network.faults is not None and self.network.faults.obs is None:
            self.network.faults.obs = self.obs
        # Per-site circuit breakers, fed by every message outcome on the
        # network and cooled down on its simulated clock.  A caller-built
        # network that already carries a tracker keeps it.
        if self.network.health is None:
            self.network.health = HealthTracker(
                clock=lambda: self.network.now_s, obs=self.obs
            )
        self.health: HealthTracker = self.network.health
        self.components: dict[str, LocalDBMS] = {}
        self.gateways: dict[str, Gateway] = {}
        self.federations: dict[str, Federation] = {}
        self.default_optimizer = default_optimizer
        #: Performance knobs, applied to every federation's processor:
        #: fetch thread-pool width (1 = sequential), compiled-plan LRU size
        #: (0 = off), and the fragment cache (False = off, or an int
        #: capacity).  See README "Performance: parallel fetches & caching".
        self.parallel_fetches = parallel_fetches
        self.plan_cache_size = plan_cache_size
        self.fragment_cache = fragment_cache
        #: Adaptive optimization knobs (experiment E17).  Both default
        #: OFF: with them off, planning and simulated accounting are
        #: bit-identical to the non-adaptive system.
        #: ``adaptive_feedback`` learns per-(site, export, predicate
        #: shape) cardinalities from EXPLAIN ANALYZE actuals and blends
        #: them into cost estimates; ``adaptive_replan`` re-optimizes the
        #: remaining stages mid-query when a fetch's actuals diverge from
        #: estimates by ``replan_threshold``x or a site's breaker opens.
        self.adaptive_feedback = adaptive_feedback
        self.adaptive_replan = adaptive_replan
        self.replan_threshold = replan_threshold
        #: Default for components built via add_oracle/add_postgres: MVCC
        #: snapshot reads (autocommit SELECTs take no table locks).  See
        #: README "Serving & MVCC".
        self.mvcc_reads = mvcc_reads
        #: Columnar-engine knobs (experiment E20).  Both default OFF: with
        #: them off, execution and simulated accounting are bit-identical
        #: to the row-at-a-time system.  ``vectorized`` runs every local
        #: engine (components built via add_oracle/add_postgres plus the
        #: federation-site residual) batch-at-a-time on the columnar
        #: engine; ``wire_compression`` dict/RLE-encodes shipped fragments
        #: so the cost model charges compressed bytes.  See README
        #: "Columnar engine & wire compression".
        self.vectorized = vectorized
        self.wire_compression = wire_compression
        #: Replication knobs (experiment E19).  With
        #: ``replication_factor=1`` (the default) no replica-group
        #: machinery is constructed at all — behaviour and simulated
        #: accounting are bit-identical to the unreplicated system.  With
        #: N > 1, every component built via add_oracle/add_postgres
        #: becomes a Raft-style group of N replicas; ``follower_reads``
        #: lets autocommit SELECTs be served by followers within
        #: ``replication_staleness`` log entries of the leader's commit
        #: index.  See README "Replication & failover".
        self.replication_factor = replication_factor
        self.follower_reads = follower_reads
        self.replication_staleness = replication_staleness
        self.replication_seed = replication_seed
        #: Per-site replica groups (only for sites built with
        #: ``replication_factor > 1``): site → ReplicaGroup.
        self.replica_groups: dict[str, object] = {}
        #: Seeded deterministic jitter on retry backoff (fetches and 2PC
        #: branch retries), so post-failover retry storms desynchronise.
        #: Off by default: with the knob off the RNG is never drawn and
        #: accounting stays bit-identical.
        self.retry_jitter = retry_jitter
        self.jitter_seed = jitter_seed
        self._server = None
        self.transactions = GlobalTransactionManager(
            self.gateways,
            query_timeout=query_timeout,
            obs=self.obs,
            retry_jitter=retry_jitter,
            jitter_seed=jitter_seed,
        )
        self._processors: dict[str, GlobalQueryProcessor] = {}
        self._deadlock_monitor = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle / shutdown
    # ------------------------------------------------------------------

    def start_deadlock_monitor(self, interval_s: float = 0.05):
        """Start (or return) the system-owned global deadlock monitor.

        The monitor's daemon thread is stopped by :meth:`close`, so
        callers using the system as a context manager never leak it.
        """
        if self._deadlock_monitor is None:
            from repro.txn.deadlock import GlobalDeadlockMonitor

            self._deadlock_monitor = GlobalDeadlockMonitor(
                self.gateways, interval_s=interval_s
            )
            self._deadlock_monitor.start()
        return self._deadlock_monitor

    @property
    def deadlock_monitor(self):
        """The system-owned deadlock monitor, or ``None`` if never started."""
        return self._deadlock_monitor

    def close(self) -> None:
        """Shut the installation down: stop threads, flush every WAL.

        Stops the system-owned :class:`GlobalDeadlockMonitor` thread (if
        :meth:`start_deadlock_monitor` ran) and flushes the coordinator
        WAL plus every participant WAL, so nothing is left unflushed or
        running when a test / chaos run finishes.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            self._server = None
        if self._deadlock_monitor is not None:
            self._deadlock_monitor.stop()
            self._deadlock_monitor = None
        for processor in self._processors.values():
            processor.close()
        self.transactions.wal.flush()
        for dbms in self.components.values():
            dbms.transactions.wal.flush()
        for gateway in self.gateways.values():
            for dbms in getattr(gateway, "replica_dbmses", ()):
                dbms.transactions.wal.flush()

    def __enter__(self) -> "MyriadSystem":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """System-wide metrics registry (counters / gauges / histograms)."""
        return self.obs.metrics

    @property
    def tracer(self) -> Tracer:
        """System-wide span tracer (query, 2PC, and deadlock-sweep spans)."""
        return self.obs.tracer

    @property
    def events(self):
        """System-wide structured event log (2PC, deadlocks, faults, WAL)."""
        return self.obs.events

    @property
    def slow_query_threshold_s(self) -> float | None:
        """Simulated-latency threshold for ``query.slow`` events."""
        return self.obs.slow_query_threshold_s

    @slow_query_threshold_s.setter
    def slow_query_threshold_s(self, value: float | None) -> None:
        self.obs.slow_query_threshold_s = value

    def add_slo(
        self,
        name: str,
        objective: float = 0.999,
        kind: str = "availability",
        threshold_s: float | None = None,
        rules=None,
    ):
        """Register an SLO over this installation's request stream.

        ``kind="availability"`` counts failed/degraded queries against the
        objective; ``kind="latency"`` additionally counts queries slower
        than ``threshold_s`` (simulated).  Burn-rate alert rules default to
        :data:`repro.obs.slo.DEFAULT_RULES`; pass
        :class:`~repro.obs.BurnRateRule` tuples to override.  See README
        "Operating MYRIAD".
        """
        return self.obs.add_slo(
            name,
            objective=objective,
            kind=kind,
            threshold_s=threshold_s,
            rules=rules,
        )

    def observability_report(self, last_spans: int | None = 8) -> str:
        """Text dump of metrics, the event tail, and recent span trees.

        On a system built with ``observability=False`` this returns an
        explicit "observability disabled" marker, never empty sections.
        """
        return self.obs.render(last_spans=last_spans)

    # -- live introspection --------------------------------------------

    def lock_table(self) -> dict[str, list[dict]]:
        """Per-site held/waiting table locks by mode (global-txn terms)."""
        from repro.obs.introspect import lock_table

        return lock_table(self)

    def wait_for_graph(self) -> dict:
        """Global wait-for edges + cycles + victims + a Graphviz DOT render."""
        from repro.obs.introspect import wait_for_graph

        return wait_for_graph(self)

    def transaction_states(self) -> list[dict]:
        """Every known global txn: coordinator vs. per-branch gateway state."""
        from repro.obs.introspect import transaction_states

        return transaction_states(self)

    def federation_stats(self) -> dict:
        """Sites, federations, network totals, and transaction counters."""
        from repro.obs.introspect import federation_stats

        return federation_stats(self)

    def dump_debug_bundle(self, directory):
        """Write a post-mortem directory: traces, metrics, events, config.

        See :func:`repro.obs.export.dump_debug_bundle`; reload with
        :func:`repro.obs.export.load_debug_bundle` or inspect with
        ``python -m repro.obs.report --bundle DIR``.  Raises
        :class:`~repro.errors.MyriadError` when observability is disabled.
        """
        from repro.obs.export import dump_debug_bundle

        return dump_debug_bundle(self, directory)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def inject_faults(self, seed: int = 0) -> FaultInjector:
        """Install (or return) the network's deterministic fault injector.

        The injector is consulted on every simulated message; see
        :class:`repro.net.FaultInjector` for drop rules, site crashes, and
        partitions.  Idempotent: a second call returns the installed one.
        """
        if self.network.faults is None:
            self.network.faults = FaultInjector(seed)
        if self.network.faults.obs is None:
            self.network.faults.obs = self.obs
        return self.network.faults

    # ------------------------------------------------------------------
    # Component management
    # ------------------------------------------------------------------

    def add_component(
        self, dbms: LocalDBMS, site: str | None = None
    ) -> Gateway:
        """Register an existing component DBMS and build its gateway."""
        site = site or dbms.name
        if site in self.gateways:
            raise FederationError(f"site {site!r} already registered")
        gateway = Gateway(
            dbms, self.network, site, wire_compression=self.wire_compression
        )
        self.components[site] = dbms
        self.gateways[site] = gateway
        return gateway

    def add_replicated(self, dbmses: list[LocalDBMS], site: str):
        """Register one logical site backed by a replica group.

        ``dbmses[0]`` seeds the initial leader; each replica gets its own
        gateway under the network site ``{site}#{i}``.  The returned
        :class:`~repro.replication.ReplicatedGateway` is a drop-in for a
        plain gateway in :attr:`gateways`.
        """
        from repro.replication import ReplicaGroup, ReplicatedGateway

        if site in self.gateways:
            raise FederationError(f"site {site!r} already registered")
        inner = [
            Gateway(
                dbms,
                self.network,
                f"{site}#{index}",
                wire_compression=self.wire_compression,
            )
            for index, dbms in enumerate(dbmses)
        ]
        group = ReplicaGroup(
            site,
            inner,
            self.network,
            seed=self.replication_seed,
            obs=self.obs,
        )
        gateway = ReplicatedGateway(
            group,
            follower_reads=self.follower_reads,
            staleness_bound=self.replication_staleness,
        )
        self.components[site] = dbmses[0]
        self.gateways[site] = gateway
        self.replica_groups[site] = group
        return gateway

    def _add_dialect(self, factory, name: str, **kwargs):
        kwargs.setdefault("mvcc_reads", self.mvcc_reads)
        kwargs.setdefault("vectorized", self.vectorized)
        if self.replication_factor <= 1:
            return self.add_component(factory(name, **kwargs))
        dbmses = [
            factory(f"{name}#{index}", **kwargs)
            for index in range(self.replication_factor)
        ]
        return self.add_replicated(dbmses, name)

    def add_oracle(self, name: str, **kwargs) -> Gateway:
        """Create and register an Oracle-dialect component DBMS."""
        return self._add_dialect(OracleDBMS, name, **kwargs)

    def add_postgres(self, name: str, **kwargs) -> Gateway:
        """Create and register a Postgres-dialect component DBMS."""
        return self._add_dialect(PostgresDBMS, name, **kwargs)

    def component(self, site: str) -> LocalDBMS:
        try:
            return self.components[site]
        except KeyError:
            raise FederationError(f"unknown site {site!r}") from None

    def gateway(self, site: str) -> Gateway:
        try:
            return self.gateways[site]
        except KeyError:
            raise FederationError(f"unknown site {site!r}") from None

    def site_names(self) -> list[str]:
        return sorted(self.gateways)

    # ------------------------------------------------------------------
    # Federations
    # ------------------------------------------------------------------

    def create_federation(self, name: str) -> Federation:
        if name.lower() in self.federations:
            raise FederationError(f"federation {name!r} already exists")
        federation = Federation(name, self.gateways)
        self.federations[name.lower()] = federation
        return federation

    def federation(self, name: str) -> Federation:
        try:
            return self.federations[name.lower()]
        except KeyError:
            raise FederationError(f"unknown federation {name!r}") from None

    def drop_federation(self, name: str) -> None:
        if name.lower() not in self.federations:
            raise FederationError(f"unknown federation {name!r}")
        del self.federations[name.lower()]
        processor = self._processors.pop(name.lower(), None)
        if processor is not None:
            processor.close()

    def federation_names(self) -> list[str]:
        return sorted(f.name for f in self.federations.values())

    # ------------------------------------------------------------------
    # Query processing
    # ------------------------------------------------------------------

    def processor(self, federation_name: str) -> GlobalQueryProcessor:
        key = federation_name.lower()
        if key not in self._processors:
            self._processors[key] = GlobalQueryProcessor(
                self.federation(federation_name),
                self.network,
                default_optimizer=self.default_optimizer,
                parallel_fetches=self.parallel_fetches,
                plan_cache_size=self.plan_cache_size,
                fragment_cache=self.fragment_cache,
                adaptive_feedback=self.adaptive_feedback,
                adaptive_replan=self.adaptive_replan,
                replan_threshold=self.replan_threshold,
                retry_jitter=self.retry_jitter,
                jitter_seed=self.jitter_seed,
                vectorized=self.vectorized,
                wire_compression=self.wire_compression,
            )
        return self._processors[key]

    def query(
        self,
        federation_name: str,
        sql: str,
        optimizer: str | None = None,
        timeout: float | None = None,
        allow_partial: bool = False,
        request_id: str | None = None,
    ) -> GlobalResult:
        """Run a global SELECT against one federation (autocommit read).

        With ``allow_partial=True``, unreachable sites degrade the result
        (``result.degraded`` / ``result.missing_sites``) instead of
        raising — the paper's partial-availability posture for reads.
        ``request_id`` lets a serving layer thread its correlation id
        through; direct callers get one minted (``result.request_id``).
        """
        return self.processor(federation_name).execute(
            sql,
            optimizer=optimizer,
            timeout=timeout,
            allow_partial=allow_partial,
            request_id=request_id,
        )

    def explain(
        self, federation_name: str, sql: str, optimizer: str | None = None
    ) -> str:
        return self.processor(federation_name).explain(sql, optimizer)

    # ------------------------------------------------------------------
    # Serving layer
    # ------------------------------------------------------------------

    def create_server(self, max_sessions: int = 256):
        """The system-owned :class:`~repro.server.FederationServer`.

        Created on first call (``max_sessions`` applies then); subsequent
        calls return the same server.  :meth:`close` shuts it down.
        """
        if self._server is None:
            from repro.server import FederationServer

            self._server = FederationServer(self, max_sessions=max_sessions)
        return self._server

    @property
    def server(self):
        """The serving layer, or ``None`` if ``create_server`` never ran."""
        return self._server

    # ------------------------------------------------------------------
    # Global transactions
    # ------------------------------------------------------------------

    def begin_transaction(
        self, global_id: str | None = None
    ) -> GlobalTransaction:
        return self.transactions.begin(global_id)

    def transactional_query(
        self,
        txn: GlobalTransaction,
        federation_name: str,
        sql: str,
        optimizer: str | None = None,
        allow_partial: bool = False,
        request_id: str | None = None,
    ) -> GlobalResult:
        """Federation SELECT under a global transaction (locks held)."""
        return self.transactions.run_global_query(
            txn,
            self.processor(federation_name),
            sql,
            optimizer,
            allow_partial=allow_partial,
            request_id=request_id,
        )

    def transactional_update(
        self, txn: GlobalTransaction, federation_name: str, sql: str
    ) -> int:
        """DML against an updatable integrated relation, under ``txn``."""
        return self.transactions.execute_federated(
            txn, self.federation(federation_name), sql
        )

    def update(self, federation_name: str, sql: str) -> int:
        """Autocommit DML against an updatable integrated relation."""
        txn = self.begin_transaction()
        try:
            count = self.transactional_update(txn, federation_name, sql)
        except Exception:
            txn.abort()
            raise
        txn.commit()
        return count
