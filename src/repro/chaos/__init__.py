"""Chaos engineering for the federation: deterministic crash-schedule
exploration of the 2PC/WAL protocol (experiment E14) and leader-kill
schedules for the replication layer (experiment E19)."""

from repro.chaos.explorer import (
    ChaosReport,
    CoordinatorCrash,
    CrashRun,
    check_invariants,
    enumerate_crash_points,
    run_crash,
    run_sweep,
)
from repro.chaos.replication import (
    ReplicaChaosReport,
    ReplicaCrashRun,
    check_replication_invariants,
    enumerate_replication_points,
    run_replica_crash,
    run_replica_sweep,
)

__all__ = [
    "ChaosReport",
    "CoordinatorCrash",
    "CrashRun",
    "ReplicaChaosReport",
    "ReplicaCrashRun",
    "check_invariants",
    "check_replication_invariants",
    "enumerate_crash_points",
    "enumerate_replication_points",
    "run_crash",
    "run_replica_crash",
    "run_replica_sweep",
    "run_sweep",
]
