"""Chaos engineering for the federation: deterministic crash-schedule
exploration of the 2PC/WAL protocol (experiment E14)."""

from repro.chaos.explorer import (
    ChaosReport,
    CoordinatorCrash,
    CrashRun,
    check_invariants,
    enumerate_crash_points,
    run_crash,
    run_sweep,
)

__all__ = [
    "ChaosReport",
    "CoordinatorCrash",
    "CrashRun",
    "check_invariants",
    "enumerate_crash_points",
    "run_crash",
    "run_sweep",
]
