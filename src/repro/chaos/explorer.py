"""Deterministic crash-schedule exploration for the 2PC/WAL protocol.

Gray's recipe for believing a recovery protocol: enumerate every point
where a process can die, kill it there, run recovery, and check the
invariants that must hold no matter what.  This module does exactly that
for the MYRIAD coordinator and its participants, on the simulated
network — so every schedule is reproducible from ``(role, point, seed)``.

Mechanics:

- :meth:`~repro.txn.coordinator.GlobalTransactionManager.commit` calls an
  injectable ``crash_hook`` at every enumerated protocol step (around each
  ``COORD_*`` append, between prepare votes, around each decision
  delivery).  :func:`enumerate_crash_points` records which points fire for
  a workload; :func:`run_crash` re-runs it and acts at one point:

  - **coordinator crash** — the hook raises :class:`CoordinatorCrash`
    (deliberately *not* a ``MyriadError``, so no protocol layer can
    swallow it); the harness then drops the coordinator's volatile state
    and unflushed WAL tail, exactly what a process death loses
  - **participant crash** — the hook crashes the victim site on the
    fault injector (network isolation: the site's own state survives,
    messages to/from it are lost), then the site restarts

- recovery runs (:meth:`recover_in_doubt`), and :func:`check_invariants`
  audits the federation: atomic commit, agreement with the durable
  decision, no lost committed writes, no surviving branches, no orphaned
  locks or local transactions, pending deliveries drained.

Workloads: ``mode="2pc"`` is a three-branch bank transfer (full 2PC);
``mode="1pc"`` is a single-branch update (the one-phase optimisation,
whose durability gap this PR closed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TwoPhaseCommitError

#: Accounts per site in the chaos workload's bank.
ACCOUNTS_PER_SITE = 4
INITIAL_BALANCE = 1000.0


class CoordinatorCrash(Exception):
    """The simulated coordinator process died at a crash point.

    Intentionally NOT a :class:`~repro.errors.MyriadError`: the 2PC
    delivery loop catches ``MyriadError`` to park undeliverable
    decisions, and a crash must never be mistaken for one.
    """

    def __init__(self, point: str):
        super().__init__(f"coordinator crashed at {point}")
        self.point = point


@dataclass
class CrashRun:
    """One explored schedule: crash ``role`` at ``point`` under ``seed``."""

    role: str  # 'coordinator' | 'participant'
    point: str
    seed: int
    mode: str  # '2pc' | '1pc'
    #: What the application observed: 'committed', 'aborted', or 'crash'
    #: (the coordinator died before reporting an outcome).
    app_outcome: str = "crash"
    #: The durable decision recovery acted on ('commit' or 'abort').
    decision: str = "abort"
    #: (global_id, site, action) triples recover_in_doubt resolved.
    recovered: list = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def label(self) -> str:
        return f"{self.mode}/{self.role}@{self.point} seed={self.seed}"


@dataclass
class ChaosReport:
    """All runs of one sweep plus the invariant verdict."""

    runs: list[CrashRun] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    @property
    def violations(self) -> list[tuple[CrashRun, str]]:
        return [
            (run, violation)
            for run in self.runs
            for violation in run.violations
        ]

    def points(self, mode: str | None = None, role: str | None = None):
        """Distinct crash points explored (optionally filtered)."""
        return sorted(
            {
                run.point
                for run in self.runs
                if (mode is None or run.mode == mode)
                and (role is None or run.role == role)
            }
        )

    def summary(self) -> list[dict]:
        """Per (mode, role): runs, points, outcomes, recoveries, violations."""
        rows: dict[tuple[str, str], dict] = {}
        for run in self.runs:
            row = rows.setdefault(
                (run.mode, run.role),
                {
                    "mode": run.mode,
                    "role": run.role,
                    "runs": 0,
                    "points": set(),
                    "committed": 0,
                    "aborted": 0,
                    "crash": 0,
                    "recovered_actions": 0,
                    "violations": 0,
                },
            )
            row["runs"] += 1
            row["points"].add(run.point)
            row[run.app_outcome] += 1
            row["recovered_actions"] += len(run.recovered)
            row["violations"] += len(run.violations)
        out = []
        for (_, _), row in sorted(rows.items()):
            row["points"] = len(row["points"])
            out.append(row)
        return out

    def render(self) -> str:
        """Human-readable invariant report (the CI artifact)."""
        seeds = sorted({run.seed for run in self.runs})
        lines = [
            "MYRIAD chaos sweep — crash-schedule invariant report",
            f"runs: {len(self.runs)}  seeds: {len(seeds)} "
            f"({min(seeds)}..{max(seeds)})" if self.runs else "runs: 0",
            "",
            "invariants checked after every crash + recovery:",
            "  1. atomic commit: all branch balances agree with the",
            "     coordinator's durable decision (presumed abort absent one)",
            "  2. no lost committed writes: an outcome the application",
            "     observed as COMMITTED is durable and applied everywhere",
            "  3. no branch (prepared or active) survives recovery",
            "  4. no orphaned locks or local transactions at any site",
            "  5. the durable pending-delivery list is drained",
            "",
        ]
        for row in self.summary():
            lines.append(
                f"{row['mode']:>4} {row['role']:<12} "
                f"runs={row['runs']:<4} points={row['points']:<3} "
                f"committed={row['committed']:<4} aborted={row['aborted']:<4} "
                f"crash={row['crash']:<4} "
                f"recovered={row['recovered_actions']:<4} "
                f"violations={row['violations']}"
            )
        lines.append("")
        if self.ok:
            lines.append("RESULT: PASS — zero invariant violations")
        else:
            lines.append(
                f"RESULT: FAIL — {len(self.violations)} invariant violations"
            )
            for run, violation in self.violations:
                lines.append(f"  {run.label()}: {violation}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------


def _build_system():
    from repro.workloads import build_bank_sites

    system = build_bank_sites(3, ACCOUNTS_PER_SITE, query_timeout=1.0)
    system.inject_faults(seed=0)
    return system


def _amount(seed: int) -> float:
    """Seed-dependent transfer amount, so schedules differ across seeds."""
    return float(5 + seed % 17)


def _run_workload(system, mode: str, seed: int) -> str:
    """One global transaction; returns the application-visible outcome.

    ``2pc``: a three-branch transfer (b0 −amount, b1 +amount, b2 touched)
    — the full prepare/decide/deliver protocol.  ``1pc``: a single-branch
    withdrawal — the one-phase optimisation path.
    """
    amount = _amount(seed)
    txn = system.begin_transaction()
    txn.execute(
        "b0",
        f"UPDATE account SET balance = balance - {amount} WHERE acct = 0",
    )
    if mode == "2pc":
        txn.execute(
            "b1",
            "UPDATE account SET balance = balance + "
            f"{amount} WHERE acct = {ACCOUNTS_PER_SITE}",
        )
        txn.execute(
            "b2",
            "UPDATE account SET balance = balance + 0 "
            f"WHERE acct = {2 * ACCOUNTS_PER_SITE}",
        )
    try:
        txn.commit()
    except TwoPhaseCommitError:
        return "aborted"
    return "committed"


def _balance(system, site: str, acct: int) -> float:
    result = system.components[site].execute(
        f"SELECT balance FROM account WHERE acct = {acct}"
    )
    return float(result.rows[0][0])


# ---------------------------------------------------------------------------
# Crash-point enumeration
# ---------------------------------------------------------------------------


def enumerate_crash_points(mode: str = "2pc") -> list[str]:
    """Crash points that fire for this workload, in protocol order."""
    system = _build_system()
    gtm = system.transactions
    fired: list[str] = []
    gtm.crash_hook = lambda point, **context: fired.append(point)
    try:
        _run_workload(system, mode, seed=0)
    finally:
        gtm.crash_hook = None
        system.close()
    seen: set[str] = set()
    return [p for p in fired if not (p in seen or seen.add(p))]


# ---------------------------------------------------------------------------
# Single-schedule execution
# ---------------------------------------------------------------------------


def run_crash(role: str, point: str, seed: int, mode: str = "2pc") -> CrashRun:
    """Crash ``role`` at ``point``, recover, and audit the invariants."""
    if role not in ("coordinator", "participant"):
        raise ValueError(f"unknown crash role {role!r}")
    run = CrashRun(role=role, point=point, seed=seed, mode=mode)
    system = _build_system()
    gtm = system.transactions
    faults = system.network.faults
    victim = "b0" if mode == "1pc" else f"b{seed % 3}"
    tripped: list[str] = []

    def hook(fired_point: str, **context: object) -> None:
        if fired_point != point or tripped:
            return
        tripped.append(fired_point)
        if role == "coordinator":
            raise CoordinatorCrash(fired_point)
        faults.crash_site(victim)

    gtm.crash_hook = hook
    try:
        run.app_outcome = _run_workload(system, mode, seed)
    except CoordinatorCrash:
        run.app_outcome = "crash"
    finally:
        gtm.crash_hook = None

    if role == "coordinator":
        # Process death: unflushed WAL tail and all volatile state gone.
        gtm.wal.simulate_crash()
        gtm.active.clear()
        gtm.pending_deliveries.clear()
    else:
        faults.restart_site(victim)

    run.recovered = gtm.recover_in_doubt()
    run.decision = gtm.wal.coordinator_decisions().get("G1", "abort")
    run.violations = check_invariants(
        system, mode, seed, run.app_outcome, global_id="G1"
    )
    system.close()
    return run


def check_invariants(
    system, mode: str, seed: int, app_outcome: str, global_id: str
) -> list[str]:
    """Everything that must hold after crash + recovery, or the protocol
    is broken.  Returns human-readable violations (empty = pass)."""
    violations: list[str] = []
    gtm = system.transactions
    decisions = gtm.wal.coordinator_decisions()
    decision = decisions.get(global_id, "abort")

    # Durable-decision agreement with what the application observed.
    if app_outcome == "committed" and decision != "commit":
        violations.append(
            "app observed COMMITTED but the durable decision is "
            f"{decision!r} (lost committed transaction)"
        )
    if app_outcome == "aborted" and decision == "commit":
        violations.append(
            "app observed an abort but the durable decision is commit"
        )

    # No branch of any kind survives recovery.
    for site, gateway in sorted(system.gateways.items()):
        if gateway.prepared_branches():
            violations.append(f"{site}: prepared branch survived recovery")
        if gateway.branch_states():
            violations.append(f"{site}: open branch survived recovery")

    # No orphaned local transactions or locks.
    for site, dbms in sorted(system.components.items()):
        manager = dbms.transactions
        if manager.active_transactions():
            violations.append(
                f"{site}: local transaction survived recovery"
            )
        if manager.forgotten_prepared():
            violations.append(
                f"{site}: forgotten prepared branch left unresolved"
            )
        held = [
            entry
            for entry in manager.locks.snapshot()
            if entry["holders"] or entry["waiters"]
        ]
        if held:
            violations.append(f"{site}: orphaned locks {held!r}")

    # Parked decisions all drained (every site is reachable again).
    if gtm.wal.pending_deliveries():
        violations.append("durable pending-delivery list not drained")

    # Atomicity / no lost writes, from the account balances themselves.
    amount = _amount(seed)
    b0 = _balance(system, "b0", 0)
    if mode == "1pc":
        expected = (
            INITIAL_BALANCE - amount
            if decision == "commit"
            else INITIAL_BALANCE
        )
        if b0 != expected:
            violations.append(
                f"b0 balance {b0} != {expected} for decision {decision!r}"
            )
    else:
        b1 = _balance(system, "b1", ACCOUNTS_PER_SITE)
        b2 = _balance(system, "b2", 2 * ACCOUNTS_PER_SITE)
        if decision == "commit":
            expected = (
                INITIAL_BALANCE - amount,
                INITIAL_BALANCE + amount,
                INITIAL_BALANCE,
            )
        else:
            expected = (INITIAL_BALANCE, INITIAL_BALANCE, INITIAL_BALANCE)
        actual = (b0, b1, b2)
        if actual != expected:
            violations.append(
                f"non-atomic outcome: balances {actual} != {expected} "
                f"for decision {decision!r}"
            )
    return violations


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------


def run_sweep(
    seeds,
    roles=("coordinator", "participant"),
    modes=("2pc", "1pc"),
) -> ChaosReport:
    """Every enumerated point × role × seed for each workload mode."""
    report = ChaosReport()
    for mode in modes:
        points = enumerate_crash_points(mode)
        for role in roles:
            for point in points:
                for seed in seeds:
                    report.runs.append(run_crash(role, point, seed, mode))
    return report
