"""Leader-kill crash-schedule exploration for replica groups.

Extends the 2PC/WAL chaos explorer (:mod:`repro.chaos.explorer`) to the
replication layer: every enumerated point of the Raft-style protocol —
around log appends for prepare write-sets and commit decisions, during
commit-index advancement, mid-election — kills the **current leader** of
one replica group (network isolation via the fault injector, replica
state survives) while a two-site bank transfer runs.  After the schedule
the partition heals, every group re-converges (:meth:`ReplicaGroup.
catch_up`), participant/coordinator recovery runs, and the audit checks
the three replication invariants on top of the base 2PC ones:

1. **single leader per term** — no term ever elected two leaders
   (:attr:`ReplicaGroup.violations` plus the election history)
2. **no committed-then-lost entry** — every entry that ever reached
   majority commit is still in the current leader's log at its index
3. **post-heal convergence** — every replica's applied index reaches the
   leader's commit index and all replica DBMSes hold identical rows

plus: no branch survives, no orphaned locks/local transactions, the
pending-delivery list is drained, and account balances are atomic
against the coordinator's durable decision.

The report's :meth:`ReplicaChaosReport.render` emits the greppable
``invariants=ok`` / ``failover=ok`` tokens CI keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.explorer import ACCOUNTS_PER_SITE, INITIAL_BALANCE, _amount
from repro.errors import MyriadError, TwoPhaseCommitError

#: Replicas per component site in the chaos workload.
REPLICATION_FACTOR = 3
#: The group whose protocol points are instrumented (first write site).
TARGET_GROUP = "b0"


@dataclass
class ReplicaCrashRun:
    """One explored schedule: kill the leader at ``point`` under ``seed``."""

    point: str
    seed: int
    #: 'committed' | 'aborted' | 'unavailable' (quorum lost mid-flight).
    app_outcome: str = "unavailable"
    decision: str = "abort"
    #: Elections the target group ran during the schedule.
    failovers: int = 0
    #: Simulated seconds the last failover took (election timeouts).
    failover_latency_s: float = 0.0
    #: True when the schedule deliberately destroyed the majority
    #: (``mid_election`` kills a second replica): unavailability is then
    #: the *correct* outcome, not a lost write.
    quorum_lost: bool = False
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def label(self) -> str:
        return f"leader-kill@{self.point} seed={self.seed}"


@dataclass
class ReplicaChaosReport:
    """All leader-kill runs plus the replication-invariant verdict."""

    runs: list[ReplicaCrashRun] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    @property
    def violations(self) -> list[tuple[ReplicaCrashRun, str]]:
        return [
            (run, violation)
            for run in self.runs
            for violation in run.violations
        ]

    def points(self) -> list[str]:
        return sorted({run.point for run in self.runs})

    @property
    def failed_writes(self) -> int:
        """Schedules whose transfer was lost outright (no commit, no
        clean abort) even though a majority survived — the
        write-availability headline number.  Quorum-loss schedules are
        excluded: with the majority dead, refusing the write is the
        correct (and only safe) behaviour."""
        return sum(
            1
            for run in self.runs
            if run.app_outcome == "unavailable" and not run.quorum_lost
        )

    @property
    def max_failover_latency_s(self) -> float:
        return max(
            (run.failover_latency_s for run in self.runs), default=0.0
        )

    def render(self) -> str:
        """Human-readable invariant report (the CI artifact)."""
        seeds = sorted({run.seed for run in self.runs})
        outcomes = {"committed": 0, "aborted": 0, "unavailable": 0}
        for run in self.runs:
            outcomes[run.app_outcome] += 1
        lines = [
            "MYRIAD replication chaos sweep — leader-kill invariant report",
            f"runs: {len(self.runs)}  points: {len(self.points())}  "
            f"seeds: {len(seeds)}"
            + (f" ({min(seeds)}..{max(seeds)})" if seeds else ""),
            "",
            "invariants checked after every leader kill + heal + recovery:",
            "  1. single leader per term (no split brain)",
            "  2. no committed-then-lost log entry across failover",
            "  3. post-heal convergence: all replicas applied to the",
            "     leader's commit index with identical DBMS contents",
            "  + the base 2PC audit: atomicity vs the durable decision,",
            "    no surviving branches, no orphaned locks, deliveries",
            "    drained",
            "",
            f"outcomes: committed={outcomes['committed']} "
            f"aborted={outcomes['aborted']} "
            f"unavailable={outcomes['unavailable']} "
            f"(of which quorum-loss by design: "
            f"{sum(1 for r in self.runs if r.quorum_lost)})",
            f"failovers: {sum(r.failovers for r in self.runs)} total, "
            f"max latency {self.max_failover_latency_s * 1000:.1f} ms "
            "(simulated)",
            "",
        ]
        for point in self.points():
            runs = [r for r in self.runs if r.point == point]
            bad = sum(len(r.violations) for r in runs)
            lines.append(
                f"  {point:<32} runs={len(runs):<3} "
                f"failovers={sum(r.failovers for r in runs):<3} "
                f"violations={bad}"
            )
        lines.append("")
        lines.append(
            "invariants=ok" if self.ok else "invariants=VIOLATED"
        )
        lines.append(
            "failover=ok"
            if self.failed_writes == 0
            else f"failover=LOSSY ({self.failed_writes} writes lost)"
        )
        if self.ok and self.failed_writes == 0:
            lines.append("RESULT: PASS — zero invariant violations")
        else:
            lines.append(
                f"RESULT: FAIL — {len(self.violations)} invariant "
                f"violations, {self.failed_writes} lost writes"
            )
            for run, violation in self.violations:
                lines.append(f"  {run.label()}: {violation}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------


def _build_replicated_system(follower_reads: bool = True):
    from repro.workloads import build_bank_sites

    system = build_bank_sites(
        3,
        ACCOUNTS_PER_SITE,
        query_timeout=1.0,
        replication_factor=REPLICATION_FACTOR,
        follower_reads=follower_reads,
    )
    system.inject_faults(seed=0)
    return system


def _run_transfer(system, seed: int) -> str:
    """One two-branch transfer b0 → b1; the application-visible outcome."""
    amount = _amount(seed)
    txn = system.begin_transaction()
    try:
        txn.execute(
            "b0",
            f"UPDATE account SET balance = balance - {amount} WHERE acct = 0",
        )
        txn.execute(
            "b1",
            "UPDATE account SET balance = balance + "
            f"{amount} WHERE acct = {ACCOUNTS_PER_SITE}",
        )
        txn.commit()
    except TwoPhaseCommitError:
        return "aborted"
    except MyriadError:
        # Quorum lost mid-flight: the group (hence the site) is down.
        # Roll the coordinator state back so recovery can resolve it.
        try:
            txn.abort()
        except MyriadError:
            pass
        return "unavailable"
    return "committed"


# ---------------------------------------------------------------------------
# Crash-point enumeration
# ---------------------------------------------------------------------------


def enumerate_replication_points() -> list[str]:
    """Replication protocol points that fire for the transfer workload.

    ``mid_election`` is appended explicitly: it only fires once a kill has
    already forced an election, so enumeration alone never reaches it.
    """
    system = _build_replicated_system()
    group = system.replica_groups[TARGET_GROUP]
    fired: list[str] = []
    group.chaos_hook = lambda point, **context: fired.append(point)
    try:
        _run_transfer(system, seed=0)
    finally:
        group.chaos_hook = None
        system.close()
    seen: set[str] = set()
    ordered = [p for p in fired if not (p in seen or seen.add(p))]
    if "mid_election" not in ordered:
        ordered.append("mid_election")
    return ordered


# ---------------------------------------------------------------------------
# Single-schedule execution
# ---------------------------------------------------------------------------


def run_replica_crash(point: str, seed: int) -> ReplicaCrashRun:
    """Kill the target group's leader at ``point``, heal, audit.

    For ``mid_election`` the leader is pre-crashed (forcing the first
    routed operation into an election) and the kill strikes a *second*
    replica mid-campaign — the quorum-loss schedule.
    """
    run = ReplicaCrashRun(
        point=point, seed=seed, quorum_lost=(point == "mid_election")
    )
    system = _build_replicated_system()
    gtm = system.transactions
    faults = system.network.faults
    group = system.replica_groups[TARGET_GROUP]
    tripped: list[str] = []

    def hook(fired_point: str, **context: object) -> None:
        if fired_point != point or tripped:
            return
        tripped.append(fired_point)
        if point == "mid_election":
            # Kill one more live replica mid-campaign (quorum loss).
            for replica in group.replicas:
                if not faults.is_crashed(replica.site):
                    faults.crash_site(replica.site)
                    return
        else:
            faults.crash_site(group.leader.site)

    group.chaos_hook = hook
    if point == "mid_election":
        faults.crash_site(group.leader.site)
    try:
        run.app_outcome = _run_transfer(system, seed)
    finally:
        group.chaos_hook = None

    # Heal, converge every group, then run participant recovery (parked
    # decisions drain against the healed groups).
    faults.heal()
    for replica_group in system.replica_groups.values():
        replica_group.catch_up()
    gtm.recover_in_doubt()
    for replica_group in system.replica_groups.values():
        replica_group.catch_up()

    run.decision = gtm.wal.coordinator_decisions().get("G1", "abort")
    run.failovers = group.failovers
    run.failover_latency_s = group.last_failover_s
    run.violations = check_replication_invariants(
        system, seed, run.app_outcome
    )
    system.close()
    return run


def check_replication_invariants(
    system, seed: int, app_outcome: str
) -> list[str]:
    """The three replication invariants + the base 2PC audit."""
    violations: list[str] = []
    gtm = system.transactions
    decision = gtm.wal.coordinator_decisions().get("G1", "abort")

    for site, group in sorted(system.replica_groups.items()):
        # 1. Single leader per term.
        violations.extend(group.violations)
        leader = group.leader

        # 2. No committed-then-lost entry: everything that ever reached
        # majority commit is still in the leader's log at its index.
        for entry in group.committed_history:
            if (
                entry.index > len(leader.log)
                or leader.log[entry.index - 1] != entry
            ):
                violations.append(
                    f"{site}: committed entry {entry.index} "
                    f"({entry.kind}) lost from the leader's log"
                )

        # 3. Post-heal convergence: applied indexes and DBMS contents.
        contents = []
        for replica in group.replicas:
            if replica.applied_index < leader.commit_index:
                violations.append(
                    f"{site}/{replica.site}: applied "
                    f"{replica.applied_index} < commit "
                    f"{leader.commit_index} after heal"
                )
            result = replica.gateway.dbms.execute(
                "SELECT acct, balance FROM account ORDER BY acct"
            )
            contents.append(tuple(result.rows))
        if len(set(contents)) > 1:
            violations.append(
                f"{site}: replica DBMS contents diverge after heal"
            )

        # Base audit: no branch of any kind survives at any replica.
        for replica in group.replicas:
            if replica.gateway.prepared_branches():
                violations.append(
                    f"{site}/{replica.site}: prepared branch survived"
                )
            if replica.gateway.branch_states():
                violations.append(
                    f"{site}/{replica.site}: open branch survived"
                )
            manager = replica.gateway.dbms.transactions
            if manager.active_transactions():
                violations.append(
                    f"{site}/{replica.site}: local transaction survived"
                )
            held = [
                entry
                for entry in manager.locks.snapshot()
                if entry["holders"] or entry["waiters"]
            ]
            if held:
                violations.append(
                    f"{site}/{replica.site}: orphaned locks {held!r}"
                )

    if gtm.wal.pending_deliveries():
        violations.append("durable pending-delivery list not drained")

    # Atomicity vs the durable decision, from the leaders' balances.
    if app_outcome == "committed" and decision != "commit":
        violations.append(
            "app observed COMMITTED but the durable decision is "
            f"{decision!r}"
        )
    amount = _amount(seed)

    def balance(site: str, acct: int) -> float:
        leader = system.replica_groups[site].leader
        result = leader.gateway.dbms.execute(
            f"SELECT balance FROM account WHERE acct = {acct}"
        )
        return float(result.rows[0][0])

    b0 = balance("b0", 0)
    b1 = balance("b1", ACCOUNTS_PER_SITE)
    if decision == "commit":
        expected = (INITIAL_BALANCE - amount, INITIAL_BALANCE + amount)
    else:
        expected = (INITIAL_BALANCE, INITIAL_BALANCE)
    if (b0, b1) != expected:
        violations.append(
            f"non-atomic outcome: balances {(b0, b1)} != {expected} "
            f"for decision {decision!r}"
        )
    return violations


# ---------------------------------------------------------------------------
# Sweep
# ---------------------------------------------------------------------------


def run_replica_sweep(seeds) -> ReplicaChaosReport:
    """Every enumerated replication point × seed, leader-kill schedule."""
    report = ReplicaChaosReport()
    points = enumerate_replication_points()
    for point in points:
        for seed in seeds:
            report.runs.append(run_replica_crash(point, seed))
    return report
