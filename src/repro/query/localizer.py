"""Localization: carve an expanded global query into per-site fragments.

Input: a query whose FROM items reference export relations as
``site.export`` (the output of :meth:`repro.schema.Federation.expand`).

Output: a :class:`GlobalPlan` — a list of :class:`Fetch` fragments (one
subquery shipped to one gateway) plus the residual query, rewritten over
temporary tables, that the federation site evaluates on the fetched
fragments.

Localization optionally performs the two classic reductions the full-fledged
optimizer relies on:

- **projection pushdown**: ship only the columns the residual query needs
- **selection pushdown**: ship single-relation WHERE conjuncts with the
  fragment query so filtering happens at the data's site

(The *simple* strategy — the paper's initially implemented optimizer — does
neither: it ships every referenced export relation whole.)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import FederationError
from repro.gateway import Gateway
from repro.sql import ast


@dataclass
class SemiJoinSpec:
    """Reduce this fetch by the join keys of an earlier fetch."""

    source_index: int  #: index into GlobalPlan.fetches
    source_column: str  #: column of the source fetch's output
    target_column: str  #: export column of this fetch to restrict


@dataclass
class Fetch:
    """One subquery shipped to one gateway."""

    index: int
    site: str
    export: str
    binding: str
    temp_name: str
    columns: list[str]
    predicate: ast.Expression | None = None
    semijoin: SemiJoinSpec | None = None
    #: True when this export sits on the null-supplied side of an outer
    #: join: no selection may be pushed into (or semijoined onto) it.
    protected: bool = False
    #: Whole-block shipping: a complete SELECT (aggregation, grouping,
    #: DISTINCT, LIMIT) evaluated at the component site.  When set,
    #: ``columns`` are the block's output names and ``predicate``/
    #: ``semijoin`` are unused.
    whole_query: ast.Select | None = None
    #: Optimizer estimates for this fetch (rows / shipped bytes / virtual
    #: seconds), filled by the planning strategy and compared against the
    #: measured actuals in ``GlobalResult.explain_analyze()``.
    est_rows: float | None = None
    est_bytes: float | None = None
    est_cost_s: float | None = None
    #: True when mid-query re-planning changed this fetch after execution
    #: started (its estimates were re-derived from measured actuals).
    replanned: bool = False

    def shipped_query(self, in_list: list[object] | None = None) -> ast.Select:
        """The SELECT sent to the gateway (export-relation namespace)."""
        if self.whole_query is not None:
            return self.whole_query
        where = self.predicate
        if self.semijoin is not None:
            if in_list is None:
                raise FederationError("semijoin fetch requires key values")
            restriction: ast.Expression
            if in_list:
                restriction = ast.InList(
                    ast.ColumnRef(self.semijoin.target_column),
                    [ast.Literal(v) for v in in_list],
                )
            else:  # no keys: the reduced fragment is empty
                restriction = ast.BinaryOp("=", ast.Literal(1), ast.Literal(0))
            where = ast.conjoin(
                [p for p in (where, restriction) if p is not None]
            )
        return ast.Select(
            items=[
                ast.SelectItem(ast.ColumnRef(column), column)
                for column in self.columns
            ],
            from_clause=[ast.TableName(self.export)],
            where=where,
        )


@dataclass
class JoinEdge:
    """An equi-join between two export fetches in the same query block."""

    left_fetch: int
    left_column: str
    right_fetch: int
    right_column: str


@dataclass
class GlobalPlan:
    """A localized global query ready for execution."""

    query: ast.Query  #: residual query over temp tables
    fetches: list[Fetch] = field(default_factory=list)
    join_edges: list[JoinEdge] = field(default_factory=list)
    strategy: str = "simple"
    estimated_cost_s: float | None = None
    notes: list[str] = field(default_factory=list)

    def fetch_summary(self, fetch: Fetch) -> str:
        """One-line description of one fetch (shared by EXPLAIN variants)."""
        from repro.sql.printer import SQLPrinter

        printer = SQLPrinter()
        if fetch.whole_query is not None:
            return (
                f"fetch #{fetch.index} {fetch.site}.{fetch.export} "
                f"AS {fetch.binding}: SHIPPED BLOCK "
                f"{printer.print_select(fetch.whole_query)}"
            )
        semijoin = ""
        if fetch.semijoin is not None:
            semijoin = (
                f" SEMIJOIN keys from #{fetch.semijoin.source_index}"
                f".{fetch.semijoin.source_column}"
                f" -> {fetch.semijoin.target_column}"
            )
        predicate = ""
        if fetch.predicate is not None:
            predicate = (
                f" WHERE {printer.print_expression(fetch.predicate)}"
            )
        return (
            f"fetch #{fetch.index} {fetch.site}.{fetch.export} "
            f"AS {fetch.binding}: [{', '.join(fetch.columns)}]"
            f"{predicate}{semijoin}"
        )

    def describe(self) -> str:
        """Readable plan summary (EXPLAIN output for global queries)."""
        from repro.sql.printer import SQLPrinter

        printer = SQLPrinter()
        lines = [f"GlobalPlan[{self.strategy}]"]
        if self.estimated_cost_s is not None:
            lines.append(f"  estimated cost: {self.estimated_cost_s * 1000:.2f}ms")
        for fetch in self.fetches:
            lines.append("  " + self.fetch_summary(fetch))
        for note in self.notes:
            lines.append(f"  note: {note}")
        lines.append("  residual: " + printer.print_query(self.query))
        return "\n".join(lines)


class Localizer:
    """Builds GlobalPlans from expanded queries."""

    def __init__(self, gateways: dict[str, Gateway]):
        self.gateways = gateways
        self._counter = itertools.count(1)

    def localize(self, query: ast.Query, pushdown: bool) -> GlobalPlan:
        plan = GlobalPlan(query=query, strategy="cost" if pushdown else "simple")
        plan.query, _ = self._localize_query(query, plan, pushdown)
        return plan

    # ------------------------------------------------------------------
    # Recursive rewriting
    # ------------------------------------------------------------------
    #
    # _localize_query returns (rewritten_query, col_info) where col_info is
    # a _ColInfo tracing each output column back to the export fetches that
    # produce it verbatim — the information the semijoin pass needs to see
    # join edges through view projections and unions.

    def _localize_query(
        self, query: ast.Query, plan: GlobalPlan, pushdown: bool
    ) -> tuple[ast.Query, "_ColInfo"]:
        if isinstance(query, ast.SetOperation):
            left, left_info = self._localize_query(query.left, plan, pushdown)
            right, right_info = self._localize_query(
                query.right, plan, pushdown
            )
            rewritten = ast.SetOperation(
                query.kind,
                left,
                right,
                list(query.order_by),
                query.limit,
                query.offset,
            )
            return rewritten, _ColInfo.combine(left_info, right_info)
        return self._localize_select(query, plan, pushdown)

    def _localize_select(
        self, select: ast.Select, plan: GlobalPlan, pushdown: bool
    ) -> tuple[ast.Select, "_ColInfo"]:
        # Whole-block shipping: a cardinality-reducing block that reads
        # exactly one export relation executes entirely at its site.
        if pushdown:
            shipped = self._try_whole_block(select, plan)
            if shipped is not None:
                return shipped

        # Recurse into expression-level subqueries first.
        select = ast.Select(
            items=[
                ast.SelectItem(
                    self._localize_expr(i.expression, plan, pushdown), i.alias
                )
                for i in select.items
            ],
            from_clause=list(select.from_clause),
            where=self._localize_expr(select.where, plan, pushdown)
            if select.where is not None
            else None,
            group_by=[
                self._localize_expr(g, plan, pushdown) for g in select.group_by
            ],
            having=self._localize_expr(select.having, plan, pushdown)
            if select.having is not None
            else None,
            order_by=[
                ast.OrderItem(
                    self._localize_expr(o.expression, plan, pushdown),
                    o.ascending,
                )
                for o in select.order_by
            ],
            limit=select.limit,
            offset=select.offset,
            distinct=select.distinct,
        )

        # Gather this block's bindings; recurse into derived tables now so
        # their column provenance is available for join-edge analysis.
        binding_columns: dict[str, list[str]] = {}
        export_refs: list[tuple[ast.TableName, str]] = []  # (node, binding)
        derived_info: dict[str, _ColInfo] = {}
        rewritten_subqueries: dict[int, ast.SubqueryRef] = {}

        def scan_ref(ref: ast.TableRef) -> None:
            if isinstance(ref, ast.TableName):
                binding = ref.binding
                if "." in ref.name:
                    site, export = self._split_export(ref.name)
                    schema = self.gateways[site].export_relation_schema(export)
                    binding = ref.alias or export
                    binding_columns[binding.lower()] = schema.column_names
                    export_refs.append((ref, binding))
                else:
                    raise FederationError(
                        f"unknown relation {ref.name!r} in global query "
                        "(not an integrated relation, not site-qualified)"
                    )
            elif isinstance(ref, ast.SubqueryRef):
                body, info = self._localize_query(ref.query, plan, pushdown)
                rewritten_subqueries[id(ref)] = ast.SubqueryRef(body, ref.alias)
                derived_info[ref.alias.lower()] = info
                binding_columns[ref.alias.lower()] = info.names or (
                    _query_output_names(ref.query)
                )
            elif isinstance(ref, ast.Join):
                scan_ref(ref.left)
                scan_ref(ref.right)

        for ref in select.from_clause:
            scan_ref(ref)

        protected = _protected_bindings(select.from_clause)

        # Selection pushdown: per-binding single-relation conjuncts.
        # Bindings on the null-supplied side of an outer join are excluded —
        # filtering them before the join would change the padding.
        pushed: dict[str, list[ast.Expression]] = {}
        residual_where = select.where
        if pushdown and export_refs and select.where is not None:
            kept: list[ast.Expression] = []
            export_bindings = {binding.lower() for _, binding in export_refs}
            for conjunct in ast.split_conjuncts(select.where):
                owner = _single_binding_of(conjunct, binding_columns)
                if (
                    owner is not None
                    and owner in export_bindings
                    and owner not in protected
                ):
                    pushed.setdefault(owner, []).append(conjunct)
                else:
                    kept.append(conjunct)
            residual_where = ast.conjoin(kept)

        # Projection pushdown: which columns does the residual need?
        # (Analyse with the residual WHERE so pushed-predicate columns do
        # not force their way into the shipped projection.)
        select.where = residual_where
        needed = (
            self._needed_columns(select, binding_columns)
            if pushdown
            else None
        )

        # Create fetches and rewrite the FROM items.
        replacements: dict[int, ast.TableRef] = {}
        fetch_of_binding: dict[str, int] = {}
        for node, binding in export_refs:
            site, export = self._split_export(node.name)
            all_columns = binding_columns[binding.lower()]
            if needed is None:
                columns = list(all_columns)
            else:
                wanted = needed.get(binding.lower())
                if wanted is None:
                    columns = list(all_columns)
                else:
                    columns = [c for c in all_columns if c.lower() in wanted]
                    if not columns:
                        # At least ship something joinable.
                        columns = all_columns[:1]
            predicate = None
            if binding.lower() in pushed:
                conjuncts = [
                    _strip_binding(c, binding) for c in pushed[binding.lower()]
                ]
                # Pushed predicates may reference columns not in the
                # residual's needs; they are evaluated at the site, so the
                # shipped column list does not have to include them.
                predicate = ast.conjoin(conjuncts)
            fetch = Fetch(
                index=len(plan.fetches),
                site=site,
                export=export,
                binding=binding,
                temp_name=f"__f{next(self._counter)}_{export}",
                columns=columns,
                predicate=predicate,
                protected=binding.lower() in protected,
            )
            plan.fetches.append(fetch)
            fetch_of_binding[binding.lower()] = fetch.index
            replacements[id(node)] = ast.TableName(fetch.temp_name, binding)

        # Record join edges for the semijoin pass (resolving columns
        # through derived tables down to the producing fetches).
        self._collect_join_edges(
            select, residual_where, plan, fetch_of_binding, derived_info
        )

        def rewrite_ref(ref: ast.TableRef) -> ast.TableRef:
            if isinstance(ref, ast.TableName):
                return replacements.get(id(ref), ref)
            if isinstance(ref, ast.SubqueryRef):
                return rewritten_subqueries[id(ref)]
            if isinstance(ref, ast.Join):
                return ast.Join(
                    rewrite_ref(ref.left),
                    rewrite_ref(ref.right),
                    ref.join_type,
                    ref.condition,
                    list(ref.using),
                )
            return ref

        select.from_clause = [rewrite_ref(r) for r in select.from_clause]
        select.where = residual_where

        # Provenance of this block's own outputs.
        info = self._block_col_info(
            select, fetch_of_binding, derived_info, binding_columns
        )
        return select, info

    def _localize_expr(
        self, expr: ast.Expression, plan: GlobalPlan, pushdown: bool
    ) -> ast.Expression:
        def replace(node: ast.Expression) -> ast.Expression:
            if isinstance(node, ast.InSubquery):
                return ast.InSubquery(
                    node.operand,
                    self._localize_query(node.query, plan, pushdown)[0],
                    node.negated,
                )
            if isinstance(node, ast.Exists):
                return ast.Exists(
                    self._localize_query(node.query, plan, pushdown)[0],
                    node.negated,
                )
            if isinstance(node, ast.ScalarSubquery):
                return ast.ScalarSubquery(
                    self._localize_query(node.query, plan, pushdown)[0]
                )
            return node

        return ast.transform_expression(expr, replace)

    # ------------------------------------------------------------------
    # Whole-block shipping
    # ------------------------------------------------------------------

    def _try_whole_block(
        self, select: ast.Select, plan: GlobalPlan
    ) -> tuple[ast.Select, "_ColInfo"] | None:
        """Ship an entire block to its site when it reduces cardinality.

        Requirements: single export-relation FROM, every column resolves to
        that export, only builtin functions, no subqueries/parameters, and
        the block actually reduces data (GROUP BY / aggregates / DISTINCT /
        LIMIT) — otherwise the ordinary column-level pushdown is as good and
        keeps semijoin opportunities alive.
        """
        reduces = bool(select.group_by) or select.distinct or (
            select.limit is not None
        ) or any(
            ast.contains_aggregate(item.expression) for item in select.items
        )
        if not reduces:
            return None
        if len(select.from_clause) != 1:
            return None
        ref = select.from_clause[0]
        if not isinstance(ref, ast.TableName) or "." not in ref.name:
            return None
        try:
            site, export = self._split_export(ref.name)
        except FederationError:
            return None
        binding = ref.alias or export
        export_columns = {
            c.lower()
            for c in self.gateways[site].export_relation_schema(
                export
            ).column_names
        }

        output_names: list[str] = []
        seen_names: set[str] = set()
        for index, item in enumerate(select.items):
            if isinstance(item.expression, ast.Star):
                return None
            name = item.output_name
            if name == "?column?" or name.lower() in seen_names:
                name = f"col{index}"
            seen_names.add(name.lower())
            output_names.append(name)

        if not _block_shippable(select, binding, export_columns):
            return None

        local_block = _strip_block_qualifiers(select, binding, output_names)
        local_block.from_clause = [ast.TableName(export)]

        fetch = Fetch(
            index=len(plan.fetches),
            site=site,
            export=export,
            binding=binding,
            temp_name=f"__f{next(self._counter)}_{export}",
            columns=list(output_names),
            whole_query=local_block,
        )
        plan.fetches.append(fetch)
        replacement = ast.Select(
            items=[
                ast.SelectItem(ast.ColumnRef(name), name)
                for name in output_names
            ],
            from_clause=[ast.TableName(fetch.temp_name, binding)],
        )
        # Outputs are post-aggregation: no verbatim provenance for semijoins.
        return replacement, _ColInfo(output_names, [[] for _ in output_names])

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------

    def _split_export(self, dotted: str) -> tuple[str, str]:
        site, _, export = dotted.partition(".")
        if site not in self.gateways:
            raise FederationError(f"unknown site {site!r} in {dotted!r}")
        if not self.gateways[site].exports.has(export):
            raise FederationError(
                f"site {site!r} exports no relation {export!r}"
            )
        return site, export

    def _needed_columns(
        self, select: ast.Select, binding_columns: dict[str, list[str]]
    ) -> dict[str, set[str]] | None:
        """binding → needed column names; None means 'cannot prune'."""
        needed: dict[str, set[str]] = {
            binding: set() for binding in binding_columns
        }
        blocked = False

        def note_ref(node: ast.Expression) -> None:
            nonlocal blocked
            if isinstance(node, ast.Star):
                if node.table is None:
                    blocked = True
                else:
                    key = node.table.lower()
                    if key in needed:
                        needed[key].update(
                            c.lower() for c in binding_columns[key]
                        )
                return
            if isinstance(node, ast.ColumnRef):
                if node.table is not None:
                    key = node.table.lower()
                    if key in needed:
                        needed[key].add(node.name.lower())
                else:
                    owners = [
                        binding
                        for binding, columns in binding_columns.items()
                        if node.name.lower() in (c.lower() for c in columns)
                    ]
                    if len(owners) == 1:
                        needed[owners[0]].add(node.name.lower())
                    elif owners:
                        for owner in owners:
                            needed[owner].add(node.name.lower())
                    # else: outer/correlated reference; nothing local needed

        def walk_expr(expr: ast.Expression) -> None:
            for node in ast.walk_expressions(expr):
                note_ref(node)
                if isinstance(node, (ast.InSubquery, ast.ScalarSubquery)):
                    walk_query(node.query)
                elif isinstance(node, ast.Exists):
                    walk_query(node.query)

        def walk_query(query: ast.Query) -> None:
            if isinstance(query, ast.SetOperation):
                walk_query(query.left)
                walk_query(query.right)
                return
            for item in query.items:
                walk_expr(item.expression)
            if query.where is not None:
                walk_expr(query.where)
            for group in query.group_by:
                walk_expr(group)
            if query.having is not None:
                walk_expr(query.having)
            for order in query.order_by:
                walk_expr(order.expression)
            for ref in query.from_clause:
                walk_ref(ref)

        def walk_ref(ref: ast.TableRef) -> None:
            if isinstance(ref, ast.SubqueryRef):
                walk_query(ref.query)
            elif isinstance(ref, ast.Join):
                walk_ref(ref.left)
                walk_ref(ref.right)
                if ref.condition is not None:
                    walk_expr(ref.condition)

        walk_query(select)
        if blocked:
            return None
        return needed

    def _collect_join_edges(
        self,
        select: ast.Select,
        residual_where: ast.Expression | None,
        plan: GlobalPlan,
        fetch_of_binding: dict[str, int],
        derived_info: dict[str, "_ColInfo"],
    ) -> None:
        """Record equi-join edges between export fetches of this block.

        Column references are resolved through derived tables (views, union
        branches) down to the fetches that produce them verbatim, so a join
        between two integrated relations still yields semijoin candidates.
        """
        conjuncts: list[ast.Expression] = list(
            ast.split_conjuncts(residual_where)
        )

        def collect_on(ref: ast.TableRef) -> None:
            if isinstance(ref, ast.Join):
                collect_on(ref.left)
                collect_on(ref.right)
                if ref.condition is not None and ref.join_type in (
                    ast.JoinType.INNER,
                ):
                    conjuncts.extend(ast.split_conjuncts(ref.condition))

        for ref in select.from_clause:
            collect_on(ref)

        def resolve(column: ast.ColumnRef) -> list[tuple[int, str]]:
            if column.table is None:
                return []
            key = column.table.lower()
            if key in fetch_of_binding:
                return [(fetch_of_binding[key], column.name)]
            info = derived_info.get(key)
            if info is not None:
                return info.resolve(column.name)
            return []

        for conjunct in conjuncts:
            if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
                continue
            left, right = conjunct.left, conjunct.right
            if not (
                isinstance(left, ast.ColumnRef)
                and isinstance(right, ast.ColumnRef)
            ):
                continue
            for left_fetch, left_column in resolve(left):
                for right_fetch, right_column in resolve(right):
                    if left_fetch == right_fetch:
                        continue
                    plan.join_edges.append(
                        JoinEdge(
                            left_fetch, left_column, right_fetch, right_column
                        )
                    )

    def _block_col_info(
        self,
        select: ast.Select,
        fetch_of_binding: dict[str, int],
        derived_info: dict[str, "_ColInfo"],
        binding_columns: dict[str, list[str]],
    ) -> "_ColInfo":
        """Provenance of this block's output columns.

        Only verbatim column chains count: an output produced by an
        expression (integration function, arithmetic, COALESCE over an
        outer join) is deliberately unresolvable — semijoin reduction on a
        transformed value would be unsound.
        """
        names: list[str] = []
        resolutions: list[list[tuple[int, str]]] = []
        for item in select.items:
            if isinstance(item.expression, ast.Star):
                return _ColInfo([], [])
            names.append(item.output_name)
            expr = item.expression
            resolved: list[tuple[int, str]] = []
            if isinstance(expr, ast.ColumnRef):
                key: str | None = None
                if expr.table is not None:
                    key = expr.table.lower()
                else:
                    owners = [
                        binding
                        for binding, columns in binding_columns.items()
                        if expr.name.lower() in (c.lower() for c in columns)
                    ]
                    if len(owners) == 1:
                        key = owners[0]
                if key is not None:
                    if key in fetch_of_binding:
                        resolved = [(fetch_of_binding[key], expr.name)]
                    elif key in derived_info:
                        resolved = derived_info[key].resolve(expr.name)
            resolutions.append(resolved)
        return _ColInfo(names, resolutions)


# ---------------------------------------------------------------------------
# Column provenance
# ---------------------------------------------------------------------------


class _ColInfo:
    """Traces a query's output columns to the fetches producing them."""

    def __init__(
        self, names: list[str], resolutions: list[list[tuple[int, str]]]
    ):
        self.names = names
        self.resolutions = resolutions

    def resolve(self, column: str) -> list[tuple[int, str]]:
        for name, resolution in zip(self.names, self.resolutions):
            if name.lower() == column.lower():
                return resolution
        return []

    @staticmethod
    def combine(left: "_ColInfo", right: "_ColInfo") -> "_ColInfo":
        """Positional union for set operations (names from the left side)."""
        if not left.names or not right.names:
            return _ColInfo([], [])
        if len(left.names) != len(right.names):
            return _ColInfo([], [])
        resolutions = [
            left_res + right_res
            for left_res, right_res in zip(left.resolutions, right.resolutions)
        ]
        return _ColInfo(list(left.names), resolutions)


# ---------------------------------------------------------------------------
# Module helpers
# ---------------------------------------------------------------------------


def _query_output_names(query: ast.Query) -> list[str]:
    while isinstance(query, ast.SetOperation):
        query = query.left
    names = []
    for item in query.items:
        if isinstance(item.expression, ast.Star):
            return []  # unknown statically; pruning will be conservative
        names.append(item.output_name)
    return names


def _block_shippable(
    select: ast.Select, binding: str, export_columns: set[str]
) -> bool:
    """Can every expression of this block run at the export's site?"""
    from repro.engine.expressions import BUILTIN_FUNCTIONS

    def expr_ok(expr: ast.Expression) -> bool:
        for node in ast.walk_expressions(expr):
            if isinstance(
                node,
                (ast.InSubquery, ast.Exists, ast.ScalarSubquery, ast.Parameter),
            ):
                return False
            if isinstance(node, ast.FunctionCall):
                name = node.name.upper()
                if not node.is_aggregate and name not in BUILTIN_FUNCTIONS:
                    return False
            if isinstance(node, ast.Star):
                continue  # COUNT(*) — fine
            if isinstance(node, ast.ColumnRef):
                if node.table is not None:
                    if node.table.lower() != binding.lower():
                        return False
                if node.name.lower() not in export_columns:
                    if node.table is None and node.name.upper() in (
                        "ROWNUM", "SYSDATE", "CURRENT_DATE",
                    ):
                        return False  # dialect-sensitive; keep at federation
                    return False
        return True

    for item in select.items:
        if not expr_ok(item.expression):
            return False
    if select.where is not None and not expr_ok(select.where):
        return False
    for group in select.group_by:
        if not expr_ok(group):
            return False
    if select.having is not None and not expr_ok(select.having):
        return False
    for order in select.order_by:
        if isinstance(order.expression, ast.Literal):
            continue  # positional
        if not expr_ok(order.expression):
            return False
    return True


def _strip_block_qualifiers(
    select: ast.Select, binding: str, output_names: list[str]
) -> ast.Select:
    """Copy the block with binding qualifiers removed and names finalised."""

    def strip(expr: ast.Expression) -> ast.Expression:
        def replace(node: ast.Expression) -> ast.Expression:
            if isinstance(node, ast.ColumnRef) and node.table is not None:
                if node.table.lower() == binding.lower():
                    return ast.ColumnRef(node.name)
            return node

        return ast.transform_expression(expr, replace)

    return ast.Select(
        items=[
            ast.SelectItem(strip(item.expression), name)
            for item, name in zip(select.items, output_names)
        ],
        from_clause=list(select.from_clause),
        where=strip(select.where) if select.where is not None else None,
        group_by=[strip(g) for g in select.group_by],
        having=strip(select.having) if select.having is not None else None,
        order_by=[
            ast.OrderItem(
                order.expression
                if isinstance(order.expression, ast.Literal)
                else strip(order.expression),
                order.ascending,
            )
            for order in select.order_by
        ],
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )


def _protected_bindings(from_clause: list[ast.TableRef]) -> set[str]:
    """Bindings on the null-supplied side of some outer join in this block."""
    protected: set[str] = set()

    def all_bindings(ref: ast.TableRef) -> set[str]:
        if isinstance(ref, ast.TableName):
            return {ref.binding.lower()}
        if isinstance(ref, ast.SubqueryRef):
            return {ref.alias.lower()}
        if isinstance(ref, ast.Join):
            return all_bindings(ref.left) | all_bindings(ref.right)
        return set()

    def scan(ref: ast.TableRef) -> None:
        if isinstance(ref, ast.Join):
            if ref.join_type is ast.JoinType.LEFT:
                protected.update(all_bindings(ref.right))
            elif ref.join_type is ast.JoinType.RIGHT:
                protected.update(all_bindings(ref.left))
            elif ref.join_type is ast.JoinType.FULL:
                protected.update(all_bindings(ref.left))
                protected.update(all_bindings(ref.right))
            scan(ref.left)
            scan(ref.right)

    for ref in from_clause:
        scan(ref)
    return protected


def _single_binding_of(
    conjunct: ast.Expression, binding_columns: dict[str, list[str]]
) -> str | None:
    """The unique local binding a conjunct references, or None."""
    owner: str | None = None
    for node in ast.walk_expressions(conjunct):
        if isinstance(
            node,
            (ast.InSubquery, ast.Exists, ast.ScalarSubquery, ast.Parameter),
        ):
            return None
        if isinstance(node, ast.FunctionCall):
            if node.is_aggregate:
                return None
            # Only ship functions every component DBMS understands;
            # user-defined integration functions execute at the federation.
            from repro.engine.expressions import BUILTIN_FUNCTIONS

            if node.name.upper() not in BUILTIN_FUNCTIONS:
                return None
        if isinstance(node, ast.Star):
            return None
        if isinstance(node, ast.ColumnRef):
            if node.table is not None:
                key = node.table.lower()
                if key not in binding_columns:
                    return None  # outer binding
            else:
                owners = [
                    binding
                    for binding, columns in binding_columns.items()
                    if node.name.lower() in (c.lower() for c in columns)
                ]
                if len(owners) != 1:
                    return None
                key = owners[0]
            if owner is None:
                owner = key
            elif owner != key:
                return None
    return owner


def _strip_binding(expr: ast.Expression, binding: str) -> ast.Expression:
    """Unqualify column refs so the conjunct runs against the bare export."""

    def replace(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.ColumnRef) and node.table is not None:
            if node.table.lower() == binding.lower():
                return ast.ColumnRef(node.name)
        return node

    return ast.transform_expression(expr, replace)
