"""Distributed cost model for the global (full-fledged) optimizer.

Costs are virtual seconds on the simulated network plus virtual local
processing, mirroring exactly what :class:`repro.net.MessageTrace` measures
at execution time — so estimated and measured costs are directly comparable
in the benchmarks.

Selectivity estimation uses the per-export statistics served by gateways
(System-R defaults when statistics cannot answer).  When the federation
runs with adaptive feedback on, a :class:`~repro.query.feedback.
RuntimeStatsStore` supplies *learned* cardinalities from earlier
executions of the same fetch shape; the model blends them with its static
estimates, weighted by how many observations back them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.gateway import LOCAL_ROW_COST_S, Gateway
from repro.net import Network
from repro.sql import ast
from repro.storage.stats import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_LIKE_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    TableStats,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.query.feedback import RuntimeStatsStore


@dataclass
class FragmentEstimate:
    """Estimated result of shipping one export fragment."""

    rows: float
    row_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.rows * self.row_bytes


class CostModel:
    """Estimates fragment sizes and transfer costs for plan choices."""

    def __init__(
        self,
        gateways: dict[str, Gateway],
        network: Network,
        runtime_stats: "RuntimeStatsStore | None" = None,
    ):
        self.gateways = gateways
        self.network = network
        #: Optional learned-cardinality store (adaptive feedback); ``None``
        #: keeps the model purely static — bit-identical to the seed.
        self.runtime_stats = runtime_stats

    # ------------------------------------------------------------------
    # Statistics access
    # ------------------------------------------------------------------

    def export_stats(self, site: str, export: str) -> TableStats:
        return self.gateways[site].export_stats(export)

    # ------------------------------------------------------------------
    # Selectivity
    # ------------------------------------------------------------------

    def predicate_selectivity(
        self, stats: TableStats, predicate: ast.Expression | None
    ) -> float:
        """Combined selectivity of a (conjunctive) predicate."""
        if predicate is None:
            return 1.0
        selectivity = 1.0
        for conjunct in ast.split_conjuncts(predicate):
            selectivity *= self._conjunct_selectivity(stats, conjunct)
        return max(min(selectivity, 1.0), 1e-6)

    def _conjunct_selectivity(
        self, stats: TableStats, conjunct: ast.Expression
    ) -> float:
        if isinstance(conjunct, ast.BinaryOp):
            if conjunct.op == "OR":
                left = self._conjunct_selectivity(stats, conjunct.left)
                right = self._conjunct_selectivity(stats, conjunct.right)
                return min(1.0, left + right - left * right)
            column, op, value = _comparison_parts(conjunct)
            if column is not None:
                column_stats = stats.column(column)
                if op == "=":
                    if column_stats is not None:
                        return column_stats.eq_selectivity(stats.row_count)
                    return DEFAULT_EQ_SELECTIVITY
                if op == "<>":
                    if column_stats is not None:
                        return 1.0 - column_stats.eq_selectivity(stats.row_count)
                    return 1.0 - DEFAULT_EQ_SELECTIVITY
                if op in ("<", "<=", ">", ">="):
                    if column_stats is not None:
                        return column_stats.range_selectivity(
                            op, value, stats.row_count
                        )
                    return DEFAULT_RANGE_SELECTIVITY
            if conjunct.op in ("LIKE",):
                return DEFAULT_LIKE_SELECTIVITY
            if conjunct.op in ("NOT LIKE",):
                return 1.0 - DEFAULT_LIKE_SELECTIVITY
        if isinstance(conjunct, ast.Between):
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(conjunct, ast.InList):
            return self._in_list_selectivity(stats, conjunct)
        if isinstance(conjunct, ast.IsNull):
            return 0.1 if not conjunct.negated else 0.9
        return 0.5  # unknown predicate shapes

    def _in_list_selectivity(
        self, stats: TableStats, conjunct: ast.InList
    ) -> float:
        """``col IN (v1, ..., vN)`` ≈ N distinct items × eq-selectivity.

        Mirrors ``=``: per-column statistics drive the per-item
        selectivity when they exist (an IN over a 1000-distinct key column
        is far more selective than the System-R default suggests), and
        duplicate literals — common in generated semijoin key lists —
        count once, not once per occurrence.
        """
        per_item = DEFAULT_EQ_SELECTIVITY
        if isinstance(conjunct.operand, ast.ColumnRef):
            column_stats = stats.column(conjunct.operand.name)
            if column_stats is not None:
                per_item = column_stats.eq_selectivity(stats.row_count)
        seen_literals: set[object] = set()
        items = 0
        for item in conjunct.items:
            if isinstance(item, ast.Literal):
                if item.value in seen_literals:
                    continue
                seen_literals.add(item.value)
            items += 1
        selectivity = min(1.0, per_item * max(items, 1))
        if conjunct.negated:
            return 1.0 - selectivity
        return selectivity

    # ------------------------------------------------------------------
    # Fragment estimation
    # ------------------------------------------------------------------

    def estimate_fragment(
        self,
        site: str,
        export: str,
        columns: list[str] | None,
        predicate: ast.Expression | None,
    ) -> FragmentEstimate:
        stats = self.export_stats(site, export)
        rows = stats.row_count * self.predicate_selectivity(stats, predicate)
        row_bytes = self._projected_row_bytes(stats, columns)
        estimate = FragmentEstimate(rows=rows, row_bytes=max(row_bytes, 1.0))
        return self._blend_learned(site, export, columns, predicate, estimate)

    @staticmethod
    def _projected_row_bytes(
        stats: TableStats, columns: list[str] | None
    ) -> float:
        """Bytes per shipped row for a projection of this export.

        Per-column widths from ``analyze_rows`` drive the estimate; a
        uniform split of ``avg_row_bytes`` is only the fallback for
        columns without statistics (projecting the narrow key out of a
        wide padded row must not be charged an even share of the pad).
        """
        if columns is None:
            return stats.avg_row_bytes
        total_columns = max(len(stats.columns), 1)
        even_share = stats.avg_row_bytes / total_columns
        row_bytes = 0.0
        for name in columns:
            column_stats = stats.column(name)
            if column_stats is not None and column_stats.avg_bytes > 0:
                row_bytes += column_stats.avg_bytes
            else:
                row_bytes += even_share
        return row_bytes

    def _blend_learned(
        self,
        site: str,
        export: str,
        columns: list[str] | None,
        predicate: ast.Expression | None,
        estimate: FragmentEstimate,
        semijoin_column: str | None = None,
        whole_query: ast.Select | None = None,
    ) -> FragmentEstimate:
        """Fold learned runtime cardinalities into a static estimate.

        The learned value dominates as observations accumulate
        (weight ``n / (n + 1)``), so one anomalous execution cannot wipe
        out the static model, while repeated runs converge estimates onto
        the measured truth.  An exact (projection-aware) entry refines
        both rows and row width; when only the rows-generalised entry
        exists (same predicate shape observed under another projection),
        just the row count is refined.
        """
        if self.runtime_stats is None:
            return estimate
        from repro.query.feedback import fragment_shape, rows_shape

        entry = self.runtime_stats.lookup(
            site,
            export,
            fragment_shape(columns, predicate, semijoin_column, whole_query),
        )
        blend_bytes = entry is not None
        if entry is None:
            entry = self.runtime_stats.lookup(
                site,
                export,
                rows_shape(predicate, semijoin_column, whole_query),
            )
        if entry is None:
            return estimate
        weight = entry.confidence()
        rows = weight * entry.rows + (1 - weight) * estimate.rows
        row_bytes = estimate.row_bytes
        if blend_bytes and entry.row_bytes > 0:
            row_bytes = (
                weight * entry.row_bytes + (1 - weight) * estimate.row_bytes
            )
        return FragmentEstimate(rows=rows, row_bytes=max(row_bytes, 1.0))

    # ------------------------------------------------------------------
    # Cost of shipping / processing
    # ------------------------------------------------------------------

    def transfer_cost(self, site: str, payload_bytes: float) -> float:
        """Virtual seconds to ship ``payload_bytes`` site → federation."""
        from repro.gateway.gateway import FEDERATION_SITE

        link = self.network.link(site, FEDERATION_SITE)
        return link.latency_s + payload_bytes / link.bandwidth_bytes_per_s

    def fetch_cost(
        self,
        site: str,
        export: str,
        columns: list[str] | None,
        predicate: ast.Expression | None,
        extra_request_bytes: float = 0.0,
        estimate: FragmentEstimate | None = None,
    ) -> float:
        """Estimated virtual cost of one fragment fetch (request + work + reply).

        ``estimate`` short-circuits the fragment-size estimation when the
        caller already holds one (e.g. a learned-cardinality estimate for
        a semijoin-reduced fetch) — the request/work/reply arithmetic is
        shared either way.
        """
        stats = self.export_stats(site, export)
        if estimate is None:
            estimate = self.estimate_fragment(site, export, columns, predicate)
        request = self.transfer_cost(site, 100.0 + extra_request_bytes)
        local_work = stats.row_count * LOCAL_ROW_COST_S
        reply = self.transfer_cost(site, estimate.total_bytes)
        return request + local_work + reply

    # ------------------------------------------------------------------
    # Semijoin benefit analysis
    # ------------------------------------------------------------------

    def semijoin_benefit(
        self,
        source_site: str,
        source_export: str,
        source_predicate: ast.Expression | None,
        source_column: str,
        target_site: str,
        target_export: str,
        target_predicate: ast.Expression | None,
        target_columns: list[str] | None,
        target_column: str,
        shipped_keys_override: float | None = None,
        source_available: bool = False,
    ) -> float:
        """Net virtual-seconds saved by semijoin-reducing the target fetch.

        Positive ⇒ ship the source's join keys to the target site and fetch
        only matching target rows.  Uses the textbook containment assumption
        for join-key reduction.

        ``shipped_keys_override`` replaces the estimated surviving-key
        count with an exact one — mid-query re-planning passes the distinct
        keys counted in an already-fetched source fragment.
        ``source_available`` marks the source as already at the federation
        site, dropping the serialisation (ordering) penalty.
        """
        source_stats = self.export_stats(source_site, source_export)
        target_stats = self.export_stats(target_site, target_export)

        source_selectivity = self.predicate_selectivity(
            source_stats, source_predicate
        )
        if self.runtime_stats is not None and shipped_keys_override is None:
            # Learned source cardinality refines the surviving-key count:
            # a misestimated source predicate is exactly what makes a
            # semijoin decision wrong, and it is what feedback fixes first.
            learned_rows = self.estimate_fragment(
                source_site, source_export, [source_column], source_predicate
            ).rows
            source_selectivity = min(
                1.0, learned_rows / max(source_stats.row_count, 1)
            )
        source_column_stats = source_stats.column(source_column)
        source_distinct = (
            source_column_stats.distinct if source_column_stats else 0
        ) or max(source_stats.row_count, 1)
        # Keys surviving the source predicate (distinct-preserving scaling).
        shipped_keys = max(1.0, source_distinct * source_selectivity)
        if shipped_keys_override is not None:
            shipped_keys = max(1.0, float(shipped_keys_override))

        target_column_stats = target_stats.column(target_column)
        target_distinct = (
            target_column_stats.distinct if target_column_stats else 0
        ) or max(target_stats.row_count, 1)
        reduction = min(1.0, shipped_keys / max(target_distinct, 1))

        target_estimate = self.estimate_fragment(
            target_site, target_export, target_columns, target_predicate
        )
        saved_bytes = target_estimate.total_bytes * (1.0 - reduction)
        saved = self.transfer_cost(target_site, saved_bytes) - self.transfer_cost(
            target_site, 0.0
        )

        # Cost: the IN-list rides on the request message (keys as literals).
        key_bytes = shipped_keys * 12.0
        extra_request = (
            self.transfer_cost(target_site, key_bytes)
            - self.transfer_cost(target_site, 0.0)
        )
        # Plus the serialisation: the target fetch must wait for the source
        # (unless the source fragment already sits at the federation site).
        if source_available:
            serialisation_penalty = 0.0
        else:
            serialisation_penalty = self.transfer_cost(
                source_site, 0.0
            )  # latency-only ordering penalty
        return saved - extra_request - serialisation_penalty


def annotate_fetch_estimates(plan, cost_model: CostModel, only=None) -> None:
    """Stamp each fetch of a plan with the model's rows/bytes/time estimates.

    Both optimizers call this at plan time so that
    ``GlobalResult.explain_analyze()`` can show estimate-vs-actual per fetch
    regardless of the strategy that produced the plan.  ``only`` restricts
    the annotation to the given fetch indices (mid-query re-planning
    re-annotates just the fetches it changed).

    Semijoin-reduced and whole-block fetches carry their own learned
    shapes: with adaptive feedback on, a reduced fetch's estimate reflects
    the measured reduced cardinality, not the base predicate's.
    """
    for fetch in plan.fetches:
        if only is not None and fetch.index not in only:
            continue
        estimate = cost_model.estimate_fragment(
            fetch.site, fetch.export, fetch.columns, fetch.predicate
        )
        if cost_model.runtime_stats is not None and (
            fetch.semijoin is not None or fetch.whole_query is not None
        ):
            estimate = cost_model._blend_learned(
                fetch.site,
                fetch.export,
                fetch.columns,
                fetch.predicate,
                estimate,
                semijoin_column=(
                    fetch.semijoin.target_column
                    if fetch.semijoin is not None
                    else None
                ),
                whole_query=fetch.whole_query,
            )
        fetch.est_rows = estimate.rows
        fetch.est_bytes = estimate.total_bytes
        fetch.est_cost_s = cost_model.fetch_cost(
            fetch.site,
            fetch.export,
            fetch.columns,
            fetch.predicate,
            estimate=estimate,
        )


def _comparison_parts(
    expr: ast.BinaryOp,
) -> tuple[str | None, str, object]:
    """Extract (column, op, literal) from a comparison, side-insensitive."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
    if expr.op not in flipped:
        return None, expr.op, None
    if isinstance(expr.left, ast.ColumnRef) and isinstance(
        expr.right, ast.Literal
    ):
        return expr.left.name, expr.op, expr.right.value
    if isinstance(expr.right, ast.ColumnRef) and isinstance(
        expr.left, ast.Literal
    ):
        return expr.right.name, flipped[expr.op], expr.left.value
    return None, expr.op, None
