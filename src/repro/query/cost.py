"""Distributed cost model for the global (full-fledged) optimizer.

Costs are virtual seconds on the simulated network plus virtual local
processing, mirroring exactly what :class:`repro.net.MessageTrace` measures
at execution time — so estimated and measured costs are directly comparable
in the benchmarks.

Selectivity estimation uses the per-export statistics served by gateways
(System-R defaults when statistics cannot answer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gateway import LOCAL_ROW_COST_S, Gateway
from repro.net import Network
from repro.sql import ast
from repro.storage.stats import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_LIKE_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    TableStats,
)


@dataclass
class FragmentEstimate:
    """Estimated result of shipping one export fragment."""

    rows: float
    row_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.rows * self.row_bytes


class CostModel:
    """Estimates fragment sizes and transfer costs for plan choices."""

    def __init__(self, gateways: dict[str, Gateway], network: Network):
        self.gateways = gateways
        self.network = network

    # ------------------------------------------------------------------
    # Statistics access
    # ------------------------------------------------------------------

    def export_stats(self, site: str, export: str) -> TableStats:
        return self.gateways[site].export_stats(export)

    # ------------------------------------------------------------------
    # Selectivity
    # ------------------------------------------------------------------

    def predicate_selectivity(
        self, stats: TableStats, predicate: ast.Expression | None
    ) -> float:
        """Combined selectivity of a (conjunctive) predicate."""
        if predicate is None:
            return 1.0
        selectivity = 1.0
        for conjunct in ast.split_conjuncts(predicate):
            selectivity *= self._conjunct_selectivity(stats, conjunct)
        return max(min(selectivity, 1.0), 1e-6)

    def _conjunct_selectivity(
        self, stats: TableStats, conjunct: ast.Expression
    ) -> float:
        if isinstance(conjunct, ast.BinaryOp):
            if conjunct.op == "OR":
                left = self._conjunct_selectivity(stats, conjunct.left)
                right = self._conjunct_selectivity(stats, conjunct.right)
                return min(1.0, left + right - left * right)
            column, op, value = _comparison_parts(conjunct)
            if column is not None:
                column_stats = stats.column(column)
                if op == "=":
                    if column_stats is not None:
                        return column_stats.eq_selectivity(stats.row_count)
                    return DEFAULT_EQ_SELECTIVITY
                if op == "<>":
                    if column_stats is not None:
                        return 1.0 - column_stats.eq_selectivity(stats.row_count)
                    return 1.0 - DEFAULT_EQ_SELECTIVITY
                if op in ("<", "<=", ">", ">="):
                    if column_stats is not None:
                        return column_stats.range_selectivity(
                            op, value, stats.row_count
                        )
                    return DEFAULT_RANGE_SELECTIVITY
            if conjunct.op in ("LIKE",):
                return DEFAULT_LIKE_SELECTIVITY
            if conjunct.op in ("NOT LIKE",):
                return 1.0 - DEFAULT_LIKE_SELECTIVITY
        if isinstance(conjunct, ast.Between):
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(conjunct, ast.InList):
            return min(
                1.0, DEFAULT_EQ_SELECTIVITY * max(len(conjunct.items), 1)
            )
        if isinstance(conjunct, ast.IsNull):
            return 0.1 if not conjunct.negated else 0.9
        return 0.5  # unknown predicate shapes

    # ------------------------------------------------------------------
    # Fragment estimation
    # ------------------------------------------------------------------

    def estimate_fragment(
        self,
        site: str,
        export: str,
        columns: list[str] | None,
        predicate: ast.Expression | None,
    ) -> FragmentEstimate:
        stats = self.export_stats(site, export)
        rows = stats.row_count * self.predicate_selectivity(stats, predicate)
        if columns is None:
            row_bytes = stats.avg_row_bytes
        else:
            # Approximate per-column width split evenly unless we can do
            # better from per-column stats.
            total_columns = max(len(stats.columns), 1)
            row_bytes = stats.avg_row_bytes * len(columns) / total_columns
        return FragmentEstimate(rows=rows, row_bytes=max(row_bytes, 1.0))

    # ------------------------------------------------------------------
    # Cost of shipping / processing
    # ------------------------------------------------------------------

    def transfer_cost(self, site: str, payload_bytes: float) -> float:
        """Virtual seconds to ship ``payload_bytes`` site → federation."""
        from repro.gateway.gateway import FEDERATION_SITE

        link = self.network.link(site, FEDERATION_SITE)
        return link.latency_s + payload_bytes / link.bandwidth_bytes_per_s

    def fetch_cost(
        self,
        site: str,
        export: str,
        columns: list[str] | None,
        predicate: ast.Expression | None,
        extra_request_bytes: float = 0.0,
    ) -> float:
        """Estimated virtual cost of one fragment fetch (request + work + reply)."""
        stats = self.export_stats(site, export)
        estimate = self.estimate_fragment(site, export, columns, predicate)
        request = self.transfer_cost(site, 100.0 + extra_request_bytes)
        local_work = stats.row_count * LOCAL_ROW_COST_S
        reply = self.transfer_cost(site, estimate.total_bytes)
        return request + local_work + reply

    # ------------------------------------------------------------------
    # Semijoin benefit analysis
    # ------------------------------------------------------------------

    def semijoin_benefit(
        self,
        source_site: str,
        source_export: str,
        source_predicate: ast.Expression | None,
        source_column: str,
        target_site: str,
        target_export: str,
        target_predicate: ast.Expression | None,
        target_columns: list[str] | None,
        target_column: str,
    ) -> float:
        """Net virtual-seconds saved by semijoin-reducing the target fetch.

        Positive ⇒ ship the source's join keys to the target site and fetch
        only matching target rows.  Uses the textbook containment assumption
        for join-key reduction.
        """
        source_stats = self.export_stats(source_site, source_export)
        target_stats = self.export_stats(target_site, target_export)

        source_selectivity = self.predicate_selectivity(
            source_stats, source_predicate
        )
        source_column_stats = source_stats.column(source_column)
        source_distinct = (
            source_column_stats.distinct if source_column_stats else 0
        ) or max(source_stats.row_count, 1)
        # Keys surviving the source predicate (distinct-preserving scaling).
        shipped_keys = max(1.0, source_distinct * source_selectivity)

        target_column_stats = target_stats.column(target_column)
        target_distinct = (
            target_column_stats.distinct if target_column_stats else 0
        ) or max(target_stats.row_count, 1)
        reduction = min(1.0, shipped_keys / max(target_distinct, 1))

        target_estimate = self.estimate_fragment(
            target_site, target_export, target_columns, target_predicate
        )
        saved_bytes = target_estimate.total_bytes * (1.0 - reduction)
        saved = self.transfer_cost(target_site, saved_bytes) - self.transfer_cost(
            target_site, 0.0
        )

        # Cost: the IN-list rides on the request message (keys as literals).
        key_bytes = shipped_keys * 12.0
        extra_request = (
            self.transfer_cost(target_site, key_bytes)
            - self.transfer_cost(target_site, 0.0)
        )
        # Plus the serialisation: the target fetch must wait for the source.
        source_estimate = self.estimate_fragment(
            source_site, source_export, [source_column], source_predicate
        )
        serialisation_penalty = self.transfer_cost(
            source_site, source_estimate.total_bytes * 0.0
        )  # latency-only ordering penalty
        return saved - extra_request - serialisation_penalty


def annotate_fetch_estimates(plan, cost_model: CostModel) -> None:
    """Stamp each fetch of a plan with the model's rows/bytes/time estimates.

    Both optimizers call this at plan time so that
    ``GlobalResult.explain_analyze()`` can show estimate-vs-actual per fetch
    regardless of the strategy that produced the plan.
    """
    for fetch in plan.fetches:
        estimate = cost_model.estimate_fragment(
            fetch.site, fetch.export, fetch.columns, fetch.predicate
        )
        fetch.est_rows = estimate.rows
        fetch.est_bytes = estimate.total_bytes
        fetch.est_cost_s = cost_model.fetch_cost(
            fetch.site, fetch.export, fetch.columns, fetch.predicate
        )


def _comparison_parts(
    expr: ast.BinaryOp,
) -> tuple[str | None, str, object]:
    """Extract (column, op, literal) from a comparison, side-insensitive."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
    if expr.op not in flipped:
        return None, expr.op, None
    if isinstance(expr.left, ast.ColumnRef) and isinstance(
        expr.right, ast.Literal
    ):
        return expr.left.name, expr.op, expr.right.value
    if isinstance(expr.right, ast.ColumnRef) and isinstance(
        expr.left, ast.Literal
    ):
        return expr.right.name, flipped[expr.op], expr.left.value
    return None, expr.op, None
