"""Global query optimizers: the paper's simple strategy and the cost-based one."""

from repro.query.optimizer.costbased import CostBasedOptimizer
from repro.query.optimizer.simple import SimpleOptimizer

__all__ = ["CostBasedOptimizer", "SimpleOptimizer"]
