"""The full-fledged (cost-based) global optimizer.

On top of the pushdown the :class:`~repro.query.localizer.Localizer` already
performs, this optimizer:

1. estimates every fragment's shipped size from gateway statistics,
2. considers **semijoin reductions** along each inter-site equi-join edge
   (ship the smaller side's join keys with the bigger side's fragment query,
   fetching only matching rows) and applies those with positive net benefit,
3. annotates the plan with its estimated virtual cost, so benchmarks can
   compare estimate vs. measurement.

Semijoin selection is greedy by descending benefit with the constraints that
each fetch is reduced at most once and dependencies stay acyclic.
"""

from __future__ import annotations

from repro.gateway import Gateway
from repro.net import Network
from repro.query.cost import CostModel
from repro.query.localizer import Fetch, GlobalPlan, Localizer, SemiJoinSpec
from repro.query.rewrite import prune_projections, push_selections
from repro.sql import ast


class CostBasedOptimizer:
    """Pushdown + semijoin selection driven by the cost model."""

    name = "cost"

    def __init__(
        self,
        gateways: dict[str, Gateway],
        network: Network,
        enable_semijoin: bool = True,
        enable_aggregate_pushdown: bool = True,
        runtime_stats=None,
    ):
        self.gateways = gateways
        self.localizer = Localizer(gateways)
        self.cost_model = CostModel(
            gateways, network, runtime_stats=runtime_stats
        )
        self.enable_semijoin = enable_semijoin
        self.enable_aggregate_pushdown = enable_aggregate_pushdown

    def plan(self, expanded: ast.Query) -> GlobalPlan:
        expanded = push_selections(expanded)
        expanded = prune_projections(expanded)
        if self.enable_aggregate_pushdown:
            from repro.query.aggpush import push_aggregates

            expanded = push_aggregates(expanded)
        plan = self.localizer.localize(expanded, pushdown=True)
        plan.strategy = self.name
        if self.enable_semijoin:
            self._apply_semijoins(plan)
        plan.estimated_cost_s = self._estimate_plan_cost(plan)
        from repro.query.cost import annotate_fetch_estimates

        annotate_fetch_estimates(plan, self.cost_model)
        return plan

    # ------------------------------------------------------------------
    # Semijoin selection
    # ------------------------------------------------------------------

    def _apply_semijoins(self, plan: GlobalPlan) -> None:
        candidates: list[tuple[float, int, int, str, str]] = []
        for edge in plan.join_edges:
            left = plan.fetches[edge.left_fetch]
            right = plan.fetches[edge.right_fetch]
            if left.site == right.site:
                continue  # same gateway; nothing to save
            for source, target, source_column, target_column in (
                (left, right, edge.left_column, edge.right_column),
                (right, left, edge.right_column, edge.left_column),
            ):
                if target.protected:
                    continue  # outer-join padding side: reduction unsound
                benefit = self.cost_model.semijoin_benefit(
                    source.site,
                    source.export,
                    source.predicate,
                    source_column,
                    target.site,
                    target.export,
                    target.predicate,
                    target.columns,
                    target_column,
                )
                if benefit > 0:
                    candidates.append(
                        (
                            benefit,
                            source.index,
                            target.index,
                            source_column,
                            target_column,
                        )
                    )

        candidates.sort(reverse=True)
        reduced: set[int] = set()
        for benefit, source_index, target_index, source_col, target_col in (
            candidates
        ):
            if target_index in reduced:
                continue
            if self._would_cycle(plan, source_index, target_index):
                continue
            target = plan.fetches[target_index]
            source = plan.fetches[source_index]
            # The source fetch must actually ship the join-key column.
            if source_col.lower() not in (c.lower() for c in source.columns):
                source.columns.append(source_col)
            target.semijoin = SemiJoinSpec(source_index, source_col, target_col)
            reduced.add(target_index)
            plan.notes.append(
                f"semijoin: reduce fetch #{target_index} by keys of "
                f"#{source_index}.{source_col} "
                f"(est. benefit {benefit * 1000:.2f}ms)"
            )

    # ------------------------------------------------------------------
    # Mid-query re-planning (adaptive execution)
    # ------------------------------------------------------------------

    def replan(
        self,
        plan: GlobalPlan,
        executed: dict[int, tuple[float, float]],
        key_count,
        stage: int = 0,
    ) -> list[str]:
        """Re-optimize the not-yet-executed fetches of a running plan.

        ``executed`` maps completed fetch indices to their measured
        ``(rows, bytes)``; ``key_count(index, column)`` returns the exact
        distinct non-null key count inside a completed fragment (the
        executor counts it from the materialised rows).  Completed fetches
        are pinned — only the semijoin choices of remaining fetches are
        revisited, with *actual* key counts replacing the estimates that
        turned out wrong:

        - a planned reduction whose measured benefit went negative (the
          source produced far more keys than estimated) is dropped,
        - a skipped reduction whose source has now materialised small is
          added (its keys are already at the federation site, so the
          serialisation penalty the planner charged no longer applies).

        Mutates ``plan`` in place and returns one note per change (empty
        list ⇒ the remaining plan stands).  Appended notes render in
        EXPLAIN / EXPLAIN ANALYZE, and changed fetches are flagged
        ``replanned``.
        """
        notes: list[str] = []
        changed: set[int] = set()
        for fetch in plan.fetches:
            if fetch.index in executed or fetch.whole_query is not None:
                continue
            if (
                fetch.semijoin is not None
                and fetch.semijoin.source_index in executed
            ):
                spec = fetch.semijoin
                source = plan.fetches[spec.source_index]
                keys = key_count(spec.source_index, spec.source_column)
                if keys is None:
                    # Degraded source: its (empty) key set already reduces
                    # the shipped query to nothing — leave the plan alone.
                    continue
                benefit = self.cost_model.semijoin_benefit(
                    source.site,
                    source.export,
                    source.predicate,
                    spec.source_column,
                    fetch.site,
                    fetch.export,
                    fetch.predicate,
                    fetch.columns,
                    spec.target_column,
                    shipped_keys_override=keys,
                    source_available=True,
                )
                if benefit <= 0:
                    fetch.semijoin = None
                    fetch.replanned = True
                    changed.add(fetch.index)
                    notes.append(
                        f"replan@stage{stage}: drop semijoin on fetch "
                        f"#{fetch.index} (source #{spec.source_index} "
                        f"produced {keys} keys; revised benefit "
                        f"{benefit * 1000:.2f}ms)"
                    )
            if (
                self.enable_semijoin
                and fetch.semijoin is None
                and not fetch.protected
            ):
                addition = self._best_late_semijoin(
                    plan, fetch, executed, key_count
                )
                if addition is not None:
                    benefit, spec, keys = addition
                    fetch.semijoin = spec
                    fetch.replanned = True
                    changed.add(fetch.index)
                    notes.append(
                        f"replan@stage{stage}: add semijoin on fetch "
                        f"#{fetch.index} from materialised "
                        f"#{spec.source_index}.{spec.source_column} "
                        f"({keys} keys, est. benefit {benefit * 1000:.2f}ms)"
                    )
        if changed:
            from repro.query.cost import annotate_fetch_estimates

            annotate_fetch_estimates(plan, self.cost_model, only=changed)
            plan.notes.extend(notes)
        return notes

    def _best_late_semijoin(
        self,
        plan: GlobalPlan,
        fetch: Fetch,
        executed: dict[int, tuple[float, float]],
        key_count,
    ) -> tuple[float, SemiJoinSpec, int] | None:
        """Best positive-benefit reduction of ``fetch`` by an executed one.

        Only *already-executed* sources are considered: their key sets are
        known exactly, they add no new dependencies (so no cycles), and
        their keys are already at the federation site.
        """
        best: tuple[float, SemiJoinSpec, int] | None = None
        for edge in plan.join_edges:
            pairs = (
                (edge.left_fetch, edge.left_column,
                 edge.right_fetch, edge.right_column),
                (edge.right_fetch, edge.right_column,
                 edge.left_fetch, edge.left_column),
            )
            for source_index, source_col, target_index, target_col in pairs:
                if target_index != fetch.index:
                    continue
                if source_index not in executed:
                    continue
                source = plan.fetches[source_index]
                if source.site == fetch.site:
                    continue  # same gateway; nothing to save
                # The key column must actually have been shipped.
                if source_col.lower() not in (
                    c.lower() for c in source.columns
                ):
                    continue
                keys = key_count(source_index, source_col)
                if keys is None:
                    continue
                benefit = self.cost_model.semijoin_benefit(
                    source.site,
                    source.export,
                    source.predicate,
                    source_col,
                    fetch.site,
                    fetch.export,
                    fetch.predicate,
                    fetch.columns,
                    target_col,
                    shipped_keys_override=keys,
                    source_available=True,
                )
                if benefit <= 0:
                    continue
                if best is None or benefit > best[0]:
                    best = (
                        benefit,
                        SemiJoinSpec(source_index, source_col, target_col),
                        keys,
                    )
        return best

    def _would_cycle(
        self, plan: GlobalPlan, source_index: int, target_index: int
    ) -> bool:
        """Adding target←source: does source (transitively) depend on target?"""
        current = source_index
        seen = set()
        while True:
            if current == target_index:
                return True
            if current in seen:
                return True  # defensive: existing cycle
            seen.add(current)
            semijoin = plan.fetches[current].semijoin
            if semijoin is None:
                return False
            current = semijoin.source_index

    # ------------------------------------------------------------------
    # Plan cost estimate
    # ------------------------------------------------------------------

    def _estimate_plan_cost(self, plan: GlobalPlan) -> float:
        """Virtual elapsed seconds: parallel fetch stages + federation work."""

        def chain_cost(fetch: Fetch) -> float:
            cost = self.cost_model.fetch_cost(
                fetch.site, fetch.export, fetch.columns, fetch.predicate
            )
            if fetch.semijoin is not None:
                cost += chain_cost(plan.fetches[fetch.semijoin.source_index])
            return cost

        elapsed = max((chain_cost(f) for f in plan.fetches), default=0.0)
        total_rows = sum(
            self.cost_model.estimate_fragment(
                f.site, f.export, f.columns, f.predicate
            ).rows
            for f in plan.fetches
        )
        from repro.gateway import LOCAL_ROW_COST_S

        return elapsed + total_rows * LOCAL_ROW_COST_S
