"""The paper's "simple query optimization strategy".

MYRIAD's first implementation evaluated global queries naively: ship every
referenced export relation to the federation site in full and evaluate the
whole query there.  No selection/projection pushdown, no semijoins — the
baseline that motivates the full-fledged optimizer.
"""

from __future__ import annotations

from repro.gateway import Gateway
from repro.query.localizer import GlobalPlan, Localizer
from repro.sql import ast


class SimpleOptimizer:
    """Ship-everything localization."""

    name = "simple"

    def __init__(self, gateways: dict[str, Gateway]):
        self.gateways = gateways
        self.localizer = Localizer(gateways)

    def plan(self, expanded: ast.Query) -> GlobalPlan:
        plan = self.localizer.localize(expanded, pushdown=False)
        plan.strategy = self.name
        plan.notes.append(
            "ship-all: every export relation fetched in full, "
            "all processing at the federation site"
        )
        # The simple strategy chooses nothing, but EXPLAIN ANALYZE still
        # wants estimate-vs-actual per fetch; borrow the cost model of any
        # gateway's network (every gateway shares the federation's).
        network = next(
            (gw.network for gw in self.gateways.values()), None
        )
        if network is not None:
            from repro.query.cost import CostModel, annotate_fetch_estimates

            annotate_fetch_estimates(plan, CostModel(self.gateways, network))
        return plan
