"""Global query processing: localization, optimization, execution."""

from repro.query.cost import CostModel, FragmentEstimate
from repro.query.executor import GlobalExecutor, GlobalResult
from repro.query.localizer import (
    Fetch,
    GlobalPlan,
    JoinEdge,
    Localizer,
    SemiJoinSpec,
)
from repro.query.optimizer import CostBasedOptimizer, SimpleOptimizer
from repro.query.processor import GlobalQueryProcessor

__all__ = [
    "CostModel",
    "FragmentEstimate",
    "GlobalExecutor",
    "GlobalResult",
    "Fetch",
    "GlobalPlan",
    "JoinEdge",
    "Localizer",
    "SemiJoinSpec",
    "CostBasedOptimizer",
    "SimpleOptimizer",
    "GlobalQueryProcessor",
]
