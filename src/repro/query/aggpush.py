"""Aggregate pushdown: partial aggregation at component sites.

The most valuable rewrite a "full-fledged" distributed optimizer adds on
top of selection/projection pushdown: for an aggregate query over a
union-merged integrated relation, compute *partial* aggregates inside each
union branch (which localization can then ship whole to the branch's site)
and *combine* them at the federation:

    SELECT g, COUNT(*), SUM(x), AVG(x) FROM <union-all view> GROUP BY g

becomes

    SELECT g, SUM(p_cnt), SUM(p_sum),
           CASE WHEN SUM(p_avg_cnt) = 0 THEN NULL
                ELSE SUM(p_avg_sum) / SUM(p_avg_cnt) END
    FROM (
        SELECT g, COUNT(*) AS p_cnt, SUM(x) AS p_sum,
               SUM(x) AS p_avg_sum, COUNT(x) AS p_avg_cnt
        FROM <branch 1 body> GROUP BY g
        UNION ALL
        ... per branch ...
    ) AS <binding> GROUP BY g

Decompositions: COUNT → SUM of partial COUNTs, SUM → SUM, MIN → MIN,
MAX → MAX, AVG → SUM/COUNT pair.  DISTINCT aggregates are not decomposable
and disable the rewrite.

When a branch body is itself a simple projection of one export relation,
the partial aggregation is *flattened* into the branch (single block over
the export), making it eligible for whole-block shipping in the localizer —
that is where the traffic reduction comes from.
"""

from __future__ import annotations

import itertools

from repro.sql import ast

def push_aggregates(
    query: ast.Query, _tags: "itertools.count | None" = None
) -> ast.Query:
    """Apply the rewrite wherever the pattern matches (recursively).

    Generated partial-column tags restart at 1 per top-level call (they
    only need uniqueness within one query): planning the same query always
    produces the same SQL text, which keeps shipped-fragment digests and
    message byte counts independent of planning history.
    """
    if _tags is None:
        _tags = itertools.count(1)
    if isinstance(query, ast.SetOperation):
        query.left = push_aggregates(query.left, _tags)
        query.right = push_aggregates(query.right, _tags)
        return query
    select = query
    # Recurse into derived tables first.
    for ref in select.from_clause:
        _recurse_ref(ref, _tags)
    rewritten = _try_rewrite(select, _tags)
    if rewritten is not None:
        return rewritten
    topn = _try_push_topn(select)
    return topn if topn is not None else select


def _try_push_topn(select: ast.Select) -> ast.Select | None:
    """Top-N pushdown: ORDER BY + LIMIT over a UNION ALL view.

    ``SELECT ... FROM v ORDER BY k LIMIT n`` with ``v`` a UNION ALL of
    simple blocks: each branch only needs to return its own top n+offset
    rows — the global top-N is a subset of the per-branch top-Ns.  The
    outer ORDER BY/LIMIT still runs at the federation to merge.
    """
    if select.limit is None or not select.order_by:
        return None
    if select.where is not None or select.distinct or select.group_by:
        return None
    if select.having is not None:
        return None
    if len(select.from_clause) != 1:
        return None
    ref = select.from_clause[0]
    if not isinstance(ref, ast.SubqueryRef):
        return None
    if any(
        ast.contains_aggregate(item.expression) for item in select.items
    ):
        return None
    branches = _union_all_branches(ref.query)
    if branches is None or len(branches) < 2:
        return None
    view_columns = {c.lower() for c in _output_names(branches[0])}
    if not view_columns:
        return None

    # Order keys must be plain view-column references (mapped per branch).
    keys: list[tuple[str, bool]] = []
    for order in select.order_by:
        expr = order.expression
        if not isinstance(expr, ast.ColumnRef):
            return None
        if expr.name.lower() not in view_columns:
            return None
        keys.append((expr.name, order.ascending))

    per_branch_limit = select.limit + (select.offset or 0)
    for branch in branches:
        mapping = {
            item.output_name.lower(): item.expression
            for item in branch.items
        }
        branch_keys = []
        for name, ascending in keys:
            target = mapping.get(name.lower())
            if target is None:
                return None
            branch_keys.append(ast.OrderItem(target, ascending))
        branch.order_by = branch_keys
        branch.limit = per_branch_limit
    return select


def _recurse_ref(ref: ast.TableRef, tags: "itertools.count") -> None:
    if isinstance(ref, ast.SubqueryRef):
        ref.query = push_aggregates(ref.query, tags)
    elif isinstance(ref, ast.Join):
        _recurse_ref(ref.left, tags)
        _recurse_ref(ref.right, tags)


# ---------------------------------------------------------------------------
# Pattern matching
# ---------------------------------------------------------------------------


def _try_rewrite(
    select: ast.Select, tags: "itertools.count"
) -> ast.Select | None:
    # Shape: aggregate block over exactly one derived table, no residual
    # WHERE (push_selections runs first), no DISTINCT.
    if select.where is not None or select.distinct:
        return None
    if len(select.from_clause) != 1:
        return None
    ref = select.from_clause[0]
    if not isinstance(ref, ast.SubqueryRef):
        return None
    branches = _union_all_branches(ref.query)
    if branches is None or len(branches) < 1:
        return None
    view_columns = _output_names(branches[0])
    if not view_columns:
        return None

    # Group keys must be plain references to view columns.
    group_columns: list[str] = []
    for group in select.group_by:
        if not isinstance(group, ast.ColumnRef):
            return None
        if group.name.lower() not in (c.lower() for c in view_columns):
            return None
        group_columns.append(group.name)

    # Collect aggregate calls from items / having / order by.
    aggregates: list[ast.FunctionCall] = []

    def collect(expr: ast.Expression) -> bool:
        """Returns False if an un-pushable construct is found."""
        for node in ast.walk_expressions(expr):
            if isinstance(
                node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)
            ):
                return False
            if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                if node.distinct:
                    return False
                if node.name.upper() not in (
                    "COUNT", "SUM", "AVG", "MIN", "MAX"
                ):
                    return False
                if node not in aggregates:
                    aggregates.append(node)
        return True

    for item in select.items:
        if isinstance(item.expression, ast.Star):
            return None
        if not collect(item.expression):
            return None
    if select.having is not None and not collect(select.having):
        return None
    for order in select.order_by:
        if not collect(order.expression):
            return None
    if not aggregates:
        return None  # not an aggregate block

    # Non-aggregate column references must all be group keys.
    group_lower = {g.lower() for g in group_columns}
    for expr in _non_aggregate_parts(select):
        for node in ast.walk_expressions(expr):
            if isinstance(node, ast.ColumnRef):
                if node.name.lower() not in group_lower and (
                    node.table is None
                    or node.table.lower() == ref.alias.lower()
                ):
                    # references a non-grouped view column outside an
                    # aggregate: invalid SQL anyway; bail out
                    if node.name.lower() in (
                        c.lower() for c in view_columns
                    ):
                        return None
    return _build_rewrite(
        select, ref, branches, group_columns, aggregates, tags
    )


def _non_aggregate_parts(select: ast.Select):
    """Expression fragments outside aggregate calls (approximation: whole
    expressions; aggregate args are inspected by the group-key check too,
    which is fine because args may reference any view column)."""

    def strip_aggs(expr: ast.Expression) -> ast.Expression:
        def replace(node: ast.Expression) -> ast.Expression:
            if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                return ast.Literal(None)
            return node

        return ast.transform_expression(expr, replace)

    for item in select.items:
        yield strip_aggs(item.expression)
    if select.having is not None:
        yield strip_aggs(select.having)
    for order in select.order_by:
        yield strip_aggs(order.expression)


def _union_all_branches(query: ast.Query) -> list[ast.Select] | None:
    """Flatten a UNION ALL tree into branch blocks; None if not pure."""
    if isinstance(query, ast.Select):
        if query.group_by or query.having is not None or query.distinct:
            return None
        if query.limit is not None or query.offset is not None:
            return None
        if any(
            ast.contains_aggregate(item.expression) for item in query.items
        ):
            return None
        return [query]
    if isinstance(query, ast.SetOperation):
        if query.kind is not ast.SetOpKind.UNION_ALL:
            return None
        if query.order_by or query.limit is not None:
            return None
        left = _union_all_branches(query.left)
        right = _union_all_branches(query.right)
        if left is None or right is None:
            return None
        return left + right
    return None


def _output_names(select: ast.Select) -> list[str]:
    names = []
    for item in select.items:
        if isinstance(item.expression, ast.Star):
            return []
        names.append(item.output_name)
    return names


# ---------------------------------------------------------------------------
# Rewrite construction
# ---------------------------------------------------------------------------


def _build_rewrite(
    select: ast.Select,
    ref: ast.SubqueryRef,
    branches: list[ast.Select],
    group_columns: list[str],
    aggregates: list[ast.FunctionCall],
    tags: "itertools.count",
) -> ast.Select:
    tag = next(tags)
    group_out = [f"__gp{tag}_{i}" for i in range(len(group_columns))]

    # Per-aggregate partial columns + combined expression templates.
    partial_specs: list[tuple[str, ast.FunctionCall]] = []  # (name, partial)
    combined: dict[int, ast.Expression] = {}
    for position, call in enumerate(aggregates):
        name = call.name.upper()
        if name == "AVG":
            sum_name = f"__pa{tag}_{position}s"
            count_name = f"__pa{tag}_{position}c"
            partial_specs.append(
                (sum_name, ast.FunctionCall("SUM", list(call.args)))
            )
            partial_specs.append(
                (count_name, ast.FunctionCall("COUNT", list(call.args)))
            )
            # Cast keeps the combined AVG a float, matching native AVG
            # (integer SUM/COUNT pairs would otherwise divide exactly).
            total = ast.Cast(
                ast.FunctionCall("SUM", [ast.ColumnRef(sum_name)]), "FLOAT"
            )
            count = ast.FunctionCall("SUM", [ast.ColumnRef(count_name)])
            combined[position] = ast.Case(
                None,
                [
                    (
                        ast.BinaryOp(
                            "=",
                            ast.FunctionCall(
                                "COALESCE", [count, ast.Literal(0)]
                            ),
                            ast.Literal(0),
                        ),
                        ast.Literal(None),
                    )
                ],
                ast.BinaryOp("/", total, count),
            )
        else:
            partial_name = f"__pa{tag}_{position}"
            partial_specs.append((partial_name, call))
            outer_fn = "SUM" if name in ("COUNT", "SUM") else name
            combined[position] = ast.FunctionCall(
                outer_fn, [ast.ColumnRef(partial_name)]
            )

    # Build each branch's partial-aggregation block.
    new_branches: list[ast.Select] = []
    for branch in branches:
        new_branches.append(
            _partial_branch(branch, group_columns, group_out, partial_specs)
        )
    view: ast.Query = new_branches[0]
    for branch in new_branches[1:]:
        view = ast.SetOperation(ast.SetOpKind.UNION_ALL, view, branch)

    # Outer block: combine partials; rewrite original expressions.
    def rewrite(expr: ast.Expression) -> ast.Expression:
        def replace(node: ast.Expression) -> ast.Expression:
            if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                return combined[aggregates.index(node)]
            if isinstance(node, ast.ColumnRef):
                for position, column in enumerate(group_columns):
                    if node.name.lower() == column.lower() and (
                        node.table is None
                        or node.table.lower() == ref.alias.lower()
                    ):
                        return ast.ColumnRef(group_out[position], ref.alias)
                return node
            return node

        return ast.transform_expression(expr, replace)

    items = [
        ast.SelectItem(rewrite(item.expression), item.alias or item.output_name)
        for item in select.items
    ]
    having = rewrite(select.having) if select.having is not None else None
    order_by = [
        ast.OrderItem(rewrite(order.expression), order.ascending)
        for order in select.order_by
    ]
    return ast.Select(
        items=items,
        from_clause=[ast.SubqueryRef(view, ref.alias)],
        group_by=[
            ast.ColumnRef(name, ref.alias) for name in group_out
        ],
        having=having,
        order_by=order_by,
        limit=select.limit,
        offset=select.offset,
    )


def _partial_branch(
    branch: ast.Select,
    group_columns: list[str],
    group_out: list[str],
    partial_specs: list[tuple[str, ast.FunctionCall]],
) -> ast.Select:
    """One branch's partial-aggregate block, flattened when possible.

    Branch items map view columns → branch expressions; the partial block
    groups by the mapped group expressions and computes the partial
    aggregates over mapped argument expressions, directly on the branch's
    FROM/WHERE (valid because the branch is a simple projection block).
    """
    mapping = {
        item.output_name.lower(): item.expression for item in branch.items
    }

    def mapped(expr: ast.Expression) -> ast.Expression:
        def replace(node: ast.Expression) -> ast.Expression:
            if isinstance(node, ast.ColumnRef):
                target = mapping.get(node.name.lower())
                if target is not None:
                    return target
            return node

        return ast.transform_expression(expr, replace)

    group_exprs = [
        mapped(ast.ColumnRef(column)) for column in group_columns
    ]
    items = [
        ast.SelectItem(expr, name)
        for expr, name in zip(group_exprs, group_out)
    ]
    for partial_name, call in partial_specs:
        if call.args and not isinstance(call.args[0], ast.Star):
            args: list[ast.Expression] = [mapped(call.args[0])]
        else:
            args = list(call.args)
        items.append(
            ast.SelectItem(
                ast.FunctionCall(call.name, args), partial_name
            )
        )
    return ast.Select(
        items=items,
        from_clause=list(branch.from_clause),
        where=branch.where,
        group_by=list(group_exprs),
    )
