"""Global query execution at the federation site.

Executes a :class:`~repro.query.localizer.GlobalPlan`:

1. ship fragment queries to gateways — independent fetches in parallel
   (accounted as parallel sections on the message trace), semijoin-dependent
   fetches after their key source,
2. materialise fragments as temporary tables in a per-query federation-site
   catalog,
3. evaluate the residual query there with the federation's integration
   functions registered,
4. return rows plus the full traffic/timing accounting.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.cache import FragmentCache
from repro.engine import LocalEngine, ResultSet
from repro.errors import (
    CircuitOpenError,
    ExecutionError,
    FederationError,
    MessageDropped,
)
from repro.gateway import LOCAL_ROW_COST_S, Gateway
from repro.net import MessageTrace, RetryJitter
from repro.obs import DISABLED, FetchActual, Observability, obs_of
from repro.query.localizer import Fetch, GlobalPlan
from repro.schema.federation import Federation
from repro.sql import ast, to_sql
from repro.storage import Catalog, Column, TableSchema
from repro.storage.types import FLOAT, INTEGER, DataType, TypeKind


def _canonical_type(datatype: DataType) -> DataType:
    """Fragment columns use federation-canonical types.

    Dialect-specific exact numerics (Oracle NUMBER → Decimal) become FLOAT
    at the federation site, matching the value normalisation gateways apply
    to shipped rows.
    """
    if datatype.kind is TypeKind.DECIMAL:
        # NUMBER(p) with no scale is an integer; anything else is FLOAT.
        if len(datatype.params) == 1 or (
            len(datatype.params) == 2 and datatype.params[1] == 0
        ):
            return INTEGER
        return FLOAT
    return datatype


@dataclass
class GlobalResult:
    """Result of one global query: rows + plan + accounting."""

    columns: list[str]
    rows: list[tuple]
    plan: GlobalPlan
    trace: MessageTrace
    fetched_rows: int = 0
    #: Per-fetch measurements (fetch index → actuals), for explain_analyze.
    fetch_actuals: dict[int, FetchActual] = field(default_factory=dict)
    #: True when ``allow_partial`` execution skipped one or more sites:
    #: the rows cover only the reachable part of the federation.
    degraded: bool = False
    #: Sites whose fragments are missing from a degraded result.
    missing_sites: list[str] = field(default_factory=list)
    #: Correlation id of the request that produced this result; stamped on
    #: every span, event, and network message of the execution.
    request_id: str | None = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def to_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> object:
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"expected 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[object]:
        try:
            position = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(f"no column {name!r} in result") from None
        return [row[position] for row in self.rows]

    @property
    def elapsed_s(self) -> float:
        return self.trace.elapsed_s

    @property
    def bytes_shipped(self) -> int:
        return self.trace.total_bytes

    def explain_analyze(self) -> str:
        """The executed plan annotated with per-fetch actuals vs. estimates."""
        from repro.obs.explain import render_explain_analyze

        return render_explain_analyze(self)


@dataclass
class _Stage:
    fetches: list[Fetch] = field(default_factory=list)


@dataclass
class _FetchOutcome:
    """What one fetch produced, collected off a worker or inline."""

    fetch: Fetch
    result: ResultSet | None = None
    actual: FetchActual | None = None
    degraded: bool = False
    error: BaseException | None = None


class GlobalExecutor:
    """Runs GlobalPlans for one federation.

    Independent fetches of one stage run concurrently on a bounded thread
    pool (one worker per *site*, so a single gateway never sees two fetches
    of the same query at once).  All simulated accounting is
    interleaving-independent — per-branch sums feeding a max — so parallel
    execution produces bit-identical simulated cost, bytes, and rows to
    sequential execution (``parallel_fetches=1``).
    """

    def __init__(
        self,
        federation: Federation,
        obs: Observability | None = None,
        parallel_fetches: int = 4,
        fragment_cache: FragmentCache | None = None,
        retry_jitter: bool = False,
        jitter_seed: int = 0,
        vectorized: bool = False,
        wire_compression: bool = False,
    ):
        self.federation = federation
        self._obs = obs
        #: Run the federation-site residual query on the columnar engine.
        self.vectorized = bool(vectorized)
        #: Gateways ship dict/RLE-encoded fragments; cached fragments keep
        #: the encoded payload and decode on hit.
        self.wire_compression = bool(wire_compression)
        #: Transient-loss resilience: each fetch retries dropped messages
        #: up to this many times, with exponential simulated backoff.
        self.fetch_retry_limit = 2
        self.fetch_retry_backoff_s = 0.01
        #: Seeded deterministic jitter on that backoff: each retry's wait
        #: is scaled by a uniform factor in [0.5, 1.5) so concurrent
        #: retries (post-failover storms) desynchronise.  Off by default —
        #: the RNG is never drawn, accounting stays bit-identical.
        self.retry_jitter = RetryJitter(jitter_seed) if retry_jitter else None
        #: Max fetch worker threads per stage; <= 1 disables threading.
        self.parallel_fetches = parallel_fetches
        #: Mid-query re-planning trigger: a completed fetch whose actual
        #: row count diverges from its estimate by at least this factor
        #: (either direction) re-optimizes the remaining stages — when a
        #: replanner was passed to :meth:`execute`.
        self.replan_threshold = 3.0
        #: Optional federation-site fragment cache (shared across queries;
        #: bypassed inside global transactions).
        self.fragment_cache = fragment_cache
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def close(self) -> None:
        """Shut down the fetch worker pool (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=max(2, self.parallel_fetches),
                    thread_name_prefix="myriad-fetch",
                )
            return self._pool

    @property
    def gateways(self) -> dict[str, Gateway]:
        return self.federation.gateways

    @property
    def obs(self) -> Observability:
        if self._obs is not None:
            return self._obs
        for gateway in self.federation.gateways.values():
            return obs_of(gateway.network)
        return DISABLED

    def execute(
        self,
        plan: GlobalPlan,
        trace: MessageTrace | None = None,
        timeout: float | None = None,
        global_id: object | None = None,
        allow_partial: bool = False,
        skip_sites: set[str] | None = None,
        replanner=None,
        request_id: str | None = None,
    ) -> GlobalResult:
        """Run one global plan.

        Dropped fetch messages are retried up to ``fetch_retry_limit``
        times with exponential simulated backoff.  With
        ``allow_partial=True``, a site whose circuit breaker refuses
        traffic — or that stays unreachable through every retry — is
        *skipped*: its fragment materialises empty, and the result comes
        back ``degraded`` with the site listed in ``missing_sites``.
        ``skip_sites`` pre-seeds that set (sites the caller already found
        dead, e.g. while opening transaction branches).

        ``replanner`` (an optimizer with a ``replan`` method) switches on
        **adaptive mid-query re-planning**: after each stage, if a
        completed fetch's actual rows diverged from its estimate beyond
        ``replan_threshold`` — or a remaining site's circuit breaker
        opened — the not-yet-executed fetches are re-optimized with the
        measured actuals pinned.  Stages are scheduled dynamically, so a
        revised dependency graph takes effect immediately.  Without a
        replanner the schedule is identical to the non-adaptive executor.
        """
        trace = trace or MessageTrace()
        obs = self.obs
        health = self._health()
        missing: set[str] = set(skip_sites or ())
        catalog = Catalog(f"federation:{self.federation.name}")
        engine = LocalEngine(
            catalog,
            functions=self.federation.functions.as_dict(),
            vectorized=self.vectorized,
        )
        use_cache = self.fragment_cache is not None and global_id is None

        fetch_results: dict[int, ResultSet] = {}
        fetch_actuals: dict[int, FetchActual] = {}
        fetched_rows = 0
        remaining = {fetch.index: fetch for fetch in plan.fetches}
        done: set[int] = set()
        stage_index = 0
        while remaining:
            stage = self._next_stage(remaining, done)
            with obs.span("execute.stage", stage=stage_index) as stage_span:
                groups = self._site_groups(stage)
                run_parallel = self.parallel_fetches > 1 and len(groups) > 1
                trace.begin_parallel()
                # end_parallel() must run even when a fetch raises
                # (MessageDropped, GatewayTimeout, ...): a caller-supplied
                # trace outlives this call, and an unbalanced parallel
                # section would swallow every later cost it records.
                try:
                    if run_parallel:
                        outcomes = self._run_stage_parallel(
                            groups,
                            fetch_results,
                            trace,
                            timeout,
                            global_id,
                            allow_partial,
                            missing,
                            health,
                            obs,
                            stage_span,
                            use_cache,
                            request_id,
                        )
                    else:
                        outcomes = [
                            self._run_one(
                                fetch,
                                fetch_results,
                                trace,
                                timeout,
                                global_id,
                                allow_partial,
                                missing,
                                health,
                                obs,
                                stage_span,
                                use_cache,
                                request_id=request_id,
                            )
                            for fetch in stage.fetches
                        ]
                    # Workers capture failures instead of raising (every
                    # branch must finish before the section closes); the
                    # earliest failed fetch in plan order wins, matching
                    # what sequential execution would have raised.
                    for outcome in outcomes:
                        if outcome.error is not None:
                            raise outcome.error
                finally:
                    trace.end_parallel()
                for outcome in outcomes:
                    fetch = outcome.fetch
                    fetch_results[fetch.index] = outcome.result
                    if outcome.degraded:
                        continue
                    if outcome.actual is not None:
                        fetch_actuals[fetch.index] = outcome.actual
                    fetched_rows += len(outcome.result.rows)
                stage_span.tag(fetches=len(stage.fetches))
            for fetch in stage.fetches:
                self._register_fragment(
                    catalog, fetch, fetch_results[fetch.index]
                )
                del remaining[fetch.index]
                done.add(fetch.index)
            if replanner is not None and remaining:
                self._maybe_replan(
                    plan,
                    stage,
                    stage_index,
                    replanner,
                    remaining,
                    done,
                    fetch_results,
                    fetch_actuals,
                    missing,
                    health,
                    obs,
                    trace,
                    request_id,
                )
            stage_index += 1

        with obs.span("execute.residual") as residual_span:
            result = engine.execute_query(plan.query)
            residual_sim = engine.last_report.rows_scanned * LOCAL_ROW_COST_S
            trace.add_compute(residual_sim)
            residual_span.set_sim(residual_sim)
            residual_span.tag(rows=len(result.rows))
        if missing:
            obs.metrics.inc("query.degraded")
            obs.emit(
                "query.degraded", sites=sorted(missing), request=request_id
            )
        return GlobalResult(
            columns=result.columns,
            rows=result.rows,
            plan=plan,
            trace=trace,
            fetched_rows=fetched_rows,
            fetch_actuals=fetch_actuals,
            degraded=bool(missing),
            missing_sites=sorted(missing),
            request_id=request_id,
        )

    def _health(self):
        for gateway in self.federation.gateways.values():
            return getattr(gateway.network, "health", None)
        return None

    def _degraded_fragment(self, fetch: Fetch, obs: Observability) -> ResultSet:
        """Empty stand-in for a fragment from a skipped (dead) site.

        Downstream semijoins see zero key values (their shipped query
        degenerates to ``1=0``), so the rest of the plan still runs.
        """
        obs.metrics.inc("query.degraded_fetches", site=fetch.site)
        return ResultSet(list(fetch.columns), [])

    def _fetch_with_retry(
        self,
        fetch: Fetch,
        shipped: ast.Select,
        trace: MessageTrace,
        timeout: float | None,
        global_id: object | None,
        request_id: str | None = None,
    ) -> ResultSet:
        """One fetch with bounded retry of transient message loss.

        Backoff is exponential in *simulated* time, charged both to the
        query's trace (the caller waits it out) and to the network clock
        (so breaker cooldowns advance).  Only
        :class:`~repro.errors.MessageDropped` is transient; a refused
        circuit fails immediately.
        """
        gateway = self.gateways[fetch.site]
        network = gateway.network
        last_error: MessageDropped | None = None
        for attempt in range(self.fetch_retry_limit + 1):
            if attempt:
                self.obs.metrics.inc("query.fetch_retries", site=fetch.site)
                backoff = self.fetch_retry_backoff_s * 2 ** (attempt - 1)
                if self.retry_jitter is not None:
                    backoff = self.retry_jitter.scale(backoff)
                trace.add_compute(backoff)
                network.advance(backoff)
            try:
                return gateway.execute_query(
                    shipped,
                    trace=trace,
                    timeout=timeout,
                    global_id=global_id,
                    request_id=request_id,
                )
            except MessageDropped as error:
                last_error = error
        raise last_error

    # ------------------------------------------------------------------
    # Fetch scheduling
    # ------------------------------------------------------------------

    def _stages(self, plan: GlobalPlan) -> list[_Stage]:
        """Topological stages: semijoin sources before their targets."""
        remaining = {fetch.index: fetch for fetch in plan.fetches}
        done: set[int] = set()
        stages: list[_Stage] = []
        while remaining:
            stage = _Stage()
            for index, fetch in list(remaining.items()):
                dependency = (
                    fetch.semijoin.source_index
                    if fetch.semijoin is not None
                    else None
                )
                if dependency is None or dependency in done:
                    stage.fetches.append(fetch)
            if not stage.fetches:
                raise FederationError(
                    "cyclic semijoin dependencies in global plan"
                )
            for fetch in stage.fetches:
                del remaining[fetch.index]
                done.add(fetch.index)
            stages.append(stage)
        return stages

    def _next_stage(
        self, remaining: dict[int, Fetch], done: set[int]
    ) -> _Stage:
        """The currently-ready fetches: no dependency, or source done.

        Equivalent to one iteration of :meth:`_stages`, but computed
        against the *live* plan so mid-query re-planning (which rewires
        semijoin dependencies of unexecuted fetches) takes effect on the
        very next stage.
        """
        stage = _Stage()
        for fetch in remaining.values():
            dependency = (
                fetch.semijoin.source_index
                if fetch.semijoin is not None
                else None
            )
            if dependency is None or dependency in done:
                stage.fetches.append(fetch)
        if not stage.fetches:
            raise FederationError(
                "cyclic semijoin dependencies in global plan"
            )
        return stage

    def _maybe_replan(
        self,
        plan: GlobalPlan,
        stage: _Stage,
        stage_index: int,
        replanner,
        remaining: dict[int, Fetch],
        done: set[int],
        fetch_results: dict[int, ResultSet],
        fetch_actuals: dict[int, FetchActual],
        missing: set[str],
        health,
        obs: Observability,
        trace: MessageTrace,
        request_id: str | None = None,
    ) -> None:
        """Re-optimize remaining stages if this stage's actuals diverged.

        Triggers when a just-completed fetch's measured row count is off
        from its estimate by ``replan_threshold``× in either direction, or
        when a remaining site's circuit breaker has opened (pure state
        check — probe admission stays with the fetch path).  Delegates the
        actual plan surgery to ``replanner.replan`` with completed fetches
        pinned and exact key counts read off the materialised fragments.
        """
        trigger: str | None = None
        for fetch in stage.fetches:
            actual = fetch_actuals.get(fetch.index)
            if actual is None or fetch.est_rows is None:
                continue
            ratio = max(
                (actual.rows + 1.0) / (fetch.est_rows + 1.0),
                (fetch.est_rows + 1.0) / (actual.rows + 1.0),
            )
            if ratio >= self.replan_threshold:
                trigger = (
                    f"divergence: fetch #{fetch.index} estimated "
                    f"{fetch.est_rows:.0f} rows, measured {actual.rows} "
                    f"({ratio:.1f}x)"
                )
                break
        if trigger is None and health is not None:
            for fetch in remaining.values():
                if fetch.site not in missing and health.is_blocked(fetch.site):
                    trigger = f"breaker open: site {fetch.site!r}"
                    break
        if trigger is None:
            return

        # Degraded fetches count as executed (they must stay pinned) but
        # carry (0, 0) and are refused as key sources via key_count=None.
        executed: dict[int, tuple[float, float]] = {}
        for index in done:
            actual = fetch_actuals.get(index)
            executed[index] = (
                (float(actual.rows), float(actual.bytes))
                if actual is not None
                else (0.0, 0.0)
            )

        def key_count(index: int, column: str) -> int | None:
            if fetch_actuals.get(index) is None:
                return None  # degraded fragment: not a usable key source
            result = fetch_results.get(index)
            if result is None:
                return None
            try:
                values = result.column(column)
            except ExecutionError:
                return None
            return len({value for value in values if value is not None})

        notes = replanner.replan(
            plan, executed, key_count, stage=stage_index
        )
        if notes:
            obs.metrics.inc("query.replans")
            obs.emit(
                "query.replan",
                stage=stage_index,
                trigger=trigger,
                changes=len(notes),
                sim_s=trace.elapsed_s,
                request=request_id,
            )

    def _site_groups(self, stage: _Stage) -> list[tuple[str, list[Fetch]]]:
        """Stage fetches grouped by site, preserving first-seen order.

        One worker per group: a gateway never runs two fetches of the same
        query concurrently, and within a site the sequential fetch order
        (hence accounting order) is preserved exactly.
        """
        groups: dict[str, list[Fetch]] = {}
        for fetch in stage.fetches:
            groups.setdefault(fetch.site, []).append(fetch)
        return list(groups.items())

    def _run_stage_parallel(
        self,
        groups: list[tuple[str, list[Fetch]]],
        fetch_results: dict[int, ResultSet],
        trace: MessageTrace,
        timeout: float | None,
        global_id: object | None,
        allow_partial: bool,
        missing: set[str],
        health,
        obs: Observability,
        stage_span,
        use_cache: bool,
        request_id: str | None = None,
    ) -> list[_FetchOutcome]:
        """Run one stage's site groups on the worker pool.

        Returns outcomes in the stage's original fetch order.  Every
        future is awaited (even after a failure) so no branch is still
        recording when the caller closes the parallel section.
        """
        pool = self._ensure_pool()

        def run_group(fetches: list[Fetch]) -> list[_FetchOutcome]:
            outcomes = []
            for fetch in fetches:
                outcome = self._run_one(
                    fetch,
                    fetch_results,
                    trace,
                    timeout,
                    global_id,
                    allow_partial,
                    missing,
                    health,
                    obs,
                    stage_span,
                    use_cache,
                    capture_errors=True,
                    request_id=request_id,
                )
                outcomes.append(outcome)
                if outcome.error is not None:
                    # Fatal for the whole query: stop burning messages on
                    # this site; remaining group fetches never run (same
                    # as sequential execution after a raise).
                    break
            return outcomes

        futures = [pool.submit(run_group, fetches) for _, fetches in groups]
        by_index: dict[int, _FetchOutcome] = {}
        for future in futures:
            for outcome in future.result():
                by_index[outcome.fetch.index] = outcome
        ordered = []
        for _, fetches in groups:
            for fetch in fetches:
                if fetch.index in by_index:
                    ordered.append(by_index[fetch.index])
        ordered.sort(key=lambda o: o.fetch.index)
        return ordered

    def _run_one(
        self,
        fetch: Fetch,
        fetch_results: dict[int, ResultSet],
        trace: MessageTrace,
        timeout: float | None,
        global_id: object | None,
        allow_partial: bool,
        missing: set[str],
        health,
        obs: Observability,
        stage_span,
        use_cache: bool,
        capture_errors: bool = False,
        request_id: str | None = None,
    ) -> _FetchOutcome:
        """One fetch end to end: degrade, cache lookup, ship, cache store.

        With ``capture_errors`` (worker mode) fatal exceptions come back
        in the outcome instead of raising, so sibling branches finish and
        the caller re-raises deterministically.
        """
        outcome = _FetchOutcome(fetch=fetch)
        try:
            if fetch.site in missing:
                outcome.degraded = True
                outcome.result = self._degraded_fragment(fetch, obs)
                return outcome
            # is_blocked (pure), not allow(): the half-open probe slot is
            # admitted by the gateway's own circuit check on the send path
            # — consuming it here would double-count one request as two
            # probes (and starve the single-flight probe).
            if (
                allow_partial
                and health is not None
                and health.is_blocked(fetch.site)
            ):
                missing.add(fetch.site)
                outcome.degraded = True
                outcome.result = self._degraded_fragment(fetch, obs)
                return outcome
            shipped = self._shipped_query(fetch, fetch_results)
            gateway = self.gateways[fetch.site]
            shipped_sql: str | None = None
            version_before: tuple | None = None
            # The codec family is part of the cache key: toggling the knob
            # on a live federation must never replay entries stored under
            # the other payload format.
            cache_codec = "dictrle" if self.wire_compression else ""
            if use_cache:
                shipped_sql = to_sql(shipped)
                version_before = gateway.data_version(fetch.export)
                hit = self.fragment_cache.lookup(
                    fetch.site,
                    fetch.export,
                    shipped_sql,
                    version_before,
                    codec=cache_codec,
                )
                if hit is not None:
                    obs.metrics.inc("fragcache.hit", site=fetch.site)
                    rows = hit.materialize()
                    outcome.result = ResultSet(list(hit.columns), rows)
                    outcome.actual = FetchActual(
                        rows=len(rows), cached=True
                    )
                    return outcome
                obs.metrics.inc("fragcache.miss", site=fetch.site)
            branch_name = f"{fetch.site}:{fetch.binding}"
            wall_start = time.perf_counter()
            with obs.span(
                "execute.fetch",
                parent=stage_span,
                site=fetch.site,
                export=fetch.export,
                binding=fetch.binding,
            ) as fetch_span:
                try:
                    with trace.branch(branch_name) as branch:
                        result = self._fetch_with_retry(
                            fetch, shipped, trace, timeout, global_id,
                            request_id=request_id,
                        )
                except (MessageDropped, CircuitOpenError):
                    if not allow_partial:
                        raise
                    missing.add(fetch.site)
                    outcome.degraded = True
                    outcome.result = self._degraded_fragment(fetch, obs)
                    return outcome
                encoded = getattr(result, "encoded", None)
                actual = FetchActual(
                    rows=len(result.rows),
                    bytes=branch.payload_bytes,
                    messages=len(branch.records),
                    sim_s=trace.branch_elapsed(branch_name),
                    wall_s=time.perf_counter() - wall_start,
                    raw_bytes=branch.raw_payload_bytes,
                    codec=encoded.codec if encoded is not None else None,
                )
                fetch_span.set_sim(actual.sim_s)
                fetch_span.tag(rows=actual.rows, bytes=actual.bytes)
            if use_cache:
                # Degraded fragments never reach this store (they return
                # above); a version moved by a concurrent commit between
                # capture and arrival is rejected inside store().
                stored = self.fragment_cache.store(
                    fetch.site,
                    fetch.export,
                    shipped_sql,
                    version_before,
                    gateway.data_version(fetch.export),
                    result.columns,
                    result.rows,
                    encoded=encoded,
                    codec=cache_codec,
                )
                if stored and encoded is not None:
                    obs.metrics.inc(
                        "fragcache.bytes_raw", encoded.raw_bytes
                    )
                    obs.metrics.inc(
                        "fragcache.bytes_wire", encoded.wire_bytes
                    )
                    obs.metrics.inc(
                        "fragcache.bytes_saved",
                        encoded.raw_bytes - encoded.wire_bytes,
                    )
            outcome.result = result
            outcome.actual = actual
            return outcome
        except BaseException as error:
            if not capture_errors:
                raise
            outcome.error = error
            return outcome

    def _shipped_query(
        self, fetch: Fetch, fetch_results: dict[int, ResultSet]
    ) -> ast.Select:
        """Build the SELECT shipped for this fetch (semijoin keys bound)."""
        in_list: list[object] | None = None
        if fetch.semijoin is not None:
            source = fetch_results[fetch.semijoin.source_index]
            key_values = source.column(fetch.semijoin.source_column)
            seen: set[object] = set()
            in_list = []
            for value in key_values:
                if value is None or value in seen:
                    continue
                seen.add(value)
                in_list.append(value)
        return fetch.shipped_query(in_list)

    def _register_fragment(
        self, catalog: Catalog, fetch: Fetch, result: ResultSet
    ) -> None:
        if fetch.whole_query is not None:
            # Shipped whole blocks (aggregates etc.): output types are only
            # known dynamically — register pass-through columns.
            from repro.storage.types import ANY

            schema = TableSchema(
                fetch.temp_name,
                [Column(name, ANY) for name in result.columns],
            )
            table = catalog.create_table(schema)
            for row in result.rows:
                table.insert(row)
            return
        gateway = self.gateways[fetch.site]
        export_schema = gateway.export_relation_schema(fetch.export)
        columns = [
            Column(
                name,
                _canonical_type(export_schema.column(name).datatype),
                nullable=True,
            )
            for name in fetch.columns
        ]
        # Keep the primary key when fully shipped: the federation planner
        # can then use index lookups on the fragment.
        shipped = {c.lower() for c in fetch.columns}
        primary_key = (
            list(export_schema.primary_key)
            if export_schema.primary_key
            and all(k.lower() in shipped for k in export_schema.primary_key)
            else []
        )
        if primary_key:
            # A shipped fragment can legally repeat key values (overlapping
            # export relations behind a union view, semijoin-reduced
            # fetches): fall back to a keyless temp table rather than
            # failing the materialisation — the fragment is intermediate
            # state, not the export itself.
            positions = [
                [c.name.lower() for c in columns].index(k.lower())
                for k in primary_key
            ]
            seen_keys: set[tuple] = set()
            for row in result.rows:
                key = tuple(row[p] for p in positions)
                if key in seen_keys or any(v is None for v in key):
                    primary_key = []
                    break
                seen_keys.add(key)
        schema = TableSchema(fetch.temp_name, columns, primary_key)
        table = catalog.create_table(schema)
        for row in result.rows:
            table.insert(row)
