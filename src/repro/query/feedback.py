"""Adaptive runtime statistics: EXPLAIN ANALYZE actuals fed back to the
cost model.

Every executed fetch already measures the rows and bytes that actually
crossed the wire (:class:`~repro.obs.explain.FetchActual`).  This module
closes the loop the ROADMAP names: a :class:`RuntimeStatsStore` keeps one
learned cardinality per **(site, export, predicate shape)** — the shape
abstracts literal values, so ``grp = 3`` and ``grp = 7`` share an entry
while ``grp = 3 AND name = 'x'`` gets its own — and the cost model blends
those learned values with its System-R estimates, weighted by how many
observations back them.

The store is **versioned**: ``version`` bumps whenever a learned estimate
shifts materially (first observation of a key, or drift beyond
``drift_threshold`` relative to the value at the last bump).  The global
plan cache folds this ``runtime_stats_version`` into its key next to the
schema and statistics versions, so plans compiled from superseded learned
cardinalities die by lookup miss — and once the estimates converge, the
version stops moving and cached plans are served again.

Everything here is opt-in (``MyriadSystem(adaptive_feedback=True)``): with
the knob off no store exists, nothing is recorded, and planning is
bit-identical to the non-adaptive system.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.sql import ast

#: Exponential moving average weight of the newest observation.
EWMA_ALPHA = 0.5

#: Relative shift of a learned estimate (vs. its value at the last version
#: bump) that re-bumps the store version, invalidating cached plans.
DRIFT_THRESHOLD = 0.2


# ---------------------------------------------------------------------------
# Predicate / fetch shapes
# ---------------------------------------------------------------------------


def predicate_shape(predicate: ast.Expression | None) -> str:
    """Canonical shape of a predicate with literal values abstracted.

    ``grp = 3`` and ``grp = 42`` share a shape; ``grp = 3 AND val < 1.0``
    does not.  Literals become ``?`` so learned cardinalities generalise
    across parameter values of the same query template (the repeated
    cross-site queries federated workloads are dominated by).
    """
    if predicate is None:
        return "-"
    from repro.sql.printer import SQLPrinter

    def anonymise(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.Literal):
            return ast.Parameter(0)
        return node

    shaped = ast.transform_expression(predicate, anonymise)
    return SQLPrinter().print_expression(shaped)


def query_shape(query: ast.Select) -> str:
    """Shape of a whole shipped block (aggregate pushdown fetches)."""
    from repro.sql.printer import SQLPrinter

    def anonymise(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.Literal):
            return ast.Parameter(0)
        return node

    shaped = ast.Select(
        items=[
            ast.SelectItem(
                ast.transform_expression(i.expression, anonymise), i.alias
            )
            for i in query.items
        ],
        from_clause=list(query.from_clause),
        where=ast.transform_expression(query.where, anonymise)
        if query.where is not None
        else None,
        group_by=[
            ast.transform_expression(g, anonymise) for g in query.group_by
        ],
        having=ast.transform_expression(query.having, anonymise)
        if query.having is not None
        else None,
        order_by=list(query.order_by),
        limit=query.limit,
        offset=query.offset,
        distinct=query.distinct,
    )
    return SQLPrinter().print_select(shaped)


def fragment_shape(
    columns: list[str] | None,
    predicate: ast.Expression | None,
    semijoin_column: str | None = None,
    whole_query: ast.Select | None = None,
) -> str:
    """Stable key for one fetch shape at one export.

    Semijoin-reduced fetches get their own entries (their cardinality
    reflects the reduction, not the base predicate), as do shipped whole
    blocks.  Columns matter only for learned byte widths, but folding them
    in keeps one entry per distinct shipped projection — observed average
    row bytes stay meaningful.
    """
    if whole_query is not None:
        return f"whole|{query_shape(whole_query)}"
    cols = "*" if columns is None else ",".join(sorted(c.lower() for c in columns))
    semi = semijoin_column.lower() if semijoin_column else "-"
    return f"{predicate_shape(predicate)}|cols={cols}|semi={semi}"


def rows_shape(
    predicate: ast.Expression | None,
    semijoin_column: str | None = None,
    whole_query: ast.Select | None = None,
) -> str:
    """Projection-independent shape: row counts do not depend on columns.

    Every observation is recorded under its exact :func:`fragment_shape`
    *and* this rows-generalised one, so a fetch shipping a different
    projection of the same predicate still reuses the learned cardinality
    (just not the learned row width).
    """
    if whole_query is not None:
        return f"rows|whole|{query_shape(whole_query)}"
    semi = semijoin_column.lower() if semijoin_column else "-"
    return f"rows|{predicate_shape(predicate)}|semi={semi}"


def fetch_shape(fetch) -> str:
    """Exact shape of a planned :class:`~repro.query.localizer.Fetch`."""
    return fragment_shape(
        fetch.columns,
        fetch.predicate,
        fetch.semijoin.target_column if fetch.semijoin is not None else None,
        fetch.whole_query,
    )


def fetch_rows_shape(fetch) -> str:
    """Rows-generalised shape of a planned fetch (see :func:`rows_shape`)."""
    return rows_shape(
        fetch.predicate,
        fetch.semijoin.target_column if fetch.semijoin is not None else None,
        fetch.whole_query,
    )


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


@dataclass
class RuntimeEntry:
    """Learned execution profile of one fetch shape at one export."""

    rows: float
    bytes: float
    samples: int = 1
    #: Learned values at the last version bump; drift is measured against
    #: these so a converged entry stops invalidating cached plans.
    anchor_rows: float = 0.0
    anchor_bytes: float = 0.0

    @property
    def row_bytes(self) -> float:
        return self.bytes / self.rows if self.rows > 0 else 0.0

    def confidence(self) -> float:
        """Blend weight of the learned value: more samples, more trust."""
        return self.samples / (self.samples + 1.0)


class RuntimeStatsStore:
    """Thread-safe, bounded map of learned per-fetch-shape cardinalities."""

    def __init__(
        self,
        capacity: int = 1024,
        drift_threshold: float = DRIFT_THRESHOLD,
        alpha: float = EWMA_ALPHA,
    ):
        self.capacity = capacity
        self.drift_threshold = drift_threshold
        self.alpha = alpha
        self._entries: OrderedDict[tuple, RuntimeEntry] = OrderedDict()
        self._mutex = threading.Lock()
        #: Bumped on any material shift of a learned estimate; part of the
        #: global plan-cache key (next to schema_version / stats_version).
        self.version = 0
        # Experiment counters
        self.observations = 0
        self.version_bumps = 0

    @staticmethod
    def _key(site: str, export: str, shape: str) -> tuple:
        return (site, export.lower(), shape)

    def observe(
        self, site: str, export: str, shape: str, rows: float, bytes_: float
    ) -> bool:
        """Fold one measured fetch into the learned profile.

        Returns True when the observation shifted the store's version
        (first sighting of this shape, or drift past the threshold).
        """
        key = self._key(site, export, shape)
        with self._mutex:
            self.observations += 1
            entry = self._entries.get(key)
            if entry is None:
                entry = RuntimeEntry(
                    rows=float(rows),
                    bytes=float(bytes_),
                    anchor_rows=float(rows),
                    anchor_bytes=float(bytes_),
                )
                self._entries[key] = entry
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                self.version += 1
                self.version_bumps += 1
                return True
            self._entries.move_to_end(key)
            entry.rows = self.alpha * rows + (1 - self.alpha) * entry.rows
            entry.bytes = self.alpha * bytes_ + (1 - self.alpha) * entry.bytes
            entry.samples += 1
            if self._drifted(entry.rows, entry.anchor_rows) or self._drifted(
                entry.bytes, entry.anchor_bytes
            ):
                entry.anchor_rows = entry.rows
                entry.anchor_bytes = entry.bytes
                self.version += 1
                self.version_bumps += 1
                return True
            return False

    def _drifted(self, current: float, anchor: float) -> bool:
        return abs(current - anchor) > self.drift_threshold * max(
            abs(anchor), 1.0
        )

    def lookup(self, site: str, export: str, shape: str) -> RuntimeEntry | None:
        with self._mutex:
            return self._entries.get(self._key(site, export, shape))

    def clear(self) -> None:
        """Forget everything learned (and invalidate dependent plans)."""
        with self._mutex:
            if self._entries:
                self._entries.clear()
                self.version += 1
                self.version_bumps += 1

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def snapshot(self) -> list[dict]:
        """JSON-safe dump of every learned entry (introspection/reports)."""
        with self._mutex:
            return [
                {
                    "site": site,
                    "export": export,
                    "shape": shape,
                    "rows": entry.rows,
                    "bytes": entry.bytes,
                    "samples": entry.samples,
                }
                for (site, export, shape), entry in self._entries.items()
            ]
