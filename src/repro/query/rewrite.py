"""Algebraic rewrites used by the cost-based optimizer.

Two classic view-aware transformations applied before localization:

- :func:`push_selections` — move WHERE conjuncts that reference a single
  derived table into that derived table's body (through set operations,
  mapping column names through each branch's projection).  Selection
  commutes with union/intersect/except and with duplicate elimination, so
  the rewrite is exact; blocks with GROUP BY, aggregates or LIMIT are left
  alone.
- :func:`prune_projections` — drop derived-table output columns the outer
  query never references (safe for plain SELECT bodies and UNION ALL;
  duplicate-eliminating bodies are left alone because projection changes
  their cardinality).

Together they let single-relation predicates and narrow projections reach
the export relations inside integrated-relation views, which is where the
full-fledged optimizer's advantage over the paper's simple strategy comes
from.
"""

from __future__ import annotations

from repro.sql import ast


# ---------------------------------------------------------------------------
# Selection pushdown through derived tables
# ---------------------------------------------------------------------------


def push_selections(query: ast.Query) -> ast.Query:
    """Recursively push single-derived-table conjuncts into view bodies."""
    if isinstance(query, ast.SetOperation):
        query.left = push_selections(query.left)
        query.right = push_selections(query.right)
        return query
    return _push_in_select(query)


def _push_in_select(select: ast.Select) -> ast.Select:
    # First recurse into FROM items so nested views are already optimised.
    for ref in select.from_clause:
        _recurse_ref(ref)

    if select.where is None:
        return select

    derived = _derived_tables(select.from_clause)
    if not derived:
        return select
    binding_columns = {
        alias.lower(): _output_names(ref.query) for alias, ref in derived.items()
    }
    # Include other bindings so unqualified refs resolve unambiguously.
    for ref in _all_named_refs(select.from_clause):
        binding_columns.setdefault(ref.binding.lower(), [])

    kept: list[ast.Expression] = []
    for conjunct in ast.split_conjuncts(select.where):
        owner = _owner_binding(conjunct, binding_columns)
        if owner is not None and owner in derived:
            target = derived[owner]
            pushed = _push_conjunct_into(target.query, conjunct, owner)
            if pushed:
                continue
        kept.append(conjunct)
    select.where = ast.conjoin(kept)
    return select


def _recurse_ref(ref: ast.TableRef) -> None:
    if isinstance(ref, ast.SubqueryRef):
        ref.query = push_selections(ref.query)
    elif isinstance(ref, ast.Join):
        _recurse_ref(ref.left)
        _recurse_ref(ref.right)


def _derived_tables(
    from_clause: list[ast.TableRef],
) -> dict[str, ast.SubqueryRef]:
    found: dict[str, ast.SubqueryRef] = {}

    def scan(ref: ast.TableRef) -> None:
        if isinstance(ref, ast.SubqueryRef):
            found[ref.alias.lower()] = ref
        elif isinstance(ref, ast.Join):
            # Only INNER/CROSS joins allow pushing selections into either
            # side without changing outer-join padding.
            scan_join(ref)

    def scan_join(join: ast.Join) -> None:
        if join.join_type in (ast.JoinType.INNER, ast.JoinType.CROSS):
            scan(join.left)
            scan(join.right)
        elif join.join_type is ast.JoinType.LEFT:
            scan(join.left)  # left side is safe
        elif join.join_type is ast.JoinType.RIGHT:
            scan(join.right)

    for ref in from_clause:
        scan(ref)
    return found


def _all_named_refs(from_clause: list[ast.TableRef]) -> list[ast.TableRef]:
    result: list = []

    def scan(ref: ast.TableRef) -> None:
        if isinstance(ref, (ast.TableName, ast.SubqueryRef)):
            result.append(ref)
        elif isinstance(ref, ast.Join):
            scan(ref.left)
            scan(ref.right)

    for ref in from_clause:
        scan(ref)
    return result


def _output_names(query: ast.Query) -> list[str]:
    while isinstance(query, ast.SetOperation):
        query = query.left
    names = []
    for item in query.items:
        if isinstance(item.expression, ast.Star):
            return []
        names.append(item.output_name)
    return names


def _owner_binding(
    conjunct: ast.Expression, binding_columns: dict[str, list[str]]
) -> str | None:
    owner: str | None = None
    for node in ast.walk_expressions(conjunct):
        if isinstance(
            node,
            (ast.InSubquery, ast.Exists, ast.ScalarSubquery, ast.Parameter),
        ):
            return None
        if isinstance(node, ast.FunctionCall) and node.is_aggregate:
            return None
        if isinstance(node, ast.Star):
            return None
        if isinstance(node, ast.ColumnRef):
            if node.table is not None:
                key = node.table.lower()
                if key not in binding_columns:
                    return None
            else:
                owners = [
                    binding
                    for binding, columns in binding_columns.items()
                    if node.name.lower() in (c.lower() for c in columns)
                ]
                if len(owners) != 1:
                    return None
                key = owners[0]
            if owner is None:
                owner = key
            elif owner != key:
                return None
    return owner


def _push_conjunct_into(
    query: ast.Query, conjunct: ast.Expression, binding: str
) -> bool:
    """Push one conjunct into a view body.  Returns True on success."""
    if not _can_push_into(query, conjunct, binding):
        return False
    _do_push_into(query, conjunct, binding)
    return True


def _can_push_into(
    query: ast.Query, conjunct: ast.Expression, binding: str
) -> bool:
    """Dry-run acceptability check (no mutation)."""
    if isinstance(query, ast.SetOperation):
        # Selection commutes with every set operation; both sides must accept.
        return _can_push_into(query.left, conjunct, binding) and _can_push_into(
            query.right, conjunct, binding
        )
    select = query
    if select.group_by or select.having is not None:
        return False
    if select.limit is not None or select.offset is not None:
        return False
    if any(ast.contains_aggregate(item.expression) for item in select.items):
        return False
    mapping: set[str] = set()
    for item in select.items:
        if isinstance(item.expression, ast.Star):
            return False
        mapping.add(item.output_name.lower())
    for node in ast.walk_expressions(conjunct):
        if isinstance(node, ast.ColumnRef):
            if node.table is None or node.table.lower() == binding.lower():
                if node.name.lower() not in mapping:
                    return False
    return True


def _do_push_into(
    query: ast.Query, conjunct: ast.Expression, binding: str
) -> None:
    if isinstance(query, ast.SetOperation):
        _do_push_into(query.left, conjunct, binding)
        _do_push_into(query.right, conjunct, binding)
        return
    select = query
    mapping: dict[str, ast.Expression] = {}
    for item in select.items:
        mapping[item.output_name.lower()] = item.expression

    failed = False

    def replace(node: ast.Expression) -> ast.Expression:
        nonlocal failed
        if isinstance(node, ast.ColumnRef):
            if node.table is None or node.table.lower() == binding.lower():
                target = mapping.get(node.name.lower())
                if target is None:
                    failed = True
                    return node
                return target
        return node

    mapped = ast.transform_expression(conjunct, replace)
    select.where = ast.conjoin(
        [p for p in (select.where, mapped) if p is not None]
    )


# ---------------------------------------------------------------------------
# Projection pruning through derived tables
# ---------------------------------------------------------------------------


def prune_projections(query: ast.Query) -> ast.Query:
    """Drop derived-table columns never used by the enclosing block."""
    if isinstance(query, ast.SetOperation):
        prune_projections(query.left)
        prune_projections(query.right)
        return query
    select = query

    derived = _derived_tables_all(select.from_clause)
    if derived:
        used = _used_columns(select)
        if used is not None:
            for alias, ref in derived.items():
                needed = used.get(alias, None)
                if needed is None:
                    continue
                _prune_query(ref.query, needed)
    # Recurse after pruning so inner blocks see the narrowed projections.
    for ref in select.from_clause:
        _prune_recurse_ref(ref)
    return select


def _derived_tables_all(
    from_clause: list[ast.TableRef],
) -> dict[str, ast.SubqueryRef]:
    found: dict[str, ast.SubqueryRef] = {}

    def scan(ref: ast.TableRef) -> None:
        if isinstance(ref, ast.SubqueryRef):
            found[ref.alias.lower()] = ref
        elif isinstance(ref, ast.Join):
            scan(ref.left)
            scan(ref.right)

    for ref in from_clause:
        scan(ref)
    return found


def _prune_recurse_ref(ref: ast.TableRef) -> None:
    if isinstance(ref, ast.SubqueryRef):
        prune_projections(ref.query)
    elif isinstance(ref, ast.Join):
        _prune_recurse_ref(ref.left)
        _prune_recurse_ref(ref.right)


def _used_columns(select: ast.Select) -> dict[str, set[str]] | None:
    """alias → columns referenced; None when '*' blocks the analysis."""
    binding_columns: dict[str, list[str]] = {}

    def note_binding(ref: ast.TableRef) -> None:
        if isinstance(ref, ast.SubqueryRef):
            binding_columns[ref.alias.lower()] = _output_names(ref.query)
        elif isinstance(ref, ast.TableName):
            binding_columns[ref.binding.lower()] = []
        elif isinstance(ref, ast.Join):
            note_binding(ref.left)
            note_binding(ref.right)

    for ref in select.from_clause:
        note_binding(ref)

    used: dict[str, set[str]] = {alias: set() for alias in binding_columns}
    blocked = False

    def note(node: ast.Expression) -> None:
        nonlocal blocked
        if isinstance(node, ast.Star):
            blocked = True
            return
        if isinstance(node, ast.ColumnRef):
            if node.table is not None:
                key = node.table.lower()
                if key in used:
                    used[key].add(node.name.lower())
            else:
                owners = [
                    alias
                    for alias, columns in binding_columns.items()
                    if node.name.lower() in (c.lower() for c in columns)
                ]
                if owners:
                    for owner in owners:
                        used[owner].add(node.name.lower())
                else:
                    # Could belong to a base table here or an outer block:
                    # mark every binding conservatively.
                    for key in used:
                        used[key].add(node.name.lower())

    def walk_expr(expr: ast.Expression) -> None:
        for node in ast.walk_expressions(expr):
            note(node)
            if isinstance(node, (ast.InSubquery, ast.ScalarSubquery)):
                _mark_all(node.query)
            elif isinstance(node, ast.Exists):
                _mark_all(node.query)

    def _mark_all(query: ast.Query) -> None:
        # Subqueries may reference outer bindings; be conservative.
        nonlocal blocked
        blocked = True

    for item in select.items:
        walk_expr(item.expression)
    if select.where is not None:
        walk_expr(select.where)
    for group in select.group_by:
        walk_expr(group)
    if select.having is not None:
        walk_expr(select.having)
    for order in select.order_by:
        walk_expr(order.expression)

    def walk_join_conditions(ref: ast.TableRef) -> None:
        if isinstance(ref, ast.Join):
            walk_join_conditions(ref.left)
            walk_join_conditions(ref.right)
            if ref.condition is not None:
                walk_expr(ref.condition)
            for column in ref.using:
                for key in used:
                    used[key].add(column.lower())

    for ref in select.from_clause:
        walk_join_conditions(ref)

    if blocked:
        return None
    return used


def _prune_query(query: ast.Query, needed: set[str]) -> None:
    """Restrict a view body's output columns to ``needed`` (by name)."""
    if isinstance(query, ast.SetOperation):
        if query.kind is not ast.SetOpKind.UNION_ALL:
            return  # duplicate-eliminating ops depend on all columns
        positions = _positions_for(query, needed)
        if positions is None:
            return
        _prune_positions(query, positions)
        return
    select = query
    if select.distinct:
        return
    keep = [
        item
        for item in select.items
        if isinstance(item.expression, ast.Star)
        or item.output_name.lower() in needed
    ]
    if not keep:
        keep = select.items[:1]
    select.items = keep


def _positions_for(query: ast.Query, needed: set[str]) -> list[int] | None:
    head = query
    while isinstance(head, ast.SetOperation):
        head = head.left
    positions = []
    for position, item in enumerate(head.items):
        if isinstance(item.expression, ast.Star):
            return None
        if item.output_name.lower() in needed:
            positions.append(position)
    if not positions:
        positions = [0]
    return positions


def _prune_positions(query: ast.Query, positions: list[int]) -> None:
    if isinstance(query, ast.SetOperation):
        _prune_positions(query.left, positions)
        _prune_positions(query.right, positions)
        return
    select = query
    if select.distinct:
        return  # shouldn't happen under UNION ALL guard, but stay safe
    if any(isinstance(i.expression, ast.Star) for i in select.items):
        return
    select.items = [select.items[p] for p in positions]
