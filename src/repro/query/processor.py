"""The global query processor: parse → expand → optimize → execute.

One :class:`GlobalQueryProcessor` serves one federation.  The optimizer
choice is per-call, so benchmarks can run the same query under the paper's
simple strategy and the full-fledged cost-based one.
"""

from __future__ import annotations

import hashlib

from repro.cache import FragmentCache, PlanCache
from repro.errors import FederationError
from repro.net import MessageTrace, Network
from repro.obs import Observability, obs_of
from repro.query.executor import GlobalExecutor, GlobalResult
from repro.query.feedback import (
    RuntimeStatsStore,
    fetch_rows_shape,
    fetch_shape,
)
from repro.query.localizer import GlobalPlan
from repro.query.optimizer import CostBasedOptimizer, SimpleOptimizer
from repro.schema.federation import Federation
from repro.sql import ast, parse_statement


def plan_digest(plan: GlobalPlan) -> str:
    """Short stable digest of an executed plan (slow-query event payload).

    Two queries with the same strategy, fetch shapes, and residual query
    share a digest, so a slow-query log groups by plan, not by literal SQL.
    """
    return hashlib.sha256(plan.describe().encode()).hexdigest()[:12]


class GlobalQueryProcessor:
    """Query-processing front door of one federation."""

    def __init__(
        self,
        federation: Federation,
        network: Network,
        default_optimizer: str = "cost",
        parallel_fetches: int = 4,
        plan_cache_size: int = 64,
        fragment_cache: bool | int = True,
        adaptive_feedback: bool = False,
        adaptive_replan: bool = False,
        replan_threshold: float = 3.0,
        retry_jitter: bool = False,
        jitter_seed: int = 0,
        vectorized: bool = False,
        wire_compression: bool = False,
    ):
        self.federation = federation
        self.network = network
        #: Learned per-(site, export, predicate-shape) cardinalities, fed
        #: by EXPLAIN ANALYZE actuals after every execution.  ``None``
        #: (the default) keeps planning bit-identical to the non-adaptive
        #: system.
        self.runtime_stats = (
            RuntimeStatsStore() if adaptive_feedback else None
        )
        #: Re-optimize remaining stages mid-query when actuals diverge.
        #: Requires a cost-based optimizer for the query; independent of
        #: ``adaptive_feedback`` (re-planning uses exact measured key
        #: counts, not the learned store).
        self.adaptive_replan = adaptive_replan
        self.optimizers = {
            "simple": SimpleOptimizer(federation.gateways),
            "cost": CostBasedOptimizer(
                federation.gateways,
                network,
                runtime_stats=self.runtime_stats,
            ),
            "cost-nosemijoin": CostBasedOptimizer(
                federation.gateways,
                network,
                enable_semijoin=False,
                runtime_stats=self.runtime_stats,
            ),
            "cost-noaggpush": CostBasedOptimizer(
                federation.gateways,
                network,
                enable_aggregate_pushdown=False,
                runtime_stats=self.runtime_stats,
            ),
        }
        if default_optimizer not in self.optimizers:
            raise FederationError(f"unknown optimizer {default_optimizer!r}")
        self.default_optimizer = default_optimizer
        #: Compiled-plan LRU; 0 disables it.
        self.plan_cache = (
            PlanCache(plan_cache_size) if plan_cache_size > 0 else None
        )
        frag_cache = None
        if fragment_cache:
            frag_cache = FragmentCache(
                fragment_cache if isinstance(fragment_cache, int)
                and not isinstance(fragment_cache, bool)
                else 128
            )
        self.executor = GlobalExecutor(
            federation,
            parallel_fetches=parallel_fetches,
            fragment_cache=frag_cache,
            retry_jitter=retry_jitter,
            jitter_seed=jitter_seed,
            vectorized=vectorized,
            wire_compression=wire_compression,
        )
        self.executor.replan_threshold = replan_threshold

    @property
    def fragment_cache(self) -> FragmentCache | None:
        return self.executor.fragment_cache

    def close(self) -> None:
        """Release executor resources (fetch worker pool)."""
        self.executor.close()

    @property
    def obs(self) -> Observability:
        return obs_of(self.network)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def parse(self, sql: str) -> ast.Query:
        with self.obs.span("query.parse"):
            statement = parse_statement(sql)
        if not isinstance(statement, (ast.Select, ast.SetOperation)):
            raise FederationError(
                "the global query processor accepts SELECT queries; "
                "use MyriadSystem.global_transaction for updates"
            )
        return statement

    def _plan_cache_key(
        self, sql: str, optimizer_name: str
    ) -> tuple | None:
        """Cache key covering everything a compiled plan depends on.

        Besides the SQL text and optimizer, the key embeds the
        federation's schema version and every gateway's statistics
        version: redefining a relation or committing DML changes the key,
        so stale plans die by lookup miss (and eventually LRU eviction)
        rather than by explicit flush.  With adaptive feedback on, the
        runtime-stats version rides along too: plans compiled from
        superseded learned cardinalities die the same way, and once the
        learned estimates converge the version stops moving and cache
        hits resume.
        """
        return (
            sql,
            optimizer_name,
            self.federation.schema_version,
            tuple(
                (site, gateway.stats_version)
                for site, gateway in sorted(self.federation.gateways.items())
            ),
            self.runtime_stats.version
            if self.runtime_stats is not None
            else None,
        )

    def plan(self, sql: str | ast.Query, optimizer: str | None = None) -> GlobalPlan:
        obs = self.obs
        optimizer_key = optimizer or self.default_optimizer
        chosen = self.optimizers[optimizer_key]
        cache_key = None
        if self.plan_cache is not None and isinstance(sql, str):
            # Key on the registry name, not ``chosen.name``: the cost
            # optimizer's feature-flag variants all report name "cost" but
            # compile different plans.
            cache_key = self._plan_cache_key(sql, optimizer_key)
            cached = self.plan_cache.get(cache_key)
            if cached is not None:
                obs.metrics.inc("plancache.hit", optimizer=chosen.name)
                with obs.span("query.plan_cached", optimizer=chosen.name):
                    return cached
            obs.metrics.inc("plancache.miss", optimizer=chosen.name)
        query = self.parse(sql) if isinstance(sql, str) else sql
        with obs.span("query.expand", federation=self.federation.name):
            expanded = self.federation.expand(query)
        with obs.span("query.plan", optimizer=chosen.name) as span:
            plan = chosen.plan(expanded)
            span.tag(fetches=len(plan.fetches))
        if cache_key is not None:
            self.plan_cache.put(cache_key, plan)
        return plan

    def explain(self, sql: str, optimizer: str | None = None) -> str:
        return self.plan(sql, optimizer).describe()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        sql: str | ast.Query,
        optimizer: str | None = None,
        trace: MessageTrace | None = None,
        timeout: float | None = None,
        global_id: object | None = None,
        allow_partial: bool = False,
        request_id: str | None = None,
    ) -> GlobalResult:
        obs = self.obs
        # Direct callers get a request id minted here; the serving layer
        # (and the 2PC coordinator's query path) mint earlier and pass it
        # down, so one id covers the whole statement.
        if request_id is None:
            request_id = obs.mint_request_id()
        threshold = getattr(obs, "slow_query_threshold_s", None)
        slow = False
        with obs.span(
            "query.execute",
            federation=self.federation.name,
            request=request_id,
        ) as span:
            optimizer_key = optimizer or self.default_optimizer
            chosen = self.optimizers[optimizer_key]
            plan = self.plan(sql, optimizer)
            replanner = (
                chosen
                if self.adaptive_replan and hasattr(chosen, "replan")
                else None
            )
            sim_before = trace.elapsed_s if trace is not None else 0.0
            try:
                result = self.executor.execute(
                    plan,
                    trace=trace,
                    timeout=timeout,
                    global_id=global_id,
                    allow_partial=allow_partial,
                    replanner=replanner,
                    request_id=request_id,
                )
            except BaseException:
                # The error marks the span, which tail sampling always
                # keeps; the failure still burns SLO budget.
                failed_sim = (
                    trace.elapsed_s - sim_before if trace is not None else 0.0
                )
                obs.record_request(
                    False, failed_sim, federation=self.federation.name
                )
                raise
            sim_elapsed = result.trace.elapsed_s - sim_before
            span.set_sim(sim_elapsed)
            span.tag(strategy=plan.strategy, rows=len(result.rows))
            # Tail-sampling keep reasons must land before the root span
            # closes (the keep/drop verdict happens at close).
            slow = threshold is not None and sim_elapsed >= threshold
            keep = None
            if result.degraded:
                keep = "degraded"
            elif any(
                getattr(fetch, "replanned", False) for fetch in plan.fetches
            ):
                keep = "replanned"
            elif slow:
                keep = "slow"
            if keep is not None:
                span.tag(sample_keep=keep)
        if self.runtime_stats is not None:
            self._record_actuals(plan, result, request_id)
        metrics = obs.metrics
        metrics.inc("query.executed", strategy=plan.strategy)
        metrics.inc("query.rows_fetched", result.fetched_rows)
        metrics.observe("query.sim_elapsed_s", sim_elapsed)
        obs.record_request(
            not result.degraded, sim_elapsed, federation=self.federation.name
        )
        if slow:
            obs.emit(
                "query.slow",
                sim_s=sim_elapsed,
                federation=self.federation.name,
                strategy=plan.strategy,
                plan_digest=plan_digest(plan),
                fetches=len(plan.fetches),
                rows=len(result.rows),
                threshold_s=threshold,
                request=request_id,
            )
        return result

    def _record_actuals(
        self,
        plan: GlobalPlan,
        result: GlobalResult,
        request_id: str | None = None,
    ) -> None:
        """Feed EXPLAIN ANALYZE actuals into the runtime-statistics store.

        Each executed fetch is recorded under its exact fragment shape
        (rows *and* wire bytes) and under its projection-independent rows
        shape, so a later plan shipping a different column set of the
        same predicate still reuses the learned cardinality.  Fragments
        served from the fragment cache are skipped: a hit implies the
        data version is unchanged, so they carry no new information — and
        their zero wire bytes must not erode the learned row widths.
        Degraded (skipped-site) fetches are not recorded either.
        """
        store = self.runtime_stats
        bumped = False
        for fetch in plan.fetches:
            actual = result.fetch_actuals.get(fetch.index)
            if actual is None or actual.cached:
                continue
            rows = float(actual.rows)
            bytes_ = float(actual.bytes)
            bumped |= store.observe(
                fetch.site, fetch.export, fetch_shape(fetch), rows, bytes_
            )
            bumped |= store.observe(
                fetch.site, fetch.export, fetch_rows_shape(fetch), rows, bytes_
            )
        if bumped:
            obs = self.obs
            obs.metrics.inc("query.feedback_version_bumps")
            obs.emit(
                "query.feedback",
                federation=self.federation.name,
                runtime_stats_version=store.version,
                entries=len(store),
                request=request_id,
            )
