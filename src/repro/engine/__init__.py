"""Local SQL execution engine: expressions, operators, planner, executor."""

from repro.engine.executor import (
    ExecutionReport,
    LocalEngine,
    Mutator,
    ResultSet,
)
from repro.engine.expressions import (
    BUILTIN_FUNCTIONS,
    DEFAULT_NOW,
    EvalEnv,
    ExpressionEvaluator,
    OutputColumn,
    Scope,
)
from repro.engine.planner import LocalPlanner

__all__ = [
    "ExecutionReport",
    "LocalEngine",
    "Mutator",
    "ResultSet",
    "BUILTIN_FUNCTIONS",
    "DEFAULT_NOW",
    "EvalEnv",
    "ExpressionEvaluator",
    "OutputColumn",
    "Scope",
    "LocalPlanner",
]
