"""Statement execution for one component database.

:class:`LocalEngine` ties the parser, planner and operators together behind a
simple ``execute(sql | Statement)`` API returning :class:`ResultSet` for
queries and affected-row counts for DML.

Mutations are routed through a :class:`Mutator` so the transaction layer
(:mod:`repro.concurrency`) can interpose locking and undo logging without the
engine knowing about it — exactly the autonomy boundary MYRIAD relied on in
its component DBMSs.
"""

from __future__ import annotations

import datetime
import threading
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import CatalogError, ExecutionError
from repro.engine import operators as ops
from repro.engine.expressions import (
    DEFAULT_NOW,
    EvalEnv,
    ExpressionEvaluator,
    OutputColumn,
    Scope,
)
from repro.engine.planner import LocalPlanner, _RecordingScope
from repro.sql import ast, parse_statement
from repro.storage.catalog import Catalog
from repro.storage.schema import Column, Row, TableSchema
from repro.storage.table import Table
from repro.storage.types import DataType


@dataclass
class ResultSet:
    """Query result: column names plus materialised rows."""

    columns: list[str]
    rows: list[tuple]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def to_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> object:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"expected 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[object]:
        try:
            position = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(f"no column {name!r} in result") from None
        return [row[position] for row in self.rows]


class Mutator:
    """Mutation interface between the engine and the storage/txn layers."""

    def insert(self, table: Table, row: Row) -> int:
        return table.insert(row)

    def delete(self, table: Table, rid: int) -> Row:
        return table.delete(rid)

    def update(self, table: Table, rid: int, new_row: Row) -> tuple[Row, Row]:
        return table.update(rid, new_row)

    def read_lock(self, table: Table) -> None:
        """Hook: acquire a shared lock before scanning (no-op by default)."""

    def write_lock(self, table: Table) -> None:
        """Hook: acquire an exclusive lock before mutating (no-op)."""


@dataclass
class ExecutionReport:
    """Work accounting for one statement (used by cost experiments)."""

    rows_scanned: int = 0
    rows_returned: int = 0


class LocalEngine:
    """Executes SQL statements against one catalog."""

    def __init__(
        self,
        catalog: Catalog,
        functions: dict[str, Callable] | None = None,
        now: Callable[[], datetime.datetime] | None = None,
        mutator: Mutator | None = None,
        vectorized: bool = False,
    ):
        self.catalog = catalog
        self.planner = LocalPlanner(catalog)
        self.functions = {k.upper(): v for k, v in (functions or {}).items()}
        self._now = now or (lambda: DEFAULT_NOW)
        self.mutator = mutator or Mutator()
        #: Execute queries batch-at-a-time over columnar blocks
        #: (:mod:`repro.engine.columnar`) instead of row-at-a-time.
        self.vectorized = bool(vectorized)
        self._report_local = threading.local()

    @property
    def last_report(self) -> ExecutionReport:
        """Work accounting of the last statement *this thread* executed.

        Thread-local so concurrent gateway fetches can't read each
        other's row counts (the gateway charges simulated compute from
        it immediately after executing).
        """
        report = getattr(self._report_local, "report", None)
        return report if report is not None else ExecutionReport()

    @last_report.setter
    def last_report(self, report: ExecutionReport) -> None:
        self._report_local.report = report

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(
        self,
        statement: str | ast.Statement,
        params: list[object] | None = None,
        mutator: Mutator | None = None,
        snapshot=None,
    ) -> ResultSet | int:
        """Run one statement.  Queries return ResultSet; DML returns counts.

        With ``snapshot`` (a :class:`repro.concurrency.Snapshot`) the
        statement must be a query: it executes against the snapshot's read
        view without acquiring any table locks.
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)
        if params:
            statement = _bind_parameters(statement, params)
        mutator = mutator or self.mutator

        if isinstance(statement, (ast.Select, ast.SetOperation)):
            return self.execute_query(
                statement, mutator=mutator, snapshot=snapshot
            )
        if snapshot is not None:
            raise ExecutionError(
                "only queries may execute against a read-only snapshot"
            )
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, mutator)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement, mutator)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement, mutator)
        if isinstance(statement, ast.CreateTable):
            self._execute_create_table(statement)
            return 0
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.name, statement.if_exists)
            return 0
        if isinstance(statement, ast.CreateIndex):
            table = self.catalog.get_table(statement.table)
            table.create_index(
                statement.name, statement.columns, statement.unique
            )
            return 0
        if isinstance(
            statement,
            (ast.BeginTransaction, ast.CommitTransaction, ast.RollbackTransaction),
        ):
            raise ExecutionError(
                "transaction control is handled by the DBMS session layer"
            )
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def execute_query(
        self,
        query: ast.Query,
        mutator: Mutator | None = None,
        outer: Scope | None = None,
        outer_rows: tuple[tuple, ...] = (),
        snapshot=None,
    ) -> ResultSet:
        mutator = mutator or self.mutator
        if snapshot is None:
            self._lock_query_tables(query, mutator)
        plan = self.planner.plan_query(query, outer)
        ctx = ops.ExecContext(
            env=self._make_env(mutator, snapshot),
            outer_rows=outer_rows,
            snapshot=snapshot,
        )
        if self.vectorized:
            from repro.engine.columnar import run_vectorized

            rows = run_vectorized(plan, ctx)
        else:
            rows = list(plan.rows(ctx))
        self.last_report = ExecutionReport(ctx.rows_scanned, len(rows))
        return ResultSet([c.name for c in plan.schema], rows)

    def explain(self, query: str | ast.Query) -> str:
        """The physical plan as a readable tree."""
        if isinstance(query, str):
            parsed = parse_statement(query)
            if not isinstance(parsed, (ast.Select, ast.SetOperation)):
                raise ExecutionError("EXPLAIN supports only queries")
            query = parsed
        return self.planner.plan_query(query).explain()

    # ------------------------------------------------------------------
    # Environment / subqueries
    # ------------------------------------------------------------------

    def _make_env(self, mutator: Mutator, snapshot=None) -> EvalEnv:
        env = EvalEnv(functions=dict(self.functions), now=self._now())
        cache: dict[int, list[tuple]] = {}

        def run_subquery(
            query: ast.Query, scope: Scope, outer_rows: tuple[tuple, ...]
        ) -> list[tuple]:
            if snapshot is None:
                self._lock_query_tables(query, mutator)
            recorder = _RecordingScope(scope)
            plan = self.planner.plan_query(query, recorder)
            key = id(query)
            # Plan once per call; cache results only for uncorrelated
            # subqueries (no outer resolution happened while planning and
            # none can happen at runtime because the plan never consulted
            # the recorder).
            if not recorder.consulted and key in cache:
                return cache[key]
            ctx = ops.ExecContext(
                env=env, outer_rows=outer_rows, snapshot=snapshot
            )
            rows = list(plan.rows(ctx))
            if not recorder.consulted:
                cache[key] = rows
            return rows

        env.subquery_executor = run_subquery
        return env

    def _lock_query_tables(self, query: ast.Query, mutator: Mutator) -> None:
        for name in _query_table_names(query):
            if self.catalog.has_table(name):
                mutator.read_lock(self.catalog.get_table(name))

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _execute_insert(self, statement: ast.Insert, mutator: Mutator) -> int:
        table = self.catalog.get_table(statement.table)
        mutator.write_lock(table)
        schema = table.schema

        rows_to_insert: list[Row] = []
        if statement.query is not None:
            result = self.execute_query(statement.query, mutator=mutator)
            source_rows = result.rows
            columns = statement.columns or schema.column_names
            if source_rows and len(source_rows[0]) != len(columns):
                raise ExecutionError(
                    "INSERT ... SELECT column count mismatch"
                )
            for row in source_rows:
                mapping = dict(zip(columns, row))
                rows_to_insert.append(schema.row_from_mapping(mapping))
        else:
            evaluator = ExpressionEvaluator(Scope([]), self._make_env(mutator))
            columns = statement.columns or schema.column_names
            for value_exprs in statement.rows:
                if len(value_exprs) != len(columns):
                    raise ExecutionError(
                        f"INSERT expects {len(columns)} values, "
                        f"got {len(value_exprs)}"
                    )
                values = [evaluator.eval(e, ()) for e in value_exprs]
                rows_to_insert.append(
                    schema.row_from_mapping(dict(zip(columns, values)))
                )

        for row in rows_to_insert:
            mutator.insert(table, row)
        self.catalog.invalidate_stats(table.name)
        return len(rows_to_insert)

    def _execute_update(self, statement: ast.Update, mutator: Mutator) -> int:
        table = self.catalog.get_table(statement.table)
        mutator.write_lock(table)
        schema = table.schema
        binding = statement.alias or statement.table
        scope = Scope(
            [OutputColumn(c.name, binding) for c in schema.columns]
        )
        evaluator = ExpressionEvaluator(scope, self._make_env(mutator))

        assignments: list[tuple[int, ast.Expression]] = []
        for column, expression in statement.assignments:
            assignments.append((schema.column_index(column), expression))

        matched: list[tuple[int, Row]] = []
        for rid, row in table.scan():
            if statement.where is not None:
                from repro.engine.expressions import as_bool

                if as_bool(evaluator.eval(statement.where, row)) is not True:
                    continue
            matched.append((rid, row))

        for rid, row in matched:
            new_values = list(row)
            for position, expression in assignments:
                new_values[position] = evaluator.eval(expression, row)
            mutator.update(table, rid, tuple(new_values))
        self.catalog.invalidate_stats(table.name)
        return len(matched)

    def _execute_delete(self, statement: ast.Delete, mutator: Mutator) -> int:
        table = self.catalog.get_table(statement.table)
        mutator.write_lock(table)
        binding = statement.alias or statement.table
        scope = Scope(
            [OutputColumn(c.name, binding) for c in table.schema.columns]
        )
        evaluator = ExpressionEvaluator(scope, self._make_env(mutator))

        matched: list[int] = []
        for rid, row in table.scan():
            if statement.where is not None:
                from repro.engine.expressions import as_bool

                if as_bool(evaluator.eval(statement.where, row)) is not True:
                    continue
            matched.append(rid)
        for rid in matched:
            mutator.delete(table, rid)
        self.catalog.invalidate_stats(table.name)
        return len(matched)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTable) -> None:
        columns: list[Column] = []
        primary_key = list(statement.primary_key)
        evaluator = ExpressionEvaluator(Scope([]), EvalEnv())
        for definition in statement.columns:
            datatype = DataType.from_name(
                definition.type_name, definition.type_params
            )
            default = None
            if definition.default is not None:
                default = evaluator.eval(definition.default, ())
            columns.append(
                Column(
                    definition.name,
                    datatype,
                    nullable=not (definition.not_null or definition.primary_key),
                    default=default,
                )
            )
            if definition.primary_key:
                primary_key.append(definition.name)
        if len(primary_key) != len(set(c.lower() for c in primary_key)):
            raise CatalogError("duplicate PRIMARY KEY specification")
        schema = TableSchema(statement.name, columns, primary_key)
        table = self.catalog.create_table(schema, statement.if_not_exists)
        for definition in statement.columns:
            if definition.unique and not definition.primary_key:
                table.create_index(
                    f"__uq_{statement.name}_{definition.name}",
                    [definition.name],
                    unique=True,
                )


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _bind_parameters(
    statement: ast.Statement, params: list[object]
) -> ast.Statement:
    """Replace ``?`` parameters with literal values (whole-statement walk)."""

    def replace(expr: ast.Expression) -> ast.Expression:
        if isinstance(expr, ast.Parameter):
            if expr.index >= len(params):
                raise ExecutionError(
                    f"parameter {expr.index + 1} not supplied"
                )
            return ast.Literal(params[expr.index])
        return expr

    return _transform_statement_expressions(statement, replace)


def _transform_statement_expressions(statement, fn):
    """Apply ``fn`` to every expression in a statement, recursively."""
    if isinstance(statement, ast.Select):
        statement.items = [
            ast.SelectItem(
                ast.transform_expression(i.expression, fn), i.alias
            )
            for i in statement.items
        ]
        if statement.where is not None:
            statement.where = ast.transform_expression(statement.where, fn)
        statement.group_by = [
            ast.transform_expression(g, fn) for g in statement.group_by
        ]
        if statement.having is not None:
            statement.having = ast.transform_expression(statement.having, fn)
        statement.order_by = [
            ast.OrderItem(ast.transform_expression(o.expression, fn), o.ascending)
            for o in statement.order_by
        ]
        for ref in statement.from_clause:
            _transform_table_ref(ref, fn)
    elif isinstance(statement, ast.SetOperation):
        _transform_statement_expressions(statement.left, fn)
        _transform_statement_expressions(statement.right, fn)
    elif isinstance(statement, ast.Insert):
        statement.rows = [
            [ast.transform_expression(v, fn) for v in row]
            for row in statement.rows
        ]
        if statement.query is not None:
            _transform_statement_expressions(statement.query, fn)
    elif isinstance(statement, ast.Update):
        statement.assignments = [
            (c, ast.transform_expression(v, fn)) for c, v in statement.assignments
        ]
        if statement.where is not None:
            statement.where = ast.transform_expression(statement.where, fn)
    elif isinstance(statement, ast.Delete):
        if statement.where is not None:
            statement.where = ast.transform_expression(statement.where, fn)
    return statement


def _transform_table_ref(ref: ast.TableRef, fn) -> None:
    if isinstance(ref, ast.SubqueryRef):
        _transform_statement_expressions(ref.query, fn)
    elif isinstance(ref, ast.Join):
        _transform_table_ref(ref.left, fn)
        _transform_table_ref(ref.right, fn)
        if ref.condition is not None:
            ref.condition = ast.transform_expression(ref.condition, fn)


def _query_table_names(query: ast.Query) -> set[str]:
    """All base-table names mentioned anywhere in a query."""
    names: set[str] = set()

    def visit_query(q: ast.Query) -> None:
        if isinstance(q, ast.SetOperation):
            visit_query(q.left)
            visit_query(q.right)
            return
        for ref in q.from_clause:
            visit_ref(ref)
        for expr in _query_expressions(q):
            for node in ast.walk_expressions(expr):
                if isinstance(node, (ast.InSubquery, ast.ScalarSubquery)):
                    visit_query(node.query)
                elif isinstance(node, ast.Exists):
                    visit_query(node.query)

    def visit_ref(ref: ast.TableRef) -> None:
        if isinstance(ref, ast.TableName):
            names.add(ref.name)
        elif isinstance(ref, ast.SubqueryRef):
            visit_query(ref.query)
        elif isinstance(ref, ast.Join):
            visit_ref(ref.left)
            visit_ref(ref.right)

    visit_query(query)
    return names


def _query_expressions(select: ast.Select):
    for item in select.items:
        yield item.expression
    if select.where is not None:
        yield select.where
    yield from select.group_by
    if select.having is not None:
        yield select.having
    for order in select.order_by:
        yield order.expression
