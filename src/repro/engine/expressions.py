"""Scalar expression evaluation with SQL three-valued logic.

The evaluator works against a :class:`Scope` describing the positional layout
of the rows an operator produces.  Correlated subqueries are supported by
stacking scopes: a subquery's scope points at the enclosing scope, and at
evaluation time outer rows travel alongside the current row.

Aggregate function calls are *not* evaluated here — the planner rewrites them
into column references over the aggregate operator's output before any
post-aggregation expression reaches this evaluator.
"""

from __future__ import annotations

import datetime
import re
from collections.abc import Callable
from dataclasses import dataclass, field
from decimal import Decimal

from repro.errors import CatalogError, ExecutionError, SQLTypeError
from repro.sql import ast
from repro.storage.types import tv_and, tv_not, tv_or

#: Deterministic "current time" used when no clock is wired in (keeps every
#: test and benchmark reproducible).
DEFAULT_NOW = datetime.datetime(1994, 5, 24, 12, 0, 0)  # SIGMOD'94, day 1


@dataclass(frozen=True)
class OutputColumn:
    """One column of an operator's output: optional binding plus name."""

    name: str
    binding: str | None = None

    def matches(self, table: str | None, name: str) -> bool:
        if name.lower() != self.name.lower():
            return False
        if table is None:
            return True
        return self.binding is not None and table.lower() == self.binding.lower()


class Scope:
    """Positional layout of a row, with an optional outer (parent) scope."""

    def __init__(self, columns: list[OutputColumn], parent: "Scope | None" = None):
        self.columns = list(columns)
        self.parent = parent

    def resolve(self, table: str | None, name: str) -> tuple[int, int]:
        """Resolve a column reference to (depth, position).

        Depth 0 is the current row; depth 1 the innermost outer row, etc.
        Raises CatalogError for unknown or ambiguous references.
        """
        matches = [
            position
            for position, column in enumerate(self.columns)
            if column.matches(table, name)
        ]
        if len(matches) == 1:
            return 0, matches[0]
        if len(matches) > 1:
            raise CatalogError(f"ambiguous column reference {_display(table, name)}")
        if self.parent is not None:
            depth, position = self.parent.resolve(table, name)
            return depth + 1, position
        raise CatalogError(f"unknown column {_display(table, name)}")

    def try_resolve(self, table: str | None, name: str) -> tuple[int, int] | None:
        try:
            return self.resolve(table, name)
        except CatalogError:
            return None


def _display(table: str | None, name: str) -> str:
    return f"{table}.{name}" if table else name


#: Signature of the callback used to run subqueries found inside expressions.
#: Receives (query, outer_scope, outer_rows) and returns the result rows.
SubqueryExecutor = Callable[
    [ast.Query, Scope, tuple[tuple, ...]], list[tuple]
]


@dataclass
class EvalEnv:
    """Everything the evaluator needs besides the row itself."""

    functions: dict[str, Callable] = field(default_factory=dict)
    subquery_executor: SubqueryExecutor | None = None
    now: datetime.datetime = DEFAULT_NOW


#: Cache marker for unqualified SYSDATE/CURRENT_DATE references that do not
#: name a real column — they evaluate to the environment clock instead.
_NOW_COLUMN = ("now",)


class ExpressionEvaluator:
    """Evaluates AST expressions against rows laid out by a :class:`Scope`.

    Column ordinals are resolved once per evaluator (one evaluator lives for
    the whole lifetime of an operator's ``rows()`` call), so the per-row cost
    of a column reference is a dict hit plus a tuple index — not a linear
    scan over the scope's columns.
    """

    def __init__(self, scope: Scope, env: EvalEnv | None = None):
        self.scope = scope
        self.env = env or EvalEnv()
        self._column_cache: dict[tuple[str | None, str], tuple] = {}

    def __call__(
        self, expr: ast.Expression, row: tuple, outer: tuple[tuple, ...] = ()
    ) -> object:
        return self.eval(expr, row, outer)

    # `outer` is a stack of outer rows, innermost first; index [depth-1].
    def eval(
        self, expr: ast.Expression, row: tuple, outer: tuple[tuple, ...] = ()
    ) -> object:
        method = _DISPATCH.get(type(expr))
        if method is None:
            raise ExecutionError(
                f"cannot evaluate expression node {type(expr).__name__}"
            )
        return method(self, expr, row, outer)

    # -- leaves --------------------------------------------------------

    def _eval_literal(self, expr: ast.Literal, row, outer) -> object:
        return expr.value

    def _eval_column(self, expr: ast.ColumnRef, row, outer) -> object:
        key = (expr.table, expr.name)
        loc = self._column_cache.get(key)
        if loc is None:
            if (
                expr.table is None
                and expr.name.upper() in ("SYSDATE", "CURRENT_DATE")
                and self.scope.try_resolve(expr.table, expr.name) is None
            ):
                loc = _NOW_COLUMN
            else:
                loc = self.scope.resolve(expr.table, expr.name)
            self._column_cache[key] = loc
        if loc is _NOW_COLUMN:
            return self.env.now.date()
        depth, position = loc
        target = row if depth == 0 else outer[depth - 1]
        return target[position]

    def _eval_parameter(self, expr: ast.Parameter, row, outer) -> object:
        raise ExecutionError(
            "unbound parameter: bind parameters before execution"
        )

    # -- operators --------------------------------------------------------

    def _eval_unary(self, expr: ast.UnaryOp, row, outer) -> object:
        kernel = UNARY_KERNELS.get(expr.op)
        if kernel is None:
            raise ExecutionError(f"unknown unary operator {expr.op!r}")
        return kernel(self.eval(expr.operand, row, outer))

    def _eval_binary(self, expr: ast.BinaryOp, row, outer) -> object:
        op = expr.op
        if op == "AND":
            left = _as_bool(self.eval(expr.left, row, outer))
            if left is False:
                return False
            return tv_and(left, _as_bool(self.eval(expr.right, row, outer)))
        if op == "OR":
            left = _as_bool(self.eval(expr.left, row, outer))
            if left is True:
                return True
            return tv_or(left, _as_bool(self.eval(expr.right, row, outer)))
        kernel = BINARY_KERNELS.get(op)
        if kernel is None:
            raise ExecutionError(f"unknown binary operator {op!r}")
        return kernel(
            self.eval(expr.left, row, outer),
            self.eval(expr.right, row, outer),
        )

    # -- predicates -------------------------------------------------------

    def _eval_is_null(self, expr: ast.IsNull, row, outer) -> object:
        value = self.eval(expr.operand, row, outer)
        result = value is None
        return not result if expr.negated else result

    def _eval_between(self, expr: ast.Between, row, outer) -> object:
        value = self.eval(expr.operand, row, outer)
        low = self.eval(expr.low, row, outer)
        high = self.eval(expr.high, row, outer)
        if value is None or low is None or high is None:
            return None
        result = (
            _compare_values(low, value) <= 0 and _compare_values(value, high) <= 0
        )
        return not result if expr.negated else result

    def _eval_in_list(self, expr: ast.InList, row, outer) -> object:
        value = self.eval(expr.operand, row, outer)
        result = self._membership(
            value, (self.eval(item, row, outer) for item in expr.items)
        )
        return tv_not(result) if expr.negated else result

    def _membership(self, value: object, candidates) -> bool | None:
        return membership(value, candidates)

    def _eval_in_subquery(self, expr: ast.InSubquery, row, outer) -> object:
        rows = self._run_subquery(expr.query, row, outer)
        value = self.eval(expr.operand, row, outer)
        result = self._membership(value, (r[0] for r in rows))
        return tv_not(result) if expr.negated else result

    def _eval_exists(self, expr: ast.Exists, row, outer) -> object:
        rows = self._run_subquery(expr.query, row, outer, limit_one=True)
        result = bool(rows)
        return not result if expr.negated else result

    def _eval_scalar_subquery(self, expr: ast.ScalarSubquery, row, outer) -> object:
        rows = self._run_subquery(expr.query, row, outer)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if len(rows[0]) != 1:
            raise ExecutionError("scalar subquery must return one column")
        return rows[0][0]

    def _run_subquery(
        self,
        query: ast.Query,
        row: tuple,
        outer: tuple[tuple, ...],
        limit_one: bool = False,
    ) -> list[tuple]:
        if self.env.subquery_executor is None:
            raise ExecutionError("subqueries are not supported in this context")
        return self.env.subquery_executor(query, self.scope, (row, *outer))

    # -- functions ---------------------------------------------------------

    def _eval_function(self, expr: ast.FunctionCall, row, outer) -> object:
        name = expr.name.upper()
        if expr.is_aggregate:
            raise ExecutionError(
                f"aggregate {name} used outside GROUP BY context"
            )
        args = [self.eval(arg, row, outer) for arg in expr.args]
        custom = self.env.functions.get(name)
        if custom is not None:
            return custom(*args)
        builtin = BUILTIN_FUNCTIONS.get(name)
        if builtin is not None:
            return builtin(self.env, args)
        raise ExecutionError(f"unknown function {name}")

    def _eval_case(self, expr: ast.Case, row, outer) -> object:
        if expr.operand is not None:
            subject = self.eval(expr.operand, row, outer)
            for condition, result in expr.whens:
                candidate = self.eval(condition, row, outer)
                if (
                    subject is not None
                    and candidate is not None
                    and _compare_values(subject, candidate) == 0
                ):
                    return self.eval(result, row, outer)
        else:
            for condition, result in expr.whens:
                if _as_bool(self.eval(condition, row, outer)) is True:
                    return self.eval(result, row, outer)
        if expr.default is not None:
            return self.eval(expr.default, row, outer)
        return None

    def _eval_cast(self, expr: ast.Cast, row, outer) -> object:
        from repro.storage.types import DataType

        value = self.eval(expr.operand, row, outer)
        return DataType.from_name(expr.type_name).validate(value)

    def _eval_star(self, expr: ast.Star, row, outer) -> object:
        raise ExecutionError("* is only valid in projections and COUNT(*)")


_DISPATCH = {
    ast.Literal: ExpressionEvaluator._eval_literal,
    ast.ColumnRef: ExpressionEvaluator._eval_column,
    ast.Parameter: ExpressionEvaluator._eval_parameter,
    ast.UnaryOp: ExpressionEvaluator._eval_unary,
    ast.BinaryOp: ExpressionEvaluator._eval_binary,
    ast.IsNull: ExpressionEvaluator._eval_is_null,
    ast.Between: ExpressionEvaluator._eval_between,
    ast.InList: ExpressionEvaluator._eval_in_list,
    ast.InSubquery: ExpressionEvaluator._eval_in_subquery,
    ast.Exists: ExpressionEvaluator._eval_exists,
    ast.ScalarSubquery: ExpressionEvaluator._eval_scalar_subquery,
    ast.FunctionCall: ExpressionEvaluator._eval_function,
    ast.Case: ExpressionEvaluator._eval_case,
    ast.Cast: ExpressionEvaluator._eval_cast,
    ast.Star: ExpressionEvaluator._eval_star,
}


# ---------------------------------------------------------------------------
# Value helpers
# ---------------------------------------------------------------------------


def _as_bool(value: object) -> bool | None:
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return bool(value)
    raise SQLTypeError(f"expected boolean, got {value!r}")


def _require_number(value: object, where: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float, Decimal)):
        raise SQLTypeError(f"non-numeric operand {value!r} for {where}")


def _arith(left, right, fn):
    if isinstance(left, Decimal) or isinstance(right, Decimal):
        return fn(Decimal(str(left)), Decimal(str(right)))
    return fn(left, right)


def _compare_values(left: object, right: object) -> int:
    """Total comparison for non-null SQL values; coerces numeric widths."""
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return (left > right) - (left < right)
        left, right = _numeric_pair(left, right)
    if isinstance(left, Decimal) or isinstance(right, Decimal):
        left, right = _numeric_pair(left, right)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return (left > right) - (left < right)
    if isinstance(left, datetime.datetime) and isinstance(right, datetime.date):
        if not isinstance(right, datetime.datetime):
            right = datetime.datetime(right.year, right.month, right.day)
    if isinstance(right, datetime.datetime) and isinstance(left, datetime.date):
        if not isinstance(left, datetime.datetime):
            left = datetime.datetime(left.year, left.month, left.day)
    if type(left) is not type(right) and not (
        isinstance(left, str) and isinstance(right, str)
    ):
        if isinstance(left, str) or isinstance(right, str):
            left, right = str(left), str(right)
    try:
        return (left > right) - (left < right)
    except TypeError:
        raise SQLTypeError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        ) from None


def _numeric_pair(left, right):
    def to_num(v):
        if isinstance(v, bool):
            return int(v)
        if isinstance(v, Decimal):
            return float(v)
        if isinstance(v, (int, float)):
            return v
        raise SQLTypeError(f"cannot compare {v!r} numerically")

    return to_num(left), to_num(right)


def _varchar(value: object) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    return str(value)


def membership(value: object, candidates) -> bool | None:
    """SQL IN semantics: TRUE on match, NULL if nulls prevent certainty."""
    saw_null = value is None
    for candidate in candidates:
        if candidate is None:
            saw_null = True
            continue
        if value is not None and _compare_values(value, candidate) == 0:
            return True
    return None if saw_null else False


_LIKE_CACHE: dict[str, re.Pattern] = {}


def _like_regex(pattern: str) -> re.Pattern:
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = ["^"]
        for ch in pattern:
            if ch == "%":
                regex.append(".*")
            elif ch == "_":
                regex.append(".")
            else:
                regex.append(re.escape(ch))
        regex.append("$")
        compiled = re.compile("".join(regex), re.DOTALL)
        if len(_LIKE_CACHE) > 1024:
            _LIKE_CACHE.clear()
        _LIKE_CACHE[pattern] = compiled
    return compiled


def _like_match(value: str, pattern: str) -> bool:
    return _like_regex(pattern).match(value) is not None


# ---------------------------------------------------------------------------
# Scalar kernels
#
# One function per operator, None handling included.  Both engines share
# these: the row evaluator dispatches per AST node, the columnar engine
# (``repro.engine.columnar``) applies one kernel over a whole column, so
# operator semantics cannot drift between the two paths.
# ---------------------------------------------------------------------------


def _k_like(left, right):
    if left is None or right is None:
        return None
    return _like_match(str(left), str(right))


def _k_not_like(left, right):
    if left is None or right is None:
        return None
    return not _like_match(str(left), str(right))


def _k_eq(left, right):
    if left is None or right is None:
        return None
    return _compare_values(left, right) == 0


def _k_ne(left, right):
    if left is None or right is None:
        return None
    return _compare_values(left, right) != 0


def _k_lt(left, right):
    if left is None or right is None:
        return None
    return _compare_values(left, right) < 0


def _k_le(left, right):
    if left is None or right is None:
        return None
    return _compare_values(left, right) <= 0


def _k_gt(left, right):
    if left is None or right is None:
        return None
    return _compare_values(left, right) > 0


def _k_ge(left, right):
    if left is None or right is None:
        return None
    return _compare_values(left, right) >= 0


def _k_concat(left, right):
    if left is None or right is None:
        return None
    return _varchar(left) + _varchar(right)


def _k_add(left, right):
    if left is None or right is None:
        return None
    if isinstance(left, (datetime.date, datetime.datetime)):
        _require_number(right, "date arithmetic")
        return left + datetime.timedelta(days=float(right))
    _require_number(left, "+")
    _require_number(right, "+")
    return _arith(left, right, lambda a, b: a + b)


def _k_sub(left, right):
    if left is None or right is None:
        return None
    if isinstance(left, (datetime.date, datetime.datetime)):
        if isinstance(right, (datetime.date, datetime.datetime)):
            return (left - right).days
        _require_number(right, "date arithmetic")
        return left - datetime.timedelta(days=float(right))
    _require_number(left, "-")
    _require_number(right, "-")
    return _arith(left, right, lambda a, b: a - b)


def _k_mul(left, right):
    if left is None or right is None:
        return None
    _require_number(left, "*")
    _require_number(right, "*")
    return _arith(left, right, lambda a, b: a * b)


def _k_div(left, right):
    if left is None or right is None:
        return None
    _require_number(left, "/")
    _require_number(right, "/")
    if right == 0:
        raise ExecutionError("division by zero")
    if isinstance(left, int) and isinstance(right, int):
        if left % right == 0:
            return left // right
        return left / right
    return _arith(left, right, lambda a, b: a / b)


def _k_mod(left, right):
    if left is None or right is None:
        return None
    _require_number(left, "%")
    _require_number(right, "%")
    if right == 0:
        raise ExecutionError("division by zero")
    return _arith(left, right, lambda a, b: a % b)


BINARY_KERNELS: dict[str, Callable[[object, object], object]] = {
    "LIKE": _k_like,
    "NOT LIKE": _k_not_like,
    "=": _k_eq,
    "<>": _k_ne,
    "<": _k_lt,
    "<=": _k_le,
    ">": _k_gt,
    ">=": _k_ge,
    "||": _k_concat,
    "+": _k_add,
    "-": _k_sub,
    "*": _k_mul,
    "/": _k_div,
    "%": _k_mod,
}


def _k_not(value):
    return tv_not(_as_bool(value))


def _k_neg(value):
    if value is None:
        return None
    _require_number(value, "unary -")
    return -value


def _k_pos(value):
    if value is None:
        return None
    _require_number(value, "unary +")
    return value


UNARY_KERNELS: dict[str, Callable[[object], object]] = {
    "NOT": _k_not,
    "-": _k_neg,
    "+": _k_pos,
}


# ---------------------------------------------------------------------------
# Built-in scalar functions
# ---------------------------------------------------------------------------


def _fn_upper(env, args):
    (value,) = args
    return None if value is None else str(value).upper()


def _fn_lower(env, args):
    (value,) = args
    return None if value is None else str(value).lower()


def _fn_length(env, args):
    (value,) = args
    return None if value is None else len(str(value))


def _fn_substr(env, args):
    value = args[0]
    if value is None:
        return None
    text = str(value)
    start = int(args[1])
    begin = start - 1 if start > 0 else max(len(text) + start, 0)
    if len(args) >= 3:
        if args[2] is None:
            return None
        return text[begin : begin + int(args[2])]
    return text[begin:]


def _fn_abs(env, args):
    (value,) = args
    return None if value is None else abs(value)


def _fn_round(env, args):
    value = args[0]
    if value is None:
        return None
    digits = int(args[1]) if len(args) > 1 else 0
    result = round(float(value), digits)
    return int(result) if digits <= 0 else result


def _fn_floor(env, args):
    import math

    (value,) = args
    return None if value is None else math.floor(value)


def _fn_ceil(env, args):
    import math

    (value,) = args
    return None if value is None else math.ceil(value)


def _fn_mod(env, args):
    left, right = args
    if left is None or right is None:
        return None
    if right == 0:
        raise ExecutionError("MOD by zero")
    return left % right


def _fn_coalesce(env, args):
    for value in args:
        if value is not None:
            return value
    return None


def _fn_nullif(env, args):
    left, right = args
    if left is not None and right is not None and _compare_values(left, right) == 0:
        return None
    return left


def _fn_trim(env, args):
    (value,) = args
    return None if value is None else str(value).strip()


def _fn_concat(env, args):
    return "".join(_varchar(a) for a in args if a is not None)


def _fn_now(env, args):
    return env.now


def _fn_current_date(env, args):
    return env.now.date()


def _fn_greatest(env, args):
    values = [a for a in args if a is not None]
    if len(values) != len(args):
        return None
    result = values[0]
    for value in values[1:]:
        if _compare_values(value, result) > 0:
            result = value
    return result


def _fn_least(env, args):
    values = [a for a in args if a is not None]
    if len(values) != len(args):
        return None
    result = values[0]
    for value in values[1:]:
        if _compare_values(value, result) < 0:
            result = value
    return result


BUILTIN_FUNCTIONS: dict[str, Callable[[EvalEnv, list], object]] = {
    "UPPER": _fn_upper,
    "LOWER": _fn_lower,
    "LENGTH": _fn_length,
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
    "ABS": _fn_abs,
    "ROUND": _fn_round,
    "FLOOR": _fn_floor,
    "CEIL": _fn_ceil,
    "CEILING": _fn_ceil,
    "MOD": _fn_mod,
    "COALESCE": _fn_coalesce,
    "NVL": _fn_coalesce,
    "NULLIF": _fn_nullif,
    "TRIM": _fn_trim,
    "CONCAT": _fn_concat,
    "NOW": _fn_now,
    "SYSDATE": _fn_current_date,
    "CURRENT_DATE": _fn_current_date,
    "GREATEST": _fn_greatest,
    "LEAST": _fn_least,
}

compare_values = _compare_values
as_bool = _as_bool
