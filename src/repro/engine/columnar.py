"""Batch-at-a-time columnar execution over the row planner's operator tree.

The row engine (``operators.py``) is Volcano-style: one tuple per
``rows()`` step, one AST walk per expression per tuple.  This module adds a
second execution strategy over the *same* physical plan: operators exchange
:class:`Batch` objects (one :class:`ColumnBlock` per output column), and
every expression is compiled **once per query** into a closure that runs
over whole columns with selection vectors.

Correctness contract (tested by ``tests/test_columnar.py``):

- identical result rows *in identical order* to the row engine, for every
  supported query shape — so vectorized subtrees compose transparently
  under row-at-a-time parents (Sort, Limit, set ops, nested-loop joins);
- identical ``rows_scanned`` accounting, except under a bare LIMIT where
  the row engine stops pulling its child early while a batch materialises
  its input fully (documented in the README);
- scalar semantics come from the *same* kernels the row evaluator uses
  (``expressions.BINARY_KERNELS`` / ``UNARY_KERNELS``), so three-valued
  logic, numeric coercion and error behaviour cannot drift.

Anything the compiler cannot vectorize (subqueries, outer-row references,
non-literal IN lists, unknown node types) falls back to a per-row
``ExpressionEvaluator`` over the batch — still inside the batch framework,
so a single opaque predicate never forces the whole plan back to rows.
"""

from __future__ import annotations

import operator
from decimal import Decimal

from repro.engine import operators as ops
from repro.engine.expressions import (
    BINARY_KERNELS,
    BUILTIN_FUNCTIONS,
    UNARY_KERNELS,
    ExpressionEvaluator,
    OutputColumn,
    Scope,
    as_bool,
    compare_values,
    membership,
)
from repro.errors import ExecutionError
from repro.sql import ast
from repro.storage.types import tv_and, tv_not, tv_or

__all__ = [
    "Batch",
    "ColumnBlock",
    "compile_expr",
    "run_vectorized",
    "vectorize",
]


# ---------------------------------------------------------------------------
# Columnar containers
# ---------------------------------------------------------------------------


class ColumnBlock(list):
    """One column of a :class:`Batch` — a plain list of values.

    Subclassing ``list`` keeps per-element access at native speed; the
    class exists so batches have a nominal column type and a place for
    column-level helpers.
    """

    __slots__ = ()

    def take(self, sel: list[int]) -> "ColumnBlock":
        return ColumnBlock([self[i] for i in sel])


def _gather(column: list, indices: list[int]) -> ColumnBlock:
    """Gather by index; ``-1`` produces NULL (outer-join padding)."""
    return ColumnBlock(
        [column[i] if i >= 0 else None for i in indices]
    )


class Batch:
    """A horizontal slice of an operator's output, stored column-wise."""

    __slots__ = ("schema", "columns", "length")

    def __init__(
        self, schema: list[OutputColumn], columns: list[list], length: int
    ):
        self.schema = schema
        self.columns = columns
        self.length = length

    @classmethod
    def from_rows(cls, schema: list[OutputColumn], rows: list[tuple]) -> "Batch":
        width = len(schema)
        if not rows:
            return cls(schema, [ColumnBlock() for _ in range(width)], 0)
        if width == 0:
            return cls(schema, [], len(rows))
        # The transposed tuples are used as columns directly (columns are
        # only ever indexed/iterated, never mutated) — wrapping each in a
        # ColumnBlock would copy the whole table once more per scan.
        return cls(schema, list(zip(*rows)), len(rows))

    def to_rows(self) -> list[tuple]:
        if not self.columns:
            return [()] * self.length
        return list(zip(*self.columns))

    def row(self, index: int) -> tuple:
        return tuple(column[index] for column in self.columns)

    def take(self, sel: list[int]) -> "Batch":
        # Pruned columns (None — see _apply_pruning) stay pruned.
        return Batch(
            self.schema,
            [
                ColumnBlock([col[i] for i in sel]) if col is not None else None
                for col in self.columns
            ],
            len(sel),
        )


# ---------------------------------------------------------------------------
# Expression compilation
#
# A compiled expression is a callable ``f(cols, n, sel, ctx) -> list`` where
# ``cols`` are the input batch's columns, ``n`` its length and ``sel`` an
# optional selection vector (list of row indices; None means "all rows").
# The result list is aligned with ``sel`` (or with 0..n-1 when sel is None).
# Selection vectors are how AND/OR/CASE keep the row engine's short-circuit
# semantics: a sub-expression only ever runs over the rows the row engine
# would have evaluated it for.
# ---------------------------------------------------------------------------


class _CannotCompile(Exception):
    pass


_MISSING = object()


def _count(n: int, sel) -> int:
    return n if sel is None else len(sel)


def compile_expr(expr: ast.Expression, scope: Scope):
    """Compile ``expr`` for vectorized evaluation, or None if unsupported."""
    try:
        return _compile(expr, scope)
    except _CannotCompile:
        return None


def _compile(expr, scope):
    compiler = _COMPILERS.get(type(expr))
    if compiler is None:
        raise _CannotCompile
    return compiler(expr, scope)


def _compile_literal(expr, scope):
    value = expr.value

    def run(cols, n, sel, ctx):
        return [value] * _count(n, sel)

    run.const_value = value
    return run


def _compile_column(expr, scope):
    if (
        expr.table is None
        and expr.name.upper() in ("SYSDATE", "CURRENT_DATE")
        and scope.try_resolve(expr.table, expr.name) is None
    ):
        def run_now(cols, n, sel, ctx):
            today = ctx.env.now.date()
            return [today] * _count(n, sel)

        return run_now
    loc = scope.try_resolve(expr.table, expr.name)
    if loc is None or loc[0] != 0:
        # Unknown, ambiguous, or an outer-row reference: the per-row
        # fallback reproduces the row engine's behaviour exactly.
        raise _CannotCompile
    position = loc[1]

    def run(cols, n, sel, ctx):
        column = cols[position]
        if sel is None:
            return column
        return [column[i] for i in sel]

    return run


def _compile_unary(expr, scope):
    kernel = UNARY_KERNELS.get(expr.op)
    if kernel is None:
        raise _CannotCompile
    operand = _compile(expr.operand, scope)

    def run(cols, n, sel, ctx):
        return [kernel(v) for v in operand(cols, n, sel, ctx)]

    return run


def _compile_binary(expr, scope):
    op = expr.op
    if op == "AND":
        return _compile_logical(expr, scope, is_and=True)
    if op == "OR":
        return _compile_logical(expr, scope, is_and=False)
    kernel = BINARY_KERNELS.get(op)
    if kernel is None:
        raise _CannotCompile
    left = _compile(expr.left, scope)
    right = _compile(expr.right, scope)
    left_const = getattr(left, "const_value", _MISSING)
    right_const = getattr(right, "const_value", _MISSING)

    if left_const is not _MISSING and right_const is not _MISSING:
        def run_const(cols, n, sel, ctx):
            count = _count(n, sel)
            if count == 0:
                return []
            return [kernel(left_const, right_const)] * count

        return run_const

    if right_const is not _MISSING:
        def run_rconst(cols, n, sel, ctx):
            return [kernel(v, right_const) for v in left(cols, n, sel, ctx)]

        return run_rconst

    if left_const is not _MISSING:
        def run_lconst(cols, n, sel, ctx):
            return [kernel(left_const, v) for v in right(cols, n, sel, ctx)]

        return run_lconst

    def run(cols, n, sel, ctx):
        return [
            kernel(a, b)
            for a, b in zip(left(cols, n, sel, ctx), right(cols, n, sel, ctx))
        ]

    return run


def _compile_logical(expr, scope, is_and: bool):
    left = _compile(expr.left, scope)
    right = _compile(expr.right, scope)
    combine = tv_and if is_and else tv_or
    # AND short-circuits on False, OR on True: the right side only runs
    # over rows where the left side did not already decide the outcome.
    stop = False if is_and else True

    def run(cols, n, sel, ctx):
        left_bools = [as_bool(v) for v in left(cols, n, sel, ctx)]
        base = range(n) if sel is None else sel
        need = [i for i, lb in zip(base, left_bools) if lb is not stop]
        out = [stop] * len(left_bools)
        if need:
            right_vals = iter(right(cols, n, need, ctx))
            for position, lb in enumerate(left_bools):
                if lb is not stop:
                    out[position] = combine(lb, as_bool(next(right_vals)))
        return out

    return run


def _compile_is_null(expr, scope):
    operand = _compile(expr.operand, scope)
    if expr.negated:
        def run_not_null(cols, n, sel, ctx):
            return [v is not None for v in operand(cols, n, sel, ctx)]

        return run_not_null

    def run(cols, n, sel, ctx):
        return [v is None for v in operand(cols, n, sel, ctx)]

    return run


def _compile_between(expr, scope):
    operand = _compile(expr.operand, scope)
    low = _compile(expr.low, scope)
    high = _compile(expr.high, scope)
    negated = expr.negated

    def run(cols, n, sel, ctx):
        out = []
        append = out.append
        for value, lo, hi in zip(
            operand(cols, n, sel, ctx),
            low(cols, n, sel, ctx),
            high(cols, n, sel, ctx),
        ):
            if value is None or lo is None or hi is None:
                append(None)
                continue
            result = (
                compare_values(lo, value) <= 0
                and compare_values(value, hi) <= 0
            )
            append(not result if negated else result)
        return out

    return run


def _compile_in_list(expr, scope):
    if not all(isinstance(item, ast.Literal) for item in expr.items):
        raise _CannotCompile
    operand = _compile(expr.operand, scope)
    candidates = [item.value for item in expr.items]
    saw_null = any(c is None for c in candidates)
    negated = expr.negated
    numeric_set = None
    if all(
        isinstance(c, (int, float)) and not isinstance(c, bool)
        for c in candidates
    ):
        # Semijoin IN lists are numeric literals: O(1) set probe instead of
        # the row engine's linear scan, with the same coercion semantics
        # (1, 1.0 and Decimal(1) all match).
        numeric_set = {float(c) for c in candidates}

    def run(cols, n, sel, ctx):
        out = []
        append = out.append
        for value in operand(cols, n, sel, ctx):
            if value is None:
                verdict = None
            elif numeric_set is not None and isinstance(
                value, (int, float, Decimal)
            ):
                if float(value) in numeric_set:
                    verdict = True
                else:
                    verdict = None if saw_null else False
            else:
                verdict = membership(value, candidates)
            append(tv_not(verdict) if negated else verdict)
        return out

    return run


def _compile_function(expr, scope):
    if expr.is_aggregate:
        raise _CannotCompile
    name = expr.name.upper()
    arg_compiled = [_compile(arg, scope) for arg in expr.args]

    def run(cols, n, sel, ctx):
        arg_cols = [c(cols, n, sel, ctx) for c in arg_compiled]
        env = ctx.env
        custom = env.functions.get(name)
        if custom is not None:
            if arg_cols:
                return [custom(*vals) for vals in zip(*arg_cols)]
            return [custom() for _ in range(_count(n, sel))]
        builtin = BUILTIN_FUNCTIONS.get(name)
        if builtin is None:
            raise ExecutionError(f"unknown function {name}")
        if arg_cols:
            return [builtin(env, list(vals)) for vals in zip(*arg_cols)]
        return [builtin(env, []) for _ in range(_count(n, sel))]

    return run


def _compile_case(expr, scope):
    whens = [
        (_compile(cond, scope), _compile(result, scope))
        for cond, result in expr.whens
    ]
    default = _compile(expr.default, scope) if expr.default is not None else None
    operand = _compile(expr.operand, scope) if expr.operand is not None else None

    def run(cols, n, sel, ctx):
        base = list(range(n)) if sel is None else list(sel)
        out = [None] * len(base)
        remaining_idx = base
        remaining_slot = list(range(len(base)))
        subjects = operand(cols, n, base, ctx) if operand is not None else None
        for cond_c, result_c in whens:
            if not remaining_idx:
                break
            cond_vals = cond_c(cols, n, remaining_idx, ctx)
            hit_idx, hit_slot = [], []
            rest_idx, rest_slot = [], []
            for i, slot, cand in zip(remaining_idx, remaining_slot, cond_vals):
                if subjects is not None:
                    subject = subjects[slot]
                    hit = (
                        subject is not None
                        and cand is not None
                        and compare_values(subject, cand) == 0
                    )
                else:
                    hit = as_bool(cand) is True
                if hit:
                    hit_idx.append(i)
                    hit_slot.append(slot)
                else:
                    rest_idx.append(i)
                    rest_slot.append(slot)
            if hit_idx:
                for slot, value in zip(
                    hit_slot, result_c(cols, n, hit_idx, ctx)
                ):
                    out[slot] = value
            remaining_idx, remaining_slot = rest_idx, rest_slot
        if default is not None and remaining_idx:
            for slot, value in zip(
                remaining_slot, default(cols, n, remaining_idx, ctx)
            ):
                out[slot] = value
        return out

    return run


def _compile_cast(expr, scope):
    from repro.storage.types import DataType

    operand = _compile(expr.operand, scope)
    try:
        data_type = DataType.from_name(expr.type_name)
    except Exception:
        raise _CannotCompile from None

    def run(cols, n, sel, ctx):
        validate = data_type.validate
        return [validate(v) for v in operand(cols, n, sel, ctx)]

    return run


_COMPILERS = {
    ast.Literal: _compile_literal,
    ast.ColumnRef: _compile_column,
    ast.UnaryOp: _compile_unary,
    ast.BinaryOp: _compile_binary,
    ast.IsNull: _compile_is_null,
    ast.Between: _compile_between,
    ast.InList: _compile_in_list,
    ast.FunctionCall: _compile_function,
    ast.Case: _compile_case,
    ast.Cast: _compile_cast,
}


def _row_fallback(expr, scope):
    """Per-row evaluation inside the batch framework, for anything the
    compiler cannot vectorize (subqueries, outer-row references, ...)."""

    def run(cols, n, sel, ctx):
        evaluator = ExpressionEvaluator(scope, ctx.env)
        evaluate = evaluator.eval
        outer = ctx.outer_rows
        indices = range(n) if sel is None else sel
        return [
            evaluate(expr, tuple(col[i] for col in cols), outer)
            for i in indices
        ]

    run.is_fallback = True
    return run


def compile_or_fallback(expr, scope):
    compiled = compile_expr(expr, scope)
    if compiled is not None:
        return compiled
    return _row_fallback(expr, scope)


def _split_conjuncts(expr) -> list:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


# ---------------------------------------------------------------------------
# Column pruning
#
# Joins are the one place a batch plan materialises wide intermediate
# results; when every expression above a join compiled cleanly we know the
# exact set of output positions that will ever be read and skip gathering
# the rest.  Positions flow top-down (``None`` = "needs every column").
# ---------------------------------------------------------------------------


_SUBQUERY_NODES = (ast.InSubquery, ast.Exists, ast.ScalarSubquery)


def _referenced_positions(expr, scope):
    """Depth-0 column positions ``expr`` reads, or None if undeterminable."""
    positions: set[int] = set()
    for node in ast.walk_expressions(expr):
        if isinstance(node, _SUBQUERY_NODES):
            return None  # the body may see any column through outer rows
        if isinstance(node, ast.ColumnRef):
            loc = scope.try_resolve(node.table, node.name)
            if loc is None:
                continue  # pseudo-column (SYSDATE) or a runtime error
            if loc[0] != 0:
                return None
            positions.add(loc[1])
    return positions


def _union_positions(pairs, scope):
    """Union referenced positions over ``(expr, compiled)`` pairs; None if
    any expression fell back to per-row evaluation (needs whole rows)."""
    out: set[int] = set()
    for expr, compiled in pairs:
        if getattr(compiled, "is_fallback", False):
            return None
        positions = _referenced_positions(expr, scope)
        if positions is None:
            return None
        out |= positions
    return out


# ---------------------------------------------------------------------------
# Vectorized operators
# ---------------------------------------------------------------------------


class VecNode:
    """Base class: subclasses set ``schema`` and implement ``batch(ctx)``."""

    schema: list[OutputColumn]

    def batch(self, ctx: ops.ExecContext) -> Batch:
        raise NotImplementedError


class VecMaterialize(VecNode):
    """Materialises a row operator's output as one batch.

    Used for leaves (SeqScan gets a dedicated bulk path) and as the bridge
    under any operator that stays row-at-a-time.
    """

    def __init__(self, op: ops.Operator):
        self.op = op
        self.schema = op.schema

    def batch(self, ctx):
        op = self.op
        if type(op) is ops.SeqScan:
            if ctx.snapshot is not None:
                data = [row for _, row in ctx.snapshot.visible_items(op.table)]
            else:
                data = [row for _, row in op.table.scan()]
            ctx.rows_scanned += len(data)
        elif type(op) is ops.ValuesScan:
            data = list(op._rows)
            ctx.rows_scanned += len(data)
        else:
            data = list(op.rows(ctx))
        return Batch.from_rows(self.schema, data)


class VecRename(VecNode):
    def __init__(self, op: ops.Rename, child: VecNode):
        self.op = op
        self.child = child
        self.schema = op.schema

    def batch(self, ctx):
        inner = self.child.batch(ctx)
        return Batch(self.schema, inner.columns, inner.length)


#: Comparison conjuncts fusable into a direct selection loop.
_CMP_FUNCS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "<>": operator.ne,
}
#: Operator after swapping operand sides (literal on the left).
_CMP_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


def _fuse_comparison(expr, scope):
    """``(position, cmp, const, kernel)`` for ``col <cmp> numeric-literal``.

    The fused form lets :class:`VecFilter` compare int/float values with a
    direct operator call instead of kernel dispatch + three-valued
    coercion per row; every other value type (None, bool, str, dates)
    drops to the shared kernel so semantics match the row engine exactly.
    """
    if not isinstance(expr, ast.BinaryOp) or expr.op not in _CMP_FUNCS:
        return None
    left, right, op_name = expr.left, expr.right, expr.op
    if isinstance(left, ast.Literal) and isinstance(right, ast.ColumnRef):
        left, right = right, left
        op_name = _CMP_FLIP[op_name]
    if not (
        isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal)
    ):
        return None
    const = right.value
    if isinstance(const, bool) or not isinstance(const, (int, float)):
        return None
    loc = scope.try_resolve(left.table, left.name)
    if loc is None or loc[0] != 0:
        return None
    return (loc[1], _CMP_FUNCS[op_name], const, BINARY_KERNELS[op_name])


class VecFilter(VecNode):
    """Filter via progressively-narrowed selection vectors.

    The predicate splits into conjuncts evaluated left to right; a row
    leaves the selection as soon as a conjunct is False (the row engine's
    AND short-circuit), while NULL verdicts keep evaluating later conjuncts
    but taint the row out of the final output.
    """

    def __init__(self, op: ops.Filter, child: VecNode):
        self.op = op
        self.child = child
        self.schema = op.schema
        conjunct_exprs = _split_conjuncts(op.predicate)
        self.conjuncts = [
            compile_or_fallback(conjunct, op._scope)
            for conjunct in conjunct_exprs
        ]
        self.fused = [
            _fuse_comparison(conjunct, op._scope)
            for conjunct in conjunct_exprs
        ]
        self.predicate_positions = _union_positions(
            zip(conjunct_exprs, self.conjuncts), op._scope
        )

    def batch(self, ctx):
        batch = self.child.batch(ctx)
        n = batch.length
        if n == 0:
            return batch
        cols = batch.columns
        sel = None
        taint = None
        for conjunct, fused in zip(self.conjuncts, self.fused):
            base = range(n) if sel is None else sel
            kept = []
            append = kept.append
            if fused is not None:
                position, cmp, const, kernel = fused
                column = cols[position]
                for i in base:
                    value = column[i]
                    kind = type(value)
                    if kind is float or kind is int:
                        if cmp(value, const):
                            append(i)
                        continue
                    if value is None:
                        if taint is None:
                            taint = set()
                        taint.add(i)
                        append(i)
                        continue
                    verdict = as_bool(kernel(value, const))
                    if verdict is False:
                        continue
                    if verdict is None:
                        if taint is None:
                            taint = set()
                        taint.add(i)
                    append(i)
            else:
                verdicts = conjunct(cols, n, sel, ctx)
                for i, raw in zip(base, verdicts):
                    verdict = as_bool(raw)
                    if verdict is False:
                        continue
                    if verdict is None:
                        if taint is None:
                            taint = set()
                        taint.add(i)
                    append(i)
            sel = kept
            if not sel:
                break
        if taint:
            sel = [i for i in sel if i not in taint]
        return batch.take(sel)


class VecProject(VecNode):
    def __init__(self, op: ops.Project, child: VecNode):
        self.op = op
        self.child = child
        self.schema = op.schema
        self.expressions = [
            compile_or_fallback(expression, op._scope)
            for expression in op.expressions
        ]
        self.child_needed = _union_positions(
            zip(op.expressions, self.expressions), op._scope
        )

    def batch(self, ctx):
        batch = self.child.batch(ctx)
        cols = batch.columns
        n = batch.length
        out = [expression(cols, n, None, ctx) for expression in self.expressions]
        return Batch(self.schema, out, n)


class VecHashJoin(VecNode):
    """Batch-building hash join mirroring :class:`operators.HashJoin`.

    Key columns are computed vectorized on both sides, the hash table maps
    normalised key tuples to build positions, and the output batch is
    assembled by index gather (``-1`` = outer-join NULL padding) in exactly
    the row engine's emission order.
    """

    def __init__(self, op: ops.HashJoin, left: VecNode, right: VecNode):
        self.op = op
        self.left = left
        self.right = right
        self.schema = op.schema
        self.left_keys = [
            compile_or_fallback(key, op._left_scope) for key in op.left_keys
        ]
        self.right_keys = [
            compile_or_fallback(key, op._right_scope) for key in op.right_keys
        ]
        self.residual = (
            compile_or_fallback(op.residual, op._scope)
            if op.residual is not None
            else None
        )
        self.left_key_positions = _union_positions(
            zip(op.left_keys, self.left_keys), op._left_scope
        )
        self.right_key_positions = _union_positions(
            zip(op.right_keys, self.right_keys), op._right_scope
        )
        if op.residual is None:
            self.residual_positions: set[int] | None = set()
        else:
            self.residual_positions = _union_positions(
                [(op.residual, self.residual)], op._scope
            )
        #: output positions the consumer reads (set by _apply_pruning;
        #: None = all).
        self.needed: set[int] | None = None

    def batch(self, ctx):
        op = self.op
        left_batch = self.left.batch(ctx)
        right_batch = self.right.batch(ctx)
        if op.build_left:
            build_batch, build_keys = left_batch, self.left_keys
            probe_batch, probe_keys = right_batch, self.right_keys
        else:
            build_batch, build_keys = right_batch, self.right_keys
            probe_batch, probe_keys = left_batch, self.left_keys

        group_key = ops._group_key_value
        build_n = build_batch.length
        build_cols = [
            key(build_batch.columns, build_n, None, ctx) for key in build_keys
        ]
        probe_n = probe_batch.length
        probe_cols = [
            key(probe_batch.columns, probe_n, None, ctx) for key in probe_keys
        ]

        hash_table: dict = {}
        single_key = len(build_cols) == 1
        if single_key:
            # Scalar keys: no per-row tuple building.  Ints/floats are
            # normalised inline (bool/Decimal/rest via _group_key_value,
            # keeping the row engine's cross-type equality).
            for position, value in enumerate(build_cols[0]):
                if value is None:
                    continue  # NULL keys never join
                kind = type(value)
                hashed = (
                    ("n", float(value))
                    if kind is int or kind is float
                    else group_key(value)
                )
                bucket = hash_table.get(hashed)
                if bucket is None:
                    hash_table[hashed] = [position]
                else:
                    bucket.append(position)
        else:
            for position in range(build_n):
                key = tuple(col[position] for col in build_cols)
                if any(value is None for value in key):
                    continue  # NULL keys never join
                hashed = tuple(group_key(value) for value in key)
                bucket = hash_table.get(hashed)
                if bucket is None:
                    hash_table[hashed] = [position]
                else:
                    bucket.append(position)

        # One bucket lookup per probe row (None = NULL key or no match).
        get = hash_table.get
        if single_key:
            buckets = [
                get(
                    ("n", float(value))
                    if type(value) is int or type(value) is float
                    else group_key(value)
                )
                if value is not None
                else None
                for value in probe_cols[0]
            ]
        else:
            buckets = []
            append_bucket = buckets.append
            for i in range(probe_n):
                key = tuple(col[i] for col in probe_cols)
                if any(value is None for value in key):
                    append_bucket(None)
                else:
                    append_bucket(get(tuple(group_key(value) for value in key)))

        left_outer = not op.build_left and op.join_type in (
            ast.JoinType.LEFT,
            ast.JoinType.FULL,
        )
        right_outer = not op.build_left and op.join_type in (
            ast.JoinType.RIGHT,
            ast.JoinType.FULL,
        )
        build_matched = bytearray(build_n) if right_outer else None
        out_probe: list[int] = []
        out_build: list[int] = []
        null_build = False  # -1 entries present in out_build (LEFT/FULL pad)
        null_probe = False  # -1 entries present in out_probe (RIGHT/FULL pad)
        append_probe = out_probe.append
        append_build = out_build.append

        if self.residual is None:
            if not left_outer and build_matched is None:
                # Inner join: no padding or matched bookkeeping.
                for i, bucket in enumerate(buckets):
                    if bucket is not None:
                        if len(bucket) == 1:
                            append_probe(i)
                            append_build(bucket[0])
                        else:
                            for position in bucket:
                                append_probe(i)
                                append_build(position)
            else:
                for i, bucket in enumerate(buckets):
                    if bucket is not None:
                        for position in bucket:
                            append_probe(i)
                            append_build(position)
                            if build_matched is not None:
                                build_matched[position] = 1
                    elif left_outer:
                        append_probe(i)
                        append_build(-1)
                        null_build = True
        else:
            # Collect candidate pairs, run the residual over them as one
            # gathered batch, then assemble output in probe order.
            cand_probe: list[int] = []
            cand_build: list[int] = []
            probe_counts = [0] * probe_n
            for i, bucket in enumerate(buckets):
                if bucket is not None:
                    for position in bucket:
                        cand_probe.append(i)
                        cand_build.append(position)
                    probe_counts[i] = len(bucket)
            verdicts: list[bool] = []
            if cand_probe:
                combined = self._combined_batch(
                    probe_batch, build_batch, cand_probe, cand_build
                )
                verdicts = [
                    as_bool(v) is True
                    for v in self.residual(
                        combined.columns, combined.length, None, ctx
                    )
                ]
            cursor = 0
            for i in range(probe_n):
                matched = False
                for _ in range(probe_counts[i]):
                    if verdicts[cursor]:
                        position = cand_build[cursor]
                        append_probe(i)
                        append_build(position)
                        if build_matched is not None:
                            build_matched[position] = 1
                        matched = True
                    cursor += 1
                if not matched and left_outer:
                    append_probe(i)
                    append_build(-1)
                    null_build = True

        if build_matched is not None:
            for position in range(build_n):
                if not build_matched[position]:
                    append_probe(-1)
                    append_build(position)
                    null_probe = True

        if op.build_left:
            left_idx, right_idx = out_build, out_probe
            left_pad, right_pad = null_build, null_probe
        else:
            left_idx, right_idx = out_probe, out_build
            left_pad, right_pad = null_probe, null_build

        needed = self.needed
        left_width = len(left_batch.columns)
        columns: list = []
        for offset, col in enumerate(left_batch.columns):
            if col is None or (needed is not None and offset not in needed):
                columns.append(None)
            elif left_pad:
                columns.append(_gather(col, left_idx))
            else:
                columns.append(ColumnBlock([col[i] for i in left_idx]))
        for offset, col in enumerate(right_batch.columns, start=left_width):
            if col is None or (needed is not None and offset not in needed):
                columns.append(None)
            elif right_pad:
                columns.append(_gather(col, right_idx))
            else:
                columns.append(ColumnBlock([col[i] for i in right_idx]))
        return Batch(self.schema, columns, len(out_probe))

    def _combined_batch(self, probe_batch, build_batch, probe_idx, build_idx):
        # Output schema is always left ++ right regardless of build side.
        # Only the columns the residual actually reads are gathered.
        if self.op.build_left:
            left_batch, left_idx = build_batch, build_idx
            right_batch, right_idx = probe_batch, probe_idx
        else:
            left_batch, left_idx = probe_batch, probe_idx
            right_batch, right_idx = build_batch, build_idx
        positions = self.residual_positions
        left_width = len(left_batch.columns)
        columns: list = []
        for offset, col in enumerate(left_batch.columns):
            if col is not None and (positions is None or offset in positions):
                columns.append(ColumnBlock([col[i] for i in left_idx]))
            else:
                columns.append(None)
        for offset, col in enumerate(right_batch.columns, start=left_width):
            if col is not None and (positions is None or offset in positions):
                columns.append(ColumnBlock([col[i] for i in right_idx]))
            else:
                columns.append(None)
        return Batch(self.op.schema, columns, len(probe_idx))


def _accumulate_column(accumulator, column, indices):
    """Feed ``column[indices]`` into ``accumulator`` without a method call
    per row for the common accumulator types.  Each branch is the exact
    fold the accumulator's ``add`` performs (same NULL skips, same
    ``+``/``compare_values`` semantics, same within-group row order)."""
    kind = type(accumulator)
    if kind is ops._Sum and not accumulator.distinct:
        total = accumulator.total
        for i in indices:
            value = column[i]
            if value is not None:
                total = value if total is None else total + value
        accumulator.total = total
    elif kind is ops._Count and not accumulator.distinct:
        count = 0
        for i in indices:
            if column[i] is not None:
                count += 1
        accumulator.count += count
    elif kind is ops._Avg and not accumulator.distinct:
        total = accumulator.total
        count = accumulator.count
        for i in indices:
            value = column[i]
            if value is not None:
                total = value if total is None else total + value
                count += 1
        accumulator.total = total
        accumulator.count = count
    elif kind is ops._Min:
        best = accumulator.best
        for i in indices:
            value = column[i]
            if value is not None and (
                best is None or compare_values(value, best) < 0
            ):
                best = value
        accumulator.best = best
    elif kind is ops._Max:
        best = accumulator.best
        for i in indices:
            value = column[i]
            if value is not None and (
                best is None or compare_values(value, best) > 0
            ):
                best = value
        accumulator.best = best
    else:
        add = accumulator.add
        for i in indices:
            add(column[i])


class VecHashAggregate(VecNode):
    """Grouping/aggregation over pre-computed key and argument columns."""

    #: marker: aggregate wants the whole input row (COUNT with a bare
    #: non-star argument list — the row engine passes the row through).
    _ROW_ARG = object()

    def __init__(self, op: ops.HashAggregate, child: VecNode):
        self.op = op
        self.child = child
        self.schema = op.schema
        self.group_exprs = [
            compile_or_fallback(expression, op._scope)
            for expression in op.group_exprs
        ]
        self.agg_args = []
        for call in op.aggregates:
            if call.args and not isinstance(call.args[0], ast.Star):
                self.agg_args.append(compile_or_fallback(call.args[0], op._scope))
            elif isinstance(ops._make_accumulator(call), ops._CountStar):
                self.agg_args.append(None)  # COUNT(*): value unused
            else:
                self.agg_args.append(self._ROW_ARG)
        needed = _union_positions(
            zip(op.group_exprs, self.group_exprs), op._scope
        )
        if needed is not None:
            for call, compiled in zip(op.aggregates, self.agg_args):
                if compiled is None:
                    continue  # COUNT(*) reads nothing
                if compiled is self._ROW_ARG:
                    needed = None  # wants whole input rows
                    break
                extra = _union_positions([(call.args[0], compiled)], op._scope)
                if extra is None:
                    needed = None
                    break
                needed |= extra
        self.child_needed = needed

    def batch(self, ctx):
        op = self.op
        batch = self.child.batch(ctx)
        n = batch.length
        cols = batch.columns
        group_key = ops._group_key_value
        make_accumulator = ops._make_accumulator
        group_cols = [g(cols, n, None, ctx) for g in self.group_exprs]
        agg_cols = [
            arg(cols, n, None, ctx) if callable(arg) else arg
            for arg in self.agg_args
        ]
        aggregates = op.aggregates

        # Partition row indices by group key (first-occurrence order — the
        # row engine's dict insertion order), then fold each aggregate
        # column group-at-a-time.
        slots: dict = {}
        order: list[tuple[tuple, list[int]]] = []
        if not group_cols:
            if n:
                order.append(((), list(range(n))))
        elif len(group_cols) == 1:
            for i, value in enumerate(group_cols[0]):
                kind = type(value)
                key = (
                    ("n", float(value))
                    if kind is int or kind is float
                    else group_key(value)
                )
                slot = slots.get(key)
                if slot is None:
                    slots[key] = len(order)
                    order.append(((value,), [i]))
                else:
                    order[slot][1].append(i)
        else:
            for i in range(n):
                group_values = tuple(col[i] for col in group_cols)
                key = tuple(group_key(v) for v in group_values)
                slot = slots.get(key)
                if slot is None:
                    slots[key] = len(order)
                    order.append((group_values, [i]))
                else:
                    order[slot][1].append(i)

        out_rows: list[tuple] = []
        if not order and not op.group_exprs:
            accumulators = [make_accumulator(call) for call in aggregates]
            out_rows.append(tuple(a.result() for a in accumulators))
        else:
            row_arg = self._ROW_ARG
            for group_values, indices in order:
                accumulators = [make_accumulator(call) for call in aggregates]
                for accumulator, column in zip(accumulators, agg_cols):
                    if column is None:  # COUNT(*): one per row, value unused
                        accumulator.count += len(indices)
                    elif column is row_arg:
                        add = accumulator.add
                        for i in indices:
                            add(batch.row(i))
                    else:
                        _accumulate_column(accumulator, column, indices)
                out_rows.append(
                    group_values + tuple(a.result() for a in accumulators)
                )
        return Batch.from_rows(self.schema, out_rows)


class _VecRows(ops.Operator):
    """Row-operator adapter over a vectorized subtree, so row-at-a-time
    parents (Sort, Limit, nested-loop joins, set ops) keep working."""

    def __init__(self, vec: VecNode):
        self.vec = vec
        self.schema = vec.schema

    def rows(self, ctx):
        return iter(self.vec.batch(ctx).to_rows())

    def _describe(self):
        return f"Vectorized({type(self.vec).__name__})"


# ---------------------------------------------------------------------------
# Plan translation
# ---------------------------------------------------------------------------


def vectorize(plan: ops.Operator) -> VecNode:
    """Translate a row-operator tree into a vectorized tree.

    Hot operators (Filter, Project, HashJoin, HashAggregate, Rename) get
    dedicated batch implementations; everything else keeps its row
    implementation but has vectorized children bridged in via _VecRows.
    """
    kind = type(plan)
    if kind is ops.Filter:
        return VecFilter(plan, vectorize(plan.child))
    if kind is ops.Project:
        return VecProject(plan, vectorize(plan.child))
    if kind is ops.HashJoin:
        return VecHashJoin(plan, vectorize(plan.left), vectorize(plan.right))
    if kind is ops.HashAggregate:
        return VecHashAggregate(plan, vectorize(plan.child))
    if kind is ops.Rename:
        return VecRename(plan, vectorize(plan.child))
    _vectorize_children(plan)
    return VecMaterialize(plan)


def _vectorize_children(op: ops.Operator) -> None:
    if isinstance(op, (ops.SeqScan, ops.IndexScan, ops.ValuesScan)):
        return
    for attr in ("child", "left", "right"):
        child = getattr(op, attr, None)
        if isinstance(child, ops.Operator):
            sub = vectorize(child)
            if type(sub) is VecMaterialize:
                # No vectorized operator underneath; keep the original
                # child (its own subtree was already processed).
                setattr(op, attr, sub.op)
            else:
                _apply_pruning(sub, None)
                setattr(op, attr, _VecRows(sub))


def _apply_pruning(node: VecNode, needed: set[int] | None) -> None:
    """Push "which output positions does the consumer read" down the vec
    tree so joins skip gathering columns nobody will look at.  ``None``
    means "every column" — the root, row-operator bridges, and anything
    downstream of a per-row fallback all require full rows."""
    if isinstance(node, VecProject):
        _apply_pruning(node.child, node.child_needed)
    elif isinstance(node, VecFilter):
        mine = node.predicate_positions
        if needed is None or mine is None:
            _apply_pruning(node.child, None)
        else:
            _apply_pruning(node.child, needed | mine)
    elif isinstance(node, VecRename):
        _apply_pruning(node.child, needed)
    elif isinstance(node, VecHashAggregate):
        _apply_pruning(node.child, node.child_needed)
    elif isinstance(node, VecHashJoin):
        node.needed = needed
        left_keys = node.left_key_positions
        right_keys = node.right_key_positions
        residual = node.residual_positions
        if (
            needed is None
            or left_keys is None
            or right_keys is None
            or residual is None
        ):
            _apply_pruning(node.left, None)
            _apply_pruning(node.right, None)
        else:
            wanted = needed | residual
            left_width = len(node.left.schema)
            _apply_pruning(
                node.left, {p for p in wanted if p < left_width} | left_keys
            )
            _apply_pruning(
                node.right,
                {p - left_width for p in wanted if p >= left_width}
                | right_keys,
            )
    # VecMaterialize: row operators build full rows regardless.


def run_vectorized(plan: ops.Operator, ctx: ops.ExecContext) -> list[tuple]:
    """Execute a planned query batch-at-a-time; returns the result rows."""
    vec = vectorize(plan)
    if type(vec) is VecMaterialize:
        return list(vec.op.rows(ctx))
    _apply_pruning(vec, None)
    return vec.batch(ctx).to_rows()
