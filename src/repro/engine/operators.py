"""Volcano-style physical operators for the local execution engine.

Every operator exposes:

- ``schema``: list of :class:`~repro.engine.expressions.OutputColumn`
- ``rows(ctx)``: iterator of result tuples

``ctx`` is an :class:`ExecContext` carrying the expression-evaluation
environment, the stack of outer rows (for correlated subqueries), and row
counters used by the benchmarks to account work.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from decimal import Decimal

from repro.errors import ExecutionError
from repro.engine.expressions import (
    EvalEnv,
    ExpressionEvaluator,
    OutputColumn,
    Scope,
    as_bool,
    compare_values,
)
from repro.sql import ast
from repro.storage.table import Table
from repro.storage.types import null_first_key


@dataclass
class ExecContext:
    """Runtime context threaded through every operator."""

    env: EvalEnv = field(default_factory=EvalEnv)
    outer_rows: tuple[tuple, ...] = ()
    rows_scanned: int = 0
    rows_emitted: int = 0
    #: When set (a :class:`repro.concurrency.Snapshot`), scans read the
    #: snapshot's visible versions instead of the live heap — lock-free.
    snapshot: object | None = None

    def child(self, extra_outer: tuple) -> "ExecContext":
        clone = ExecContext(
            self.env,
            (extra_outer, *self.outer_rows),
            snapshot=self.snapshot,
        )
        return clone


class Operator:
    """Base class; subclasses set ``schema`` and implement ``rows``."""

    schema: list[OutputColumn]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        raise NotImplementedError

    def scope(self, outer: Scope | None = None) -> Scope:
        return Scope(self.schema, outer)

    def explain(self, depth: int = 0) -> str:
        """Readable plan tree, used by EXPLAIN in the tools layer."""
        lines = [("  " * depth) + self._describe()]
        for child in self._children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self) -> list["Operator"]:
        return []


# ---------------------------------------------------------------------------
# Leaf operators
# ---------------------------------------------------------------------------


class SeqScan(Operator):
    """Full scan of a stored table under a binding name."""

    def __init__(self, table: Table, binding: str | None = None):
        self.table = table
        self.binding = binding or table.name
        self.schema = [
            OutputColumn(column.name, self.binding)
            for column in table.schema.columns
        ]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        if ctx.snapshot is not None:
            for _, row in ctx.snapshot.visible_items(self.table):
                ctx.rows_scanned += 1
                yield row
            return
        for _, row in self.table.scan():
            ctx.rows_scanned += 1
            yield row

    def _describe(self) -> str:
        return f"SeqScan({self.table.name} AS {self.binding})"


class IndexScan(Operator):
    """Point/range scan through an ordered or hash index.

    ``equal_key`` takes precedence over the range bounds.  Bound values are
    constants (the planner only plants an IndexScan for constant predicates).
    """

    def __init__(
        self,
        table: Table,
        index_name: str,
        binding: str | None = None,
        equal_key: tuple | None = None,
        low: tuple | None = None,
        high: tuple | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ):
        self.table = table
        self.index = table.indexes[index_name]
        self.binding = binding or table.name
        self.equal_key = equal_key
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.schema = [
            OutputColumn(column.name, self.binding)
            for column in table.schema.columns
        ]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        if ctx.snapshot is not None:
            yield from self._snapshot_rows(ctx, ctx.snapshot)
            return
        # Postings are kept sorted at insert time, so both paths read RIDs
        # straight through without a per-lookup sort.
        if self.equal_key is not None:
            for rid in self.index.sorted_rids(self.equal_key):
                ctx.rows_scanned += 1
                yield self.table.rows[rid]
            return
        for _, rids in self._range_postings():
            for rid in rids:
                ctx.rows_scanned += 1
                yield self.table.rows[rid]

    def _range_postings(self):
        from repro.storage.index import OrderedIndex

        if not isinstance(self.index, OrderedIndex):
            raise ExecutionError(
                f"index {self.index.name!r} does not support range scans"
            )
        return self.index.range_scan_sorted(
            self.low, self.high, self.low_inclusive, self.high_inclusive
        )

    def _snapshot_rows(
        self, ctx: ExecContext, snapshot
    ) -> Iterator[tuple]:
        """Index scan through a read view.

        The index reflects the *live* heap (latest committed plus any
        uncommitted writer), so RIDs whose state may postdate the snapshot
        — ``snapshot.changed_rids`` — are excluded from the index walk and
        re-checked one by one against their visible values.  The set is
        small (bounded by churn since the oldest active snapshot), so the
        scan keeps its index cost profile.
        """
        changed = snapshot.changed_rids(self.table)
        if self.equal_key is not None:
            candidates = self.index.sorted_rids(self.equal_key)
        else:
            candidates = [
                rid for _, rids in self._range_postings() for rid in rids
            ]
        for rid in candidates:
            if rid in changed:
                continue
            row = self.table.rows.get(rid)
            if row is None:  # pragma: no cover - concurrent change races
                continue
            ctx.rows_scanned += 1
            yield row
        if not changed:
            return
        positions = [
            self.table.schema.column_index(c) for c in self.index.columns
        ]
        for rid in sorted(changed):
            row = snapshot.visible_get(self.table, rid)
            if row is None:
                continue
            key = tuple(row[p] for p in positions)
            if not self._key_matches(key):
                continue
            ctx.rows_scanned += 1
            yield row

    def _key_matches(self, key: tuple) -> bool:
        """Equality/range predicate on a recomputed key (mirrors the
        ordered index's prefix comparison semantics)."""
        from repro.storage.index import _key_has_null, _sort_key

        if self.equal_key is not None:
            return key == self.equal_key
        if _key_has_null(key):
            return False
        sortable = _sort_key(key)
        if self.low is not None:
            low = _sort_key(self.low)
            prefix = sortable[: len(low)]
            if prefix < low or (not self.low_inclusive and prefix <= low):
                return False
        if self.high is not None:
            high = _sort_key(self.high)
            prefix = sortable[: len(high)]
            if prefix > high or (not self.high_inclusive and prefix >= high):
                return False
        return True

    def _describe(self) -> str:
        if self.equal_key is not None:
            detail = f"= {self.equal_key!r}"
        else:
            detail = f"range {self.low!r}..{self.high!r}"
        return (
            f"IndexScan({self.table.name} AS {self.binding} "
            f"USING {self.index.name} {detail})"
        )


class ValuesScan(Operator):
    """Materialised constant rows (used for VALUES and shipped fragments)."""

    def __init__(self, schema: list[OutputColumn], rows: list[tuple]):
        self.schema = list(schema)
        self._rows = rows

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        for row in self._rows:
            ctx.rows_scanned += 1
            yield row

    def _describe(self) -> str:
        return f"ValuesScan({len(self._rows)} rows)"


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------


class Filter(Operator):
    def __init__(
        self,
        child: Operator,
        predicate: ast.Expression,
        scope: Scope | None = None,
    ):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self._scope = scope or Scope(child.schema)

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        evaluator = ExpressionEvaluator(self._scope, ctx.env)
        for row in self.child.rows(ctx):
            if as_bool(evaluator.eval(self.predicate, row, ctx.outer_rows)) is True:
                yield row

    def _describe(self) -> str:
        from repro.sql.printer import expression_to_sql

        return f"Filter({expression_to_sql(self.predicate)})"

    def _children(self) -> list[Operator]:
        return [self.child]


class Project(Operator):
    def __init__(
        self,
        child: Operator,
        expressions: list[ast.Expression],
        names: list[str],
        scope: Scope | None = None,
    ):
        if len(expressions) != len(names):
            raise ExecutionError("projection names/expressions mismatch")
        self.child = child
        self.expressions = expressions
        self.schema = [OutputColumn(name) for name in names]
        self._scope = scope or Scope(child.schema)

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        evaluator = ExpressionEvaluator(self._scope, ctx.env)
        for row in self.child.rows(ctx):
            yield tuple(
                evaluator.eval(expression, row, ctx.outer_rows)
                for expression in self.expressions
            )

    def _describe(self) -> str:
        return f"Project({', '.join(c.name for c in self.schema)})"

    def _children(self) -> list[Operator]:
        return [self.child]


class Limit(Operator):
    def __init__(self, child: Operator, limit: int | None, offset: int | None):
        self.child = child
        self.limit = limit
        self.offset = offset or 0
        self.schema = child.schema

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        produced = 0
        skipped = 0
        for row in self.child.rows(ctx):
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield row

    def _describe(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"

    def _children(self) -> list[Operator]:
        return [self.child]


class Sort(Operator):
    def __init__(
        self,
        child: Operator,
        keys: list[ast.Expression],
        ascending: list[bool],
        scope: Scope | None = None,
    ):
        self.child = child
        self.keys = keys
        self.ascending = ascending
        self.schema = child.schema
        self._scope = scope or Scope(child.schema)

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        evaluator = ExpressionEvaluator(self._scope, ctx.env)
        materialised = list(self.child.rows(ctx))

        def key_tuple(row: tuple) -> tuple:
            return tuple(
                null_first_key(evaluator.eval(key, row, ctx.outer_rows))
                for key in self.keys
            )

        decorated = [(key_tuple(row), position, row)
                     for position, row in enumerate(materialised)]
        # Stable multi-key sort with mixed directions: sort by each key from
        # least to most significant.
        for key_index in range(len(self.keys) - 1, -1, -1):
            reverse = not self.ascending[key_index]
            decorated.sort(key=lambda item: item[0][key_index], reverse=reverse)
        for _, _, row in decorated:
            yield row

    def _describe(self) -> str:
        return f"Sort({len(self.keys)} keys)"

    def _children(self) -> list[Operator]:
        return [self.child]


class Distinct(Operator):
    def __init__(self, child: Operator):
        self.child = child
        self.schema = child.schema

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child.rows(ctx):
            key = tuple(_group_key_value(v) for v in row)
            if key not in seen:
                seen.add(key)
                yield row

    def _children(self) -> list[Operator]:
        return [self.child]


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


def _null_row(schema: list[OutputColumn]) -> tuple:
    return (None,) * len(schema)


class NestedLoopJoin(Operator):
    """General join supporting arbitrary conditions and all join types."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        join_type: ast.JoinType = ast.JoinType.INNER,
        condition: ast.Expression | None = None,
        scope: Scope | None = None,
    ):
        self.left = left
        self.right = right
        self.join_type = join_type
        self.condition = condition
        self.schema = left.schema + right.schema
        self._scope = scope or Scope(self.schema)

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        evaluator = ExpressionEvaluator(self._scope, ctx.env)
        right_rows = list(self.right.rows(ctx))
        right_matched = [False] * len(right_rows)
        join_type = self.join_type

        for left_row in self.left.rows(ctx):
            left_matched = False
            for position, right_row in enumerate(right_rows):
                combined = left_row + right_row
                if self.condition is not None:
                    verdict = as_bool(
                        evaluator.eval(self.condition, combined, ctx.outer_rows)
                    )
                    if verdict is not True:
                        continue
                left_matched = True
                right_matched[position] = True
                yield combined
            if not left_matched and join_type in (
                ast.JoinType.LEFT,
                ast.JoinType.FULL,
            ):
                yield left_row + _null_row(self.right.schema)
        if join_type in (ast.JoinType.RIGHT, ast.JoinType.FULL):
            left_nulls = _null_row(self.left.schema)
            for position, right_row in enumerate(right_rows):
                if not right_matched[position]:
                    yield left_nulls + right_row

    def _describe(self) -> str:
        return f"NestedLoopJoin({self.join_type.name})"

    def _children(self) -> list[Operator]:
        return [self.left, self.right]


class HashJoin(Operator):
    """Equi-join: builds a hash table on the right input.

    ``left_keys``/``right_keys`` are expressions over the respective inputs.
    ``residual`` is an extra non-equi condition checked on each match.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: list[ast.Expression],
        right_keys: list[ast.Expression],
        join_type: ast.JoinType = ast.JoinType.INNER,
        residual: ast.Expression | None = None,
        scope: Scope | None = None,
        build_left: bool = False,
    ):
        if join_type is ast.JoinType.CROSS:
            raise ExecutionError("HashJoin cannot implement CROSS JOIN")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.join_type = join_type
        self.residual = residual
        #: Build the hash table on the left input instead (INNER only);
        #: the output schema stays left ++ right either way.
        self.build_left = build_left and join_type is ast.JoinType.INNER
        self.schema = left.schema + right.schema
        self._scope = scope or Scope(self.schema)
        self._left_scope = Scope(left.schema)
        self._right_scope = Scope(right.schema)

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        left_eval = ExpressionEvaluator(self._left_scope, ctx.env)
        right_eval = ExpressionEvaluator(self._right_scope, ctx.env)
        combined_eval = ExpressionEvaluator(self._scope, ctx.env)

        if self.build_left:
            build_op, build_eval, build_keys = (
                self.left, left_eval, self.left_keys,
            )
            probe_op, probe_eval, probe_keys = (
                self.right, right_eval, self.right_keys,
            )
        else:
            build_op, build_eval, build_keys = (
                self.right, right_eval, self.right_keys,
            )
            probe_op, probe_eval, probe_keys = (
                self.left, left_eval, self.left_keys,
            )

        hash_table: dict[tuple, list[int]] = {}
        build_rows: list[tuple] = []
        for build_row in build_op.rows(ctx):
            key = tuple(
                build_eval.eval(k, build_row, ctx.outer_rows)
                for k in build_keys
            )
            build_rows.append(build_row)
            if any(value is None for value in key):
                continue  # NULL keys never join
            hash_table.setdefault(_hash_key(key), []).append(len(build_rows) - 1)

        build_matched = [False] * len(build_rows)

        for probe_row in probe_op.rows(ctx):
            key = tuple(
                probe_eval.eval(k, probe_row, ctx.outer_rows)
                for k in probe_keys
            )
            probe_matched = False
            if not any(value is None for value in key):
                for position in hash_table.get(_hash_key(key), ()):
                    if self.build_left:
                        combined = build_rows[position] + probe_row
                    else:
                        combined = probe_row + build_rows[position]
                    if self.residual is not None:
                        verdict = as_bool(
                            combined_eval.eval(
                                self.residual, combined, ctx.outer_rows
                            )
                        )
                        if verdict is not True:
                            continue
                    probe_matched = True
                    build_matched[position] = True
                    yield combined
            if not probe_matched and not self.build_left and self.join_type in (
                ast.JoinType.LEFT,
                ast.JoinType.FULL,
            ):
                yield probe_row + _null_row(self.right.schema)

        if not self.build_left and self.join_type in (
            ast.JoinType.RIGHT,
            ast.JoinType.FULL,
        ):
            left_nulls = _null_row(self.left.schema)
            for position, build_row in enumerate(build_rows):
                if not build_matched[position]:
                    yield left_nulls + build_row

    def _describe(self) -> str:
        side = "build=left" if self.build_left else "build=right"
        return (
            f"HashJoin({self.join_type.name}, {len(self.left_keys)} keys, "
            f"{side})"
        )

    def _children(self) -> list[Operator]:
        return [self.left, self.right]


def _hash_key(key: tuple) -> tuple:
    """Normalise numeric variants so 1, 1.0 and Decimal(1) hash together."""
    return tuple(_group_key_value(value) for value in key)


def _group_key_value(value: object) -> object:
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, Decimal):
        return ("n", float(value))
    if isinstance(value, (int, float)):
        return ("n", float(value))
    return value


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


class _Accumulator:
    def add(self, value: object) -> None:
        raise NotImplementedError

    def result(self) -> object:
        raise NotImplementedError


class _CountStar(_Accumulator):
    def __init__(self):
        self.count = 0

    def add(self, value: object) -> None:
        self.count += 1

    def result(self) -> object:
        return self.count


class _Count(_Accumulator):
    def __init__(self, distinct: bool):
        self.count = 0
        self.distinct = distinct
        self.seen: set = set()

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.distinct:
            key = _group_key_value(value)
            if key in self.seen:
                return
            self.seen.add(key)
        self.count += 1

    def result(self) -> object:
        return self.count


class _Sum(_Accumulator):
    def __init__(self, distinct: bool):
        self.total = None
        self.distinct = distinct
        self.seen: set = set()

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.distinct:
            key = _group_key_value(value)
            if key in self.seen:
                return
            self.seen.add(key)
        self.total = value if self.total is None else self.total + value

    def result(self) -> object:
        return self.total


class _Avg(_Accumulator):
    def __init__(self, distinct: bool):
        self.total = None
        self.count = 0
        self.distinct = distinct
        self.seen: set = set()

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.distinct:
            key = _group_key_value(value)
            if key in self.seen:
                return
            self.seen.add(key)
        self.total = value if self.total is None else self.total + value
        self.count += 1

    def result(self) -> object:
        if self.count == 0:
            return None
        return self.total / self.count


class _Min(_Accumulator):
    def __init__(self):
        self.best = None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.best is None or compare_values(value, self.best) < 0:
            self.best = value

    def result(self) -> object:
        return self.best


class _Max(_Accumulator):
    def __init__(self):
        self.best = None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.best is None or compare_values(value, self.best) > 0:
            self.best = value

    def result(self) -> object:
        return self.best


def _make_accumulator(call: ast.FunctionCall) -> _Accumulator:
    name = call.name.upper()
    if name == "COUNT":
        if call.args and isinstance(call.args[0], ast.Star):
            return _CountStar()
        return _Count(call.distinct)
    if name == "SUM":
        return _Sum(call.distinct)
    if name == "AVG":
        return _Avg(call.distinct)
    if name == "MIN":
        return _Min()
    if name == "MAX":
        return _Max()
    raise ExecutionError(f"unknown aggregate {name}")


class HashAggregate(Operator):
    """Grouping + aggregation.

    Output layout: group-by expressions first (one column each), then one
    column per aggregate call, in the order given.  The planner rewrites
    post-aggregation expressions (HAVING, projections, ORDER BY) to reference
    this layout.
    """

    def __init__(
        self,
        child: Operator,
        group_exprs: list[ast.Expression],
        aggregates: list[ast.FunctionCall],
        output_names: list[str] | None = None,
        scope: Scope | None = None,
    ):
        self.child = child
        self.group_exprs = group_exprs
        self.aggregates = aggregates
        names = output_names or (
            [f"g{i}" for i in range(len(group_exprs))]
            + [f"a{i}" for i in range(len(aggregates))]
        )
        self.schema = [OutputColumn(name) for name in names]
        self._scope = scope or Scope(child.schema)

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        evaluator = ExpressionEvaluator(self._scope, ctx.env)
        groups: dict[tuple, tuple[tuple, list[_Accumulator]]] = {}
        for row in self.child.rows(ctx):
            group_values = tuple(
                evaluator.eval(e, row, ctx.outer_rows) for e in self.group_exprs
            )
            key = tuple(_group_key_value(v) for v in group_values)
            entry = groups.get(key)
            if entry is None:
                entry = (
                    group_values,
                    [_make_accumulator(call) for call in self.aggregates],
                )
                groups[key] = entry
            _, accumulators = entry
            for call, accumulator in zip(self.aggregates, accumulators):
                if call.args and not isinstance(call.args[0], ast.Star):
                    value = evaluator.eval(call.args[0], row, ctx.outer_rows)
                else:
                    value = row  # COUNT(*): value unused
                accumulator.add(value)
        if not groups and not self.group_exprs:
            # Global aggregate over an empty input still yields one row.
            accumulators = [_make_accumulator(call) for call in self.aggregates]
            yield tuple(a.result() for a in accumulators)
            return
        for group_values, accumulators in groups.values():
            yield group_values + tuple(a.result() for a in accumulators)

    def _describe(self) -> str:
        return (
            f"HashAggregate({len(self.group_exprs)} group keys, "
            f"{len(self.aggregates)} aggregates)"
        )

    def _children(self) -> list[Operator]:
        return [self.child]


# ---------------------------------------------------------------------------
# Set operations
# ---------------------------------------------------------------------------


class SetOp(Operator):
    def __init__(self, kind: ast.SetOpKind, left: Operator, right: Operator):
        if len(left.schema) != len(right.schema):
            raise ExecutionError(
                f"{kind.value} inputs have different column counts"
            )
        self.kind = kind
        self.left = left
        self.right = right
        self.schema = [OutputColumn(c.name) for c in left.schema]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        kind = self.kind
        if kind is ast.SetOpKind.UNION_ALL:
            yield from self.left.rows(ctx)
            yield from self.right.rows(ctx)
            return
        if kind is ast.SetOpKind.UNION:
            seen: set[tuple] = set()
            for row in self.left.rows(ctx):
                key = _hash_key(row)
                if key not in seen:
                    seen.add(key)
                    yield row
            for row in self.right.rows(ctx):
                key = _hash_key(row)
                if key not in seen:
                    seen.add(key)
                    yield row
            return
        right_keys = {_hash_key(row) for row in self.right.rows(ctx)}
        emitted: set[tuple] = set()
        if kind is ast.SetOpKind.INTERSECT:
            for row in self.left.rows(ctx):
                key = _hash_key(row)
                if key in right_keys and key not in emitted:
                    emitted.add(key)
                    yield row
            return
        if kind is ast.SetOpKind.EXCEPT:
            for row in self.left.rows(ctx):
                key = _hash_key(row)
                if key not in right_keys and key not in emitted:
                    emitted.add(key)
                    yield row
            return
        raise ExecutionError(f"unknown set operation {kind}")  # pragma: no cover

    def _describe(self) -> str:
        return f"SetOp({self.kind.value})"

    def _children(self) -> list[Operator]:
        return [self.left, self.right]


class Rename(Operator):
    """Re-binds a child's output columns under a new binding/alias."""

    def __init__(self, child: Operator, binding: str, names: list[str] | None = None):
        self.child = child
        source_names = names or [c.name for c in child.schema]
        self.schema = [OutputColumn(name, binding) for name in source_names]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        return self.child.rows(ctx)

    def _describe(self) -> str:
        binding = self.schema[0].binding if self.schema else "?"
        return f"Rename({binding})"

    def _children(self) -> list[Operator]:
        return [self.child]
