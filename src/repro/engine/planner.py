"""Rule-based planner for one component database.

Translates a parsed query into a tree of physical operators from
:mod:`repro.engine.operators`.  The planner applies the classic heuristics a
1990s local optimizer would:

- selection pushdown to the lowest operator that can evaluate it
- index selection for constant equality/range predicates
- hash joins for equi-join conjuncts, greedy join ordering for implicit
  (comma-separated) joins, nested loops as the fallback
- aggregate rewrite: post-aggregation expressions are rewritten to reference
  the aggregate operator's output columns

Correlated subqueries are supported by planning with a parent
:class:`~repro.engine.expressions.Scope`; the executor supplies outer rows at
runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CatalogError, ExecutionError
from repro.engine import operators as ops
from repro.engine.expressions import OutputColumn, Scope
from repro.sql import ast
from repro.storage.catalog import Catalog


class _RecordingScope(Scope):
    """Wraps an outer scope and records whether it was ever consulted.

    Used to detect correlated subqueries: if planning (or evaluation setup)
    resolves any column through the parent, the subquery result cannot be
    cached across outer rows.
    """

    def __init__(self, inner: Scope):
        super().__init__([], parent=inner)
        self.consulted = False

    def resolve(self, table: str | None, name: str) -> tuple[int, int]:
        depth, position = self.parent.resolve(table, name)  # may raise
        self.consulted = True
        # Collapse our empty frame: we occupy depth 0 with no columns, so a
        # parent hit at depth d must surface as depth d (not d+1) relative to
        # the subquery scope that has us as parent... the caller adds 1.
        return depth, position


@dataclass
class _Relation:
    """A planned FROM-clause item and the bindings it provides."""

    op: ops.Operator
    bindings: frozenset[str]


class LocalPlanner:
    """Plans queries against one :class:`~repro.storage.catalog.Catalog`."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def plan_query(
        self, query: ast.Query, outer: Scope | None = None
    ) -> ops.Operator:
        if isinstance(query, ast.SetOperation):
            return self._plan_set_operation(query, outer)
        return self._plan_select(query, outer)

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------

    def _plan_set_operation(
        self, query: ast.SetOperation, outer: Scope | None
    ) -> ops.Operator:
        left = self.plan_query(query.left, outer)
        right = self.plan_query(query.right, outer)
        plan: ops.Operator = ops.SetOp(query.kind, left, right)
        if query.order_by:
            scope = Scope(plan.schema, outer)
            keys, ascending = self._resolve_order_keys(
                query.order_by, plan.schema, None
            )
            plan = ops.Sort(plan, keys, ascending, scope)
        if query.limit is not None or query.offset is not None:
            plan = ops.Limit(plan, query.limit, query.offset)
        return plan

    # ------------------------------------------------------------------
    # SELECT blocks
    # ------------------------------------------------------------------

    def _plan_select(self, select: ast.Select, outer: Scope | None) -> ops.Operator:
        # ------------------------------------------------------ FROM + WHERE
        conjuncts = ast.split_conjuncts(select.where)
        if select.from_clause:
            input_op, remaining = self._plan_from(select.from_clause, conjuncts, outer)
        else:
            # SELECT without FROM: single empty row.
            input_op = ops.ValuesScan([], [()])
            remaining = conjuncts
        input_scope = Scope(input_op.schema, outer)
        if remaining:
            input_op = ops.Filter(input_op, ast.conjoin(remaining), input_scope)

        # ------------------------------------------------------ projections
        items = self._expand_stars(select.items, input_op.schema)
        output_names = [item.output_name for item in items]

        needs_aggregate = bool(select.group_by) or any(
            ast.contains_aggregate(item.expression) for item in items
        ) or (select.having is not None and ast.contains_aggregate(select.having))

        order_items = self._normalise_order_items(select.order_by, items)

        if needs_aggregate:
            plan, scope, items, having, order_items = self._plan_aggregate(
                input_op, input_scope, select, items, order_items, outer
            )
            if having is not None:
                plan = ops.Filter(plan, having, scope)
        else:
            if select.having is not None:
                raise ExecutionError("HAVING requires GROUP BY or aggregates")
            plan, scope = input_op, input_scope

        # ------------------------------------------------------ ORDER/DISTINCT
        if select.distinct:
            plan = ops.Project(
                plan, [item.expression for item in items], output_names, scope
            )
            plan = ops.Distinct(plan)
            if order_items:
                # With DISTINCT the sort keys must be output columns; map
                # expressions matching a projection back to its output name.
                keys: list[ast.Expression] = []
                ascending: list[bool] = []
                for order in order_items:
                    expression = order.expression
                    for position, item in enumerate(items):
                        if expression == item.expression:
                            expression = ast.ColumnRef(output_names[position])
                            break
                    keys.append(expression)
                    ascending.append(order.ascending)
                out_scope = Scope(plan.schema, outer)
                plan = ops.Sort(plan, keys, ascending, out_scope)
        elif order_items:
            # Extended projection: visible outputs plus hidden sort keys.
            # Internal names are positional so duplicate/unnamed output
            # columns (e.g. two 'ename's in a self join) stay unambiguous.
            sort_exprs = [item.expression for item in order_items]
            extended_exprs = [item.expression for item in items] + sort_exprs
            visible_names = [f"__o{i}" for i in range(len(items))]
            hidden_names = [f"__sort{i}" for i in range(len(sort_exprs))]
            plan = ops.Project(
                plan, extended_exprs, visible_names + hidden_names, scope
            )
            extended_scope = Scope(plan.schema, outer)
            keys = [
                ast.ColumnRef(name) for name in hidden_names
            ]
            ascending = [item.ascending for item in order_items]
            plan = ops.Sort(plan, keys, ascending, extended_scope)
            visible = [ast.ColumnRef(name) for name in visible_names]
            plan = ops.Project(plan, visible, output_names, extended_scope)
        else:
            plan = ops.Project(
                plan, [item.expression for item in items], output_names, scope
            )

        if select.limit is not None or select.offset is not None:
            plan = ops.Limit(plan, select.limit, select.offset)
        return plan

    # ------------------------------------------------------------------
    # FROM planning
    # ------------------------------------------------------------------

    def _plan_from(
        self,
        from_clause: list[ast.TableRef],
        conjuncts: list[ast.Expression],
        outer: Scope | None,
    ) -> tuple[ops.Operator, list[ast.Expression]]:
        """Plan the FROM clause, consuming pushable conjuncts.

        Returns (operator, leftover conjuncts to apply above)."""
        available = list(conjuncts)
        relations: list[_Relation] = []
        for ref in from_clause:
            relation = self._plan_table_ref(ref, available, outer)
            relations.append(relation)

        if len(relations) == 1:
            combined = relations[0]
        else:
            combined = self._order_joins(relations, available, outer)

        # Apply any remaining conjuncts that are local to the combined input.
        local, leftover = self._split_local(
            available, Scope(combined.op.schema, outer)
        )
        op = combined.op
        if local:
            op = ops.Filter(op, ast.conjoin(local), Scope(op.schema, outer))
        return op, leftover

    def _plan_table_ref(
        self,
        ref: ast.TableRef,
        available: list[ast.Expression],
        outer: Scope | None,
    ) -> _Relation:
        if isinstance(ref, ast.TableName):
            return self._plan_base_table(ref, available, outer)
        if isinstance(ref, ast.SubqueryRef):
            child = self.plan_query(ref.query, outer)
            op = ops.Rename(child, ref.alias)
            return _Relation(op, frozenset({ref.alias.lower()}))
        if isinstance(ref, ast.Join):
            return self._plan_explicit_join(ref, available, outer)
        raise ExecutionError(f"unsupported FROM item {type(ref).__name__}")

    def _plan_base_table(
        self,
        ref: ast.TableName,
        available: list[ast.Expression],
        outer: Scope | None,
    ) -> _Relation:
        table = self.catalog.get_table(ref.name)
        binding = ref.binding
        scope = Scope(
            [OutputColumn(c.name, binding) for c in table.schema.columns], outer
        )
        local, leftover = self._split_local(available, scope)
        available[:] = leftover

        scan = self._choose_access_path(table, binding, local)
        op: ops.Operator = scan
        if local:
            op = ops.Filter(op, ast.conjoin(local), scope)
        return _Relation(op, frozenset({binding.lower()}))

    def _choose_access_path(
        self, table, binding: str, local: list[ast.Expression]
    ) -> ops.Operator:
        """Pick IndexScan when a constant predicate matches an index.

        Consumes the predicate it absorbs from ``local``.
        """
        for position, conjunct in enumerate(local):
            match = _constant_comparison(conjunct)
            if match is None:
                continue
            column, op_name, value = match
            if not table.schema.has_column(column):
                continue
            index = table.find_index([column])
            if index is None:
                continue
            if op_name == "=":
                local.pop(position)
                return ops.IndexScan(
                    table, index.name, binding, equal_key=(value,)
                )
            from repro.storage.index import OrderedIndex

            if not isinstance(index, OrderedIndex):
                continue
            local.pop(position)
            if op_name in ("<", "<="):
                return ops.IndexScan(
                    table,
                    index.name,
                    binding,
                    high=(value,),
                    high_inclusive=(op_name == "<="),
                )
            return ops.IndexScan(
                table,
                index.name,
                binding,
                low=(value,),
                low_inclusive=(op_name == ">="),
            )
        return ops.SeqScan(table, binding)

    def _plan_explicit_join(
        self,
        ref: ast.Join,
        available: list[ast.Expression],
        outer: Scope | None,
    ) -> _Relation:
        # WHERE conjuncts may only be pushed below the *preserved* side of
        # an outer join; pushing below the null-supplying side would remove
        # rows before padding happens and change the result.
        no_push: list[ast.Expression] = []
        left_available = available
        right_available = available
        if ref.join_type is ast.JoinType.LEFT:
            right_available = no_push
        elif ref.join_type is ast.JoinType.RIGHT:
            left_available = no_push
        elif ref.join_type is ast.JoinType.FULL:
            left_available = no_push
            right_available = no_push
        left = self._plan_table_ref(ref.left, left_available, outer)
        right = self._plan_table_ref(ref.right, right_available, outer)
        bindings = left.bindings | right.bindings

        condition = ref.condition
        if ref.using:
            using_parts = [
                ast.BinaryOp(
                    "=",
                    _qualified(left.op.schema, column),
                    _qualified(right.op.schema, column),
                )
                for column in ref.using
            ]
            condition = ast.conjoin(using_parts)

        op = self._make_join(
            left.op, right.op, ref.join_type, condition, outer
        )
        return _Relation(op, bindings)

    def _make_join(
        self,
        left: ops.Operator,
        right: ops.Operator,
        join_type: ast.JoinType,
        condition: ast.Expression | None,
        outer: Scope | None,
    ) -> ops.Operator:
        combined_scope = Scope(left.schema + right.schema, outer)
        if condition is None or join_type is ast.JoinType.CROSS:
            return ops.NestedLoopJoin(
                left, right, join_type, condition, combined_scope
            )
        left_scope = Scope(left.schema, outer)
        right_scope = Scope(right.schema, outer)
        equi_left: list[ast.Expression] = []
        equi_right: list[ast.Expression] = []
        residual: list[ast.Expression] = []
        for conjunct in ast.split_conjuncts(condition):
            pair = _equi_pair(conjunct, left_scope, right_scope)
            if pair is not None:
                equi_left.append(pair[0])
                equi_right.append(pair[1])
            else:
                residual.append(conjunct)
        if equi_left:
            # Build the hash table on the (estimated) smaller input; the
            # output schema is unaffected (HashJoin handles either side).
            build_left = (
                join_type is ast.JoinType.INNER
                and _estimate_rows(left) < _estimate_rows(right)
            )
            return ops.HashJoin(
                left,
                right,
                equi_left,
                equi_right,
                join_type,
                ast.conjoin(residual),
                combined_scope,
                build_left=build_left,
            )
        return ops.NestedLoopJoin(left, right, join_type, condition, combined_scope)

    def _order_joins(
        self,
        relations: list[_Relation],
        available: list[ast.Expression],
        outer: Scope | None,
    ) -> _Relation:
        """Greedy ordering for implicit (comma) joins.

        Start from the first relation, repeatedly pick a joinable relation
        connected by an available equi-conjunct; fall back to cross joins.
        """
        remaining = list(relations)
        current = remaining.pop(0)
        while remaining:
            chosen_index = None
            for index, candidate in enumerate(remaining):
                if self._find_join_conjuncts(current, candidate, available):
                    chosen_index = index
                    break
            if chosen_index is None:
                chosen_index = 0
            candidate = remaining.pop(chosen_index)
            join_conjuncts = self._take_join_conjuncts(
                current, candidate, available
            )
            join_type = (
                ast.JoinType.INNER if join_conjuncts else ast.JoinType.CROSS
            )
            op = self._make_join(
                current.op,
                candidate.op,
                join_type,
                ast.conjoin(join_conjuncts),
                outer,
            )
            current = _Relation(op, current.bindings | candidate.bindings)
        return current

    def _find_join_conjuncts(
        self,
        left: _Relation,
        right: _Relation,
        available: list[ast.Expression],
    ) -> bool:
        combined = Scope(left.op.schema + right.op.schema)
        left_scope = Scope(left.op.schema)
        right_scope = Scope(right.op.schema)
        for conjunct in available:
            if not _resolves_locally(conjunct, combined):
                continue
            if _resolves_locally(conjunct, left_scope):
                continue
            if _resolves_locally(conjunct, right_scope):
                continue
            return True
        return False

    def _take_join_conjuncts(
        self,
        left: _Relation,
        right: _Relation,
        available: list[ast.Expression],
    ) -> list[ast.Expression]:
        combined = Scope(left.op.schema + right.op.schema)
        left_scope = Scope(left.op.schema)
        right_scope = Scope(right.op.schema)
        taken: list[ast.Expression] = []
        rest: list[ast.Expression] = []
        for conjunct in available:
            if (
                _resolves_locally(conjunct, combined)
                and not _resolves_locally(conjunct, left_scope)
                and not _resolves_locally(conjunct, right_scope)
            ):
                taken.append(conjunct)
            else:
                rest.append(conjunct)
        available[:] = rest
        return taken

    def _split_local(
        self, conjuncts: list[ast.Expression], scope: Scope
    ) -> tuple[list[ast.Expression], list[ast.Expression]]:
        """Partition conjuncts into (evaluable under scope, leftover)."""
        local: list[ast.Expression] = []
        leftover: list[ast.Expression] = []
        for conjunct in conjuncts:
            if _resolves_locally(conjunct, scope):
                local.append(conjunct)
            else:
                leftover.append(conjunct)
        return local, leftover

    # ------------------------------------------------------------------
    # Projections / aggregation
    # ------------------------------------------------------------------

    def _expand_stars(
        self, items: list[ast.SelectItem], schema: list[OutputColumn]
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expression, ast.Star):
                star = item.expression
                matched = False
                for column in schema:
                    if star.table is None or (
                        column.binding
                        and column.binding.lower() == star.table.lower()
                    ):
                        matched = True
                        expanded.append(
                            ast.SelectItem(
                                ast.ColumnRef(column.name, column.binding),
                                column.name,
                            )
                        )
                if not matched:
                    raise CatalogError(
                        f"no table {star.table!r} to expand in projection"
                    )
            else:
                expanded.append(item)
        return expanded

    def _normalise_order_items(
        self, order_by: list[ast.OrderItem], items: list[ast.SelectItem]
    ) -> list[ast.OrderItem]:
        """Resolve ordinal and alias references in ORDER BY."""
        normalised: list[ast.OrderItem] = []
        alias_map = {
            item.alias.lower(): item.expression for item in items if item.alias
        }
        for order in order_by:
            expression = order.expression
            if isinstance(expression, ast.Literal) and isinstance(
                expression.value, int
            ):
                position = expression.value
                if not 1 <= position <= len(items):
                    raise ExecutionError(
                        f"ORDER BY position {position} is out of range"
                    )
                expression = items[position - 1].expression
            elif (
                isinstance(expression, ast.ColumnRef)
                and expression.table is None
                and expression.name.lower() in alias_map
            ):
                expression = alias_map[expression.name.lower()]
            normalised.append(ast.OrderItem(expression, order.ascending))
        return normalised

    def _plan_aggregate(
        self,
        input_op: ops.Operator,
        input_scope: Scope,
        select: ast.Select,
        items: list[ast.SelectItem],
        order_items: list[ast.OrderItem],
        outer: Scope | None,
    ):
        group_exprs = list(select.group_by)
        # Allow GROUP BY output aliases (GROUP BY dept for SELECT x AS dept).
        alias_map = {
            item.alias.lower(): item.expression for item in items if item.alias
        }
        group_exprs = [
            alias_map.get(g.name.lower(), g)
            if isinstance(g, ast.ColumnRef) and g.table is None
            else g
            for g in group_exprs
        ]

        aggregate_calls: list[ast.FunctionCall] = []

        def collect(expr: ast.Expression) -> None:
            for node in ast.walk_expressions(expr):
                if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                    if node not in aggregate_calls:
                        aggregate_calls.append(node)

        for item in items:
            collect(item.expression)
        if select.having is not None:
            collect(select.having)
        for order in order_items:
            collect(order.expression)

        group_names = [f"__g{i}" for i in range(len(group_exprs))]
        agg_names = [f"__a{i}" for i in range(len(aggregate_calls))]
        agg_op = ops.HashAggregate(
            input_op,
            group_exprs,
            aggregate_calls,
            group_names + agg_names,
            input_scope,
        )
        agg_scope = Scope(agg_op.schema, outer)

        def rewrite(expr: ast.Expression) -> ast.Expression:
            def replace(node: ast.Expression) -> ast.Expression:
                if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                    return ast.ColumnRef(
                        agg_names[aggregate_calls.index(node)]
                    )
                for position, group in enumerate(group_exprs):
                    if node == group:
                        return ast.ColumnRef(group_names[position])
                return node

            # Replace whole-subtree group matches first (top-down), then
            # aggregates bottom-up.  transform_expression is bottom-up which
            # handles both: group-expr subtrees become refs when visited.
            return ast.transform_expression(expr, replace)

        rewritten_items = [
            ast.SelectItem(rewrite(item.expression), item.alias or item.output_name)
            for item in items
        ]
        rewritten_having = (
            rewrite(select.having) if select.having is not None else None
        )
        rewritten_order = [
            ast.OrderItem(rewrite(order.expression), order.ascending)
            for order in order_items
        ]
        return agg_op, agg_scope, rewritten_items, rewritten_having, rewritten_order

    def _resolve_order_keys(
        self,
        order_items: list[ast.OrderItem],
        schema: list[OutputColumn],
        _unused,
    ) -> tuple[list[ast.Expression], list[bool]]:
        keys: list[ast.Expression] = []
        ascending: list[bool] = []
        for order in order_items:
            expression = order.expression
            if isinstance(expression, ast.Literal) and isinstance(
                expression.value, int
            ):
                position = expression.value
                if not 1 <= position <= len(schema):
                    raise ExecutionError(
                        f"ORDER BY position {position} is out of range"
                    )
                expression = ast.ColumnRef(schema[position - 1].name)
            keys.append(expression)
            ascending.append(order.ascending)
        return keys, ascending


# ---------------------------------------------------------------------------
# Predicate analysis helpers
# ---------------------------------------------------------------------------


def _estimate_rows(op: ops.Operator) -> float:
    """Coarse cardinality estimate for build-side selection."""
    if isinstance(op, ops.SeqScan):
        return float(op.table.row_count)
    if isinstance(op, ops.IndexScan):
        if op.equal_key is not None:
            return max(
                op.table.row_count / max(op.index.distinct_keys, 1), 1.0
            )
        return op.table.row_count / 3.0
    if isinstance(op, ops.ValuesScan):
        return float(len(op._rows))
    if isinstance(op, ops.Filter):
        return _estimate_rows(op.child) / 3.0
    if isinstance(op, ops.Rename):
        return _estimate_rows(op.child)
    if isinstance(op, (ops.HashJoin, ops.NestedLoopJoin)):
        return max(
            _estimate_rows(op.left), _estimate_rows(op.right)
        )
    if isinstance(op, ops.Limit) and op.limit is not None:
        return float(op.limit)
    children = op._children()
    if children:
        return _estimate_rows(children[0])
    return 1000.0


def _resolves_locally(expr: ast.Expression, scope: Scope) -> bool:
    """True if every column ref resolves at depth 0 and no subquery appears."""
    for node in ast.walk_expressions(expr):
        if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
            return False
        if isinstance(node, ast.ColumnRef):
            resolved = scope.try_resolve(node.table, node.name)
            if resolved is None or resolved[0] != 0:
                return False
        if isinstance(node, ast.Star):
            return False
    return True


def _constant_comparison(
    expr: ast.Expression,
) -> tuple[str, str, object] | None:
    """Match ``col <op> literal`` (either side); returns (column, op, value)."""
    if not isinstance(expr, ast.BinaryOp):
        return None
    if expr.op not in ("=", "<", "<=", ">", ">="):
        return None
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    if isinstance(expr.left, ast.ColumnRef) and isinstance(expr.right, ast.Literal):
        if expr.right.value is None:
            return None
        return expr.left.name, expr.op, expr.right.value
    if isinstance(expr.right, ast.ColumnRef) and isinstance(expr.left, ast.Literal):
        if expr.left.value is None:
            return None
        return expr.right.name, flipped[expr.op], expr.left.value
    return None


def _equi_pair(
    conjunct: ast.Expression, left_scope: Scope, right_scope: Scope
) -> tuple[ast.Expression, ast.Expression] | None:
    """Match an equi-join conjunct; returns (left_expr, right_expr)."""
    if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
        return None
    if _resolves_locally(conjunct.left, left_scope) and _resolves_locally(
        conjunct.right, right_scope
    ):
        return conjunct.left, conjunct.right
    if _resolves_locally(conjunct.left, right_scope) and _resolves_locally(
        conjunct.right, left_scope
    ):
        return conjunct.right, conjunct.left
    return None


def _qualified(schema: list[OutputColumn], column: str) -> ast.ColumnRef:
    for output in schema:
        if output.name.lower() == column.lower():
            return ast.ColumnRef(output.name, output.binding)
    raise CatalogError(f"USING column {column!r} not found")
