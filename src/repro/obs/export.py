"""Telemetry exporters and the post-mortem debug bundle.

Everything the in-memory observability layer collects becomes machine
readable here:

- :func:`spans_to_chrome_trace` — the tracer's span trees as Chrome
  trace-event JSON (open in Perfetto or chrome://tracing), one track per
  component site plus a coordinator track, in a wall-clock or a
  simulated-clock variant
- :func:`metrics_to_prometheus` — the metrics registry in Prometheus text
  exposition format (counters, gauges, histogram summaries with quantiles)
- :func:`metrics_to_json` — a stable JSON snapshot of every metric series
- :func:`dump_debug_bundle` / :func:`load_debug_bundle` — one directory
  holding traces + metrics + event log + report + config, written after a
  run (or a failure) and reloadable by ``python -m repro.obs.report``

The schema validators (:func:`validate_chrome_trace`,
:func:`validate_prometheus_text`) are exported too so tests, benchmarks, and
the CLI self-test all check the same contract.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.errors import MyriadError
from repro.obs.events import Event, load_events_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

#: Bundle format marker written to (and checked in) MANIFEST.json.
BUNDLE_FORMAT = "myriad-debug-bundle/1"

DISABLED_MARKER = "# myriad observability disabled: nothing was recorded\n"


# ---------------------------------------------------------------------------
# Chrome trace-event JSON (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------


def _span_track(span: Span) -> str:
    """Track a span renders on: its tagged site, else the coordinator."""
    site = span.tags.get("site")
    return str(site) if site is not None else "coordinator"


def _collect_tracks(roots: list[Span]) -> list[str]:
    tracks: set[str] = set()

    def walk(span: Span) -> None:
        tracks.add(_span_track(span))
        for child in span.children:
            walk(child)

    for root in roots:
        walk(root)
    ordered = sorted(tracks - {"coordinator"})
    return ["coordinator"] + ordered


def _span_request(span: Span, inherited: str | None) -> str | None:
    """The request id in effect for a span (own tag, else ancestor's)."""
    own = span.tags.get("request")
    return str(own) if own is not None else inherited


def _sim_dur(span: Span) -> float:
    """Simulated duration of a span: its own, else the sum of its children."""
    if span.sim_s is not None:
        return span.sim_s
    return sum(_sim_dur(child) for child in span.children)


def spans_to_chrome_trace(tracer: Tracer, clock: str = "wall") -> dict:
    """Serialise retained span trees as a Chrome trace-event JSON object.

    ``clock="wall"`` places spans at their measured wall-clock offsets;
    ``clock="sim"`` lays them out on the simulated-network clock (children
    sequential within their parent, scaled to fit when concurrent branches
    sum past the parent's extent).  Timestamps are microseconds from the
    start of the earliest retained span.
    """
    if clock not in ("wall", "sim"):
        raise ValueError(f"unknown trace clock {clock!r}; use 'wall' or 'sim'")
    with tracer._lock:
        roots = list(tracer.roots)
    if not tracer.enabled:
        return {
            "traceEvents": [],
            "otherData": {"disabled": True, "clock": clock},
        }

    tracks = _collect_tracks(roots)
    tids = {name: index for index, name in enumerate(tracks)}
    events: list[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in tids.items()
    ]
    span_events: list[dict] = []

    def emit(
        span: Span,
        start_us: float,
        dur_us: float,
        request: str | None = None,
    ) -> None:
        args = {str(key): str(value) for key, value in span.tags.items()}
        # Children inherit the nearest ancestor's request id, so every
        # event of one request's tree is joinable in Perfetto by args.
        if request is not None and "request" not in args:
            args["request"] = request
        if span.error is not None:
            args["error"] = span.error
        span_events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "pid": 1,
                "tid": tids[_span_track(span)],
                "ts": round(start_us, 3),
                "dur": round(max(dur_us, 0.0), 3),
                "args": args,
            }
        )

    if clock == "wall":
        starts = []

        def collect_starts(span: Span) -> None:
            starts.append(span._start)
            for child in span.children:
                collect_starts(child)

        for root in roots:
            collect_starts(root)
        base = min(starts, default=0.0)

        def walk_wall(span: Span, request: str | None = None) -> None:
            request = _span_request(span, request)
            emit(span, (span._start - base) * 1e6, span.wall_s * 1e6, request)
            for child in span.children:
                walk_wall(child, request)

        for root in roots:
            walk_wall(root)
    else:
        cursor = 0.0

        def walk_sim(
            span: Span, start_s: float, request: str | None = None
        ) -> None:
            request = _span_request(span, request)
            duration = _sim_dur(span)
            emit(span, start_s * 1e6, duration * 1e6, request)
            child_total = sum(_sim_dur(child) for child in span.children)
            # Concurrent branches can sum past the parent's (max-based)
            # extent; scale them to fit so nesting stays visually sane and
            # start timestamps stay monotone.
            scale = 1.0
            if duration > 0 and child_total > duration:
                scale = duration / child_total
            offset = 0.0
            for child in span.children:
                walk_sim(child, start_s + offset * scale, request)
                offset += _sim_dur(child)

        for root in roots:
            walk_sim(root, cursor)
            cursor += max(_sim_dur(root), 1e-9)

    # Deterministic, per-track monotone file order (enclosing spans first).
    span_events.sort(key=lambda e: (e["tid"], e["ts"], -e["dur"]))
    events.extend(span_events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": clock,
            "roots": len(roots),
            "spans_dropped": tracer.dropped,
        },
    }


def validate_chrome_trace(trace: dict) -> list[str]:
    """Schema-check one Chrome trace object; returns a list of problems.

    Checks the trace-event contract Perfetto relies on: a ``traceEvents``
    list, required keys per event, numeric non-negative ``ts``/``dur`` for
    complete ("X") events, and non-decreasing start timestamps per track in
    file order.
    """
    problems: list[str] = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["trace must be an object with a 'traceEvents' list"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    last_ts: dict[tuple, float] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing required key {key!r}")
        if event.get("ph") == "M":
            continue
        if event.get("ph") != "X":
            problems.append(f"{where}: unexpected phase {event.get('ph')!r}")
            continue
        ts = event.get("ts")
        dur = event.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"{where}: 'dur' must be a non-negative number")
        track = (event.get("pid"), event.get("tid"))
        if ts < last_ts.get(track, float("-inf")):
            problems.append(
                f"{where}: ts {ts} goes backwards on track {track}"
            )
        last_ts[track] = ts
    return problems


# ---------------------------------------------------------------------------
# Prometheus text exposition format
# ---------------------------------------------------------------------------

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return "myriad_" + _PROM_NAME_RE.sub("_", name)


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(
            _PROM_NAME_RE.sub("_", key),
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"),
        )
        for key, value in sorted(merged.items())
    )
    return "{" + rendered + "}"


def _prom_number(value: float) -> str:
    return repr(float(value))


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Counters get a ``_total`` suffix, histograms are exposed as summaries
    (``quantile`` labels plus ``_sum``/``_count``).  A disabled registry
    yields an explicit marker comment instead of an empty page.
    """
    if not registry.enabled:
        return DISABLED_MARKER
    lines: list[str] = []
    typed: set[str] = set()

    def header(name: str, kind: str, source: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# HELP {name} MYRIAD metric {source}")
            lines.append(f"# TYPE {name} {kind}")

    for name, labels, value in registry.counter_series():
        prom = _prom_name(name) + "_total"
        header(prom, "counter", name)
        lines.append(f"{prom}{_prom_labels(labels)} {_prom_number(value)}")
    for name, labels, value in registry.gauge_series():
        prom = _prom_name(name)
        header(prom, "gauge", name)
        lines.append(f"{prom}{_prom_labels(labels)} {_prom_number(value)}")
    for name, labels, summary in registry.histogram_series():
        prom = _prom_name(name)
        header(prom, "summary", name)
        for pct_label, stat in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            lines.append(
                f"{prom}{_prom_labels(labels, {'quantile': pct_label})} "
                f"{_prom_number(summary[stat])}"
            )
        lines.append(
            f"{prom}_sum{_prom_labels(labels)} "
            f"{_prom_number(summary['mean'] * summary['count'])}"
        )
        lines.append(
            f"{prom}_count{_prom_labels(labels)} "
            f"{_prom_number(summary['count'])}"
        )
    if not lines:
        lines.append("# no metrics recorded")
    return "\n".join(lines) + "\n"


_PROM_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"  # labels
    r" [-+]?(?:[0-9]*\.)?[0-9]+(?:[eE][-+]?[0-9]+)?$"  # value
)


def validate_prometheus_text(text: str) -> list[str]:
    """Line-format check of a Prometheus exposition page; returns problems."""
    problems: list[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        if not _PROM_SAMPLE_RE.match(line):
            problems.append(f"line {number}: malformed sample {line!r}")
    return problems


# ---------------------------------------------------------------------------
# JSON metrics snapshot
# ---------------------------------------------------------------------------


def metrics_to_json(registry: MetricsRegistry) -> str:
    """Stable (sorted-key) JSON snapshot of every metric series."""
    if not registry.enabled:
        return json.dumps({"disabled": True}, indent=2) + "\n"
    return json.dumps(registry.snapshot(), sort_keys=True, indent=2) + "\n"


# ---------------------------------------------------------------------------
# Debug bundle: one post-mortem directory
# ---------------------------------------------------------------------------

_BUNDLE_FILES = (
    "trace_wall.json",
    "trace_sim.json",
    "metrics.prom",
    "metrics.json",
    "events.jsonl",
    "report.txt",
    "config.json",
    "introspection.json",
)


def _system_config(system) -> dict:
    """The installation's shape, for the bundle's config.json."""
    return {
        "sites": {
            site: type(dbms).__name__
            for site, dbms in sorted(system.components.items())
        },
        "federations": {
            federation.name: sorted(federation.relations)
            for federation in system.federations.values()
        },
        "default_optimizer": system.default_optimizer,
        "query_timeout": system.transactions.query_timeout,
        "fault_injector": system.network.faults is not None,
        "slow_query_threshold_s": system.obs.slow_query_threshold_s,
        "trace_sample_rate": system.obs.tracer.sample_rate,
        "slos": sorted(system.obs.slos),
    }


def dump_debug_bundle(system, directory) -> Path:
    """Write one post-mortem directory for a :class:`MyriadSystem` run.

    Contents: Perfetto traces (wall + sim clocks), Prometheus and JSON
    metrics, the JSONL event log, the rendered observability report, the
    system config, a live introspection snapshot, and a MANIFEST.  Raises
    :class:`~repro.errors.MyriadError` on a disabled handle — a bundle of
    empty telemetry would be indistinguishable from a quiet run.
    """
    obs = system.obs
    if not obs.enabled:
        raise MyriadError(
            "cannot dump a debug bundle: observability is disabled "
            "(construct the system with observability=True)"
        )
    from repro.obs.introspect import introspection_snapshot

    # Publish the rolling-window gauges *before* rendering anything: the
    # metrics files below are built first, but the report also publishes
    # these gauges, and both must agree (selftest compares them byte for
    # byte).  Re-publishing at a fixed simulated clock is idempotent.
    obs.publish_window_gauges()

    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    contents = {
        "trace_wall.json": json.dumps(
            spans_to_chrome_trace(obs.tracer, clock="wall"), indent=2
        )
        + "\n",
        "trace_sim.json": json.dumps(
            spans_to_chrome_trace(obs.tracer, clock="sim"), indent=2
        )
        + "\n",
        "metrics.prom": metrics_to_prometheus(obs.metrics),
        "metrics.json": metrics_to_json(obs.metrics),
        "events.jsonl": obs.events.to_jsonl(),
        "report.txt": system.observability_report(),
        "config.json": json.dumps(_system_config(system), indent=2) + "\n",
        "introspection.json": json.dumps(
            introspection_snapshot(system), sort_keys=True, indent=2, default=str
        )
        + "\n",
    }
    for name, text in contents.items():
        (path / name).write_text(text)
    manifest = {
        "format": BUNDLE_FORMAT,
        "files": sorted(contents),
        "events": len(obs.events),
        "events_dropped": obs.events.dropped,
        "span_roots": len(obs.tracer.roots),
        "spans_dropped": obs.tracer.dropped,
        "spans_sampled_out": obs.tracer.sampled_out,
    }
    (path / "MANIFEST.json").write_text(json.dumps(manifest, indent=2) + "\n")
    return path


class DebugBundle:
    """A reloaded debug bundle (see :func:`load_debug_bundle`)."""

    def __init__(self, path: Path, manifest: dict):
        self.path = path
        self.manifest = manifest

    def _read(self, name: str) -> str:
        return (self.path / name).read_text()

    @property
    def report(self) -> str:
        """The run's observability report, byte-for-byte as dumped."""
        return self._read("report.txt")

    @property
    def metrics(self) -> dict:
        return json.loads(self._read("metrics.json"))

    @property
    def prometheus(self) -> str:
        return self._read("metrics.prom")

    @property
    def events(self) -> list[Event]:
        return load_events_jsonl(self._read("events.jsonl"))

    @property
    def config(self) -> dict:
        return json.loads(self._read("config.json"))

    @property
    def introspection(self) -> dict:
        return json.loads(self._read("introspection.json"))

    def trace(self, clock: str = "wall") -> dict:
        if clock not in ("wall", "sim"):
            raise ValueError(f"unknown trace clock {clock!r}")
        return json.loads(self._read(f"trace_{clock}.json"))

    def validate(self) -> list[str]:
        """Re-run the schema validators over the bundle's artifacts."""
        problems = []
        for clock in ("wall", "sim"):
            problems.extend(
                f"trace_{clock}.json: {p}"
                for p in validate_chrome_trace(self.trace(clock))
            )
        problems.extend(
            f"metrics.prom: {p}"
            for p in validate_prometheus_text(self.prometheus)
        )
        return problems


def load_debug_bundle(directory) -> DebugBundle:
    """Open a directory written by :func:`dump_debug_bundle`."""
    path = Path(directory)
    manifest_path = path / "MANIFEST.json"
    if not manifest_path.exists():
        raise MyriadError(f"{path} is not a debug bundle (no MANIFEST.json)")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != BUNDLE_FORMAT:
        raise MyriadError(
            f"unsupported bundle format {manifest.get('format')!r} "
            f"(expected {BUNDLE_FORMAT!r})"
        )
    missing = [
        name for name in manifest.get("files", []) if not (path / name).exists()
    ]
    if missing:
        raise MyriadError(f"debug bundle {path} is missing files: {missing}")
    return DebugBundle(path, manifest)
