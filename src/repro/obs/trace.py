"""Span tracing for global operations.

A :class:`Tracer` records *spans* — named, tagged intervals with parent/child
nesting — for the stages of a global query (parse → expand → plan → execute,
then per-stage and per-fetch inside the executor) and the phases of a global
transaction (begin / prepare / decide / deliver / retry).

Each span carries two durations:

- **wall-clock seconds** (``wall_s``): real Python time spent, measured with
  :func:`time.perf_counter` — what profiling the reproduction itself needs
- **simulated seconds** (``sim_s``): virtual time on the modelled network,
  set explicitly by instrumented code from :class:`~repro.net.MessageTrace`
  deltas — what the paper's experiments measure

The tracer is zero-dependency, thread-safe (the deadlock monitor records
sweeps from its own thread), and cheap when disabled: ``span()`` returns a
shared no-op span and touches nothing else.
"""

from __future__ import annotations

import threading
import time
from collections import deque


class Span:
    """One traced interval; use as a context manager via ``Tracer.span``."""

    __slots__ = (
        "name",
        "tags",
        "parent",
        "children",
        "wall_s",
        "sim_s",
        "error",
        "_tracer",
        "_start",
        "_preset_parent",
    )

    def __init__(
        self,
        name: str,
        tags: dict[str, object],
        tracer: "Tracer",
        parent: "Span | None" = None,
    ):
        self.name = name
        self.tags = tags
        self.parent: Span | None = parent
        self.children: list[Span] = []
        self.wall_s = 0.0
        self.sim_s: float | None = None
        self.error: str | None = None
        self._tracer = tracer
        self._start = 0.0
        self._preset_parent = parent is not None

    # -- annotation --------------------------------------------------------

    def tag(self, **tags: object) -> "Span":
        self.tags.update(tags)
        return self

    def set_sim(self, seconds: float) -> "Span":
        """Record the simulated-clock duration of this span."""
        self.sim_s = seconds
        return self

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = time.perf_counter() - self._start
        if exc_type is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(self)
        return False

    def render(self, indent: int = 0) -> list[str]:
        tags = " ".join(f"{k}={v}" for k, v in self.tags.items())
        parts = [f"{'  ' * indent}{self.name}"]
        if tags:
            parts.append(f"[{tags}]")
        parts.append(f"wall={self.wall_s * 1000:.3f}ms")
        if self.sim_s is not None:
            parts.append(f"sim={self.sim_s * 1000:.3f}ms")
        if self.error is not None:
            parts.append(f"ERROR({self.error})")
        lines = [" ".join(parts)]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines

    def find(self, name: str) -> list["Span"]:
        """This span's subtree members named ``name`` (depth-first)."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall_s * 1000:.3f}ms)"


class _NullSpan:
    """Shared no-op span handed out by a disabled tracer."""

    __slots__ = ()

    def tag(self, **tags: object) -> "_NullSpan":
        return self

    def set_sim(self, seconds: float) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


def _subtree_error(span: Span) -> bool:
    """True when this span or any descendant recorded an error."""
    if span.error is not None:
        return True
    return any(_subtree_error(child) for child in span.children)


class Tracer:
    """Records span trees for recent global operations.

    Spans opened while another span is open on the same thread nest under
    it; a span with no parent is a *root* and is kept (bounded by
    ``max_roots``, oldest evicted first) for :meth:`render` and inspection.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_roots: int = 64,
        sample_rate: float = 1.0,
    ):
        self.enabled = enabled
        self.roots: deque[Span] = deque(maxlen=max_roots)
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Root spans evicted because the buffer was full.  Surfaced in the
        #: observability report and (via ``metrics``, when wired) as the
        #: ``obs.spans_dropped`` counter so a truncated trace is never
        #: mistaken for a complete one.
        self.dropped = 0
        #: Tail-based sampling: the fraction of *uninteresting* root spans
        #: retained.  The keep/drop decision happens when the root
        #: completes, so a trace that turned out slow, errored, degraded,
        #: or re-planned (``error`` set anywhere in the tree, or a
        #: ``sample_keep`` tag on the root) is **always** kept; the rest
        #: are admitted at this rate.  1.0 keeps everything (default).
        self.sample_rate = sample_rate
        #: Healthy root spans discarded by tail sampling (distinct from
        #: ``dropped``: sampling is a policy choice, eviction is overflow).
        self.sampled_out = 0
        self._sample_debt = 0.0
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; set by the
        #: owning :class:`~repro.obs.Observability` handle.
        self.metrics = None

    # -- span creation -----------------------------------------------------

    def span(
        self, name: str, parent: Span | None = None, **tags: object
    ) -> Span | _NullSpan:
        """Create a span; pass ``parent=`` to nest under a span owned by
        another thread (e.g. a worker fetch under the main-thread stage
        span) instead of this thread's implicit stack top.
        """
        if not self.enabled:
            return NULL_SPAN
        if isinstance(parent, _NullSpan):
            parent = None
        return Span(name, tags, self, parent=parent)

    def current(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- internal stack management ----------------------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        if span._preset_parent:
            # Explicit cross-thread parent: several worker threads may
            # attach children to the same span concurrently.
            with self._lock:
                span.parent.children.append(span)
        elif stack:
            span.parent = stack[-1]
            with self._lock:
                stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - defensive
            stack.remove(span)
        if span.parent is None:
            with self._lock:
                if not self._keep_root(span):
                    self.sampled_out += 1
                    if self.metrics is not None:
                        self.metrics.inc("obs.spans_sampled_out")
                    return
                if (
                    self.roots.maxlen is not None
                    and len(self.roots) == self.roots.maxlen
                ):
                    self.dropped += 1
                    if self.metrics is not None:
                        self.metrics.inc("obs.spans_dropped")
                self.roots.append(span)

    def _keep_root(self, span: Span) -> bool:
        """Tail-sampling verdict for a completed root (lock held).

        Interesting traces — any error in the tree, or a ``sample_keep``
        tag set by instrumented code (slow / degraded / replanned) — are
        always retained.  The rest pass at ``sample_rate``, via an exact
        deterministic debt accumulator (no RNG: every ``1/rate``-th
        healthy root is kept).
        """
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if "sample_keep" in span.tags or _subtree_error(span):
            return True
        if rate <= 0.0:
            return False
        self._sample_debt += rate
        if self._sample_debt >= 1.0:
            self._sample_debt -= 1.0
            return True
        return False

    # -- inspection --------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        """All recorded spans named ``name`` across retained roots."""
        with self._lock:
            roots = list(self.roots)
        found: list[Span] = []
        for root in roots:
            found.extend(root.find(name))
        return found

    def clear(self) -> None:
        with self._lock:
            self.roots.clear()
            self.dropped = 0
            self.sampled_out = 0
            self._sample_debt = 0.0

    def render(self, last: int | None = None) -> str:
        """Text dump of the most recent ``last`` root spans (default all)."""
        with self._lock:
            roots = list(self.roots)
        if last is not None:
            roots = roots[-last:]
        if not roots:
            return "tracer: no spans recorded"
        lines: list[str] = []
        if self.dropped:
            lines.append(
                f"(trace truncated: {self.dropped} older root spans dropped "
                f"beyond the {self.roots.maxlen}-root buffer)"
            )
        if self.sampled_out:
            lines.append(
                f"(tail sampling at rate {self.sample_rate:g}: "
                f"{self.sampled_out} healthy root spans not retained)"
            )
        for root in roots:
            lines.extend(root.render())
        return "\n".join(lines)
