"""Observability: span tracing, metrics, and EXPLAIN ANALYZE.

The paper's experiments reason about *why* a plan was chosen and *where* a
global operation spends its time; this package makes both first-class
instead of ad-hoc :class:`~repro.net.MessageTrace` arithmetic:

- :class:`Tracer` / :class:`~repro.obs.trace.Span` — nested spans threaded
  through the query processor, executor, gateways, 2PC coordinator, and
  deadlock monitor, carrying wall-clock and simulated durations
- :class:`MetricsRegistry` — counters / gauges / histograms (p50/p95/p99)
  for rows and bytes shipped per site, messages by purpose, fetch latency,
  2PC outcomes, deadlock aborts, and fault-injector drops
- :func:`render_explain_analyze` — the executed plan annotated with actual
  per-fetch rows/bytes/time against the optimizer's estimates
  (``GlobalResult.explain_analyze()``)

One :class:`Observability` handle bundles a tracer and a registry; a
:class:`~repro.myriad.MyriadSystem` owns one (``system.obs``, with
``system.metrics`` / ``system.tracer`` shortcuts) and shares it with every
layer through the simulated :class:`~repro.net.Network`.  Everything is
zero-dependency and near-free when disabled
(``MyriadSystem(observability=False)``).
"""

from __future__ import annotations

import itertools

from repro.obs.events import Event, EventLog, load_events_jsonl
from repro.obs.explain import FetchActual, render_explain_analyze
from repro.obs.metrics import MetricsRegistry, percentile
from repro.obs.slo import SLO, BurnRateRule
from repro.obs.trace import NULL_SPAN, Span, Tracer
from repro.obs.window import WindowedMetrics

#: Marker returned by reports/exporters when observability is off, so a
#: disabled handle can never be mistaken for a quiet (but observed) run.
DISABLED_REPORT = (
    "observability disabled: no metrics, traces, or events were recorded\n"
    "(construct the system with observability=True to collect telemetry)"
)


class Observability:
    """One tracer + metrics registry + event log, enabled or disabled together."""

    def __init__(
        self,
        enabled: bool = True,
        max_roots: int = 64,
        max_events: int = 4096,
        slow_query_threshold_s: float | None = 1.0,
        trace_sample_rate: float = 1.0,
        window_bucket_s: float = 0.5,
        window_buckets: int = 120,
    ):
        self.enabled = enabled
        self.tracer = Tracer(
            enabled=enabled, max_roots=max_roots, sample_rate=trace_sample_rate
        )
        self.metrics = MetricsRegistry(enabled=enabled)
        self.events = EventLog(enabled=enabled, max_events=max_events)
        # Evicted root spans surface as the obs.spans_dropped counter.
        self.tracer.metrics = self.metrics
        #: Queries whose *simulated* latency crosses this threshold emit a
        #: ``query.slow`` event (with a plan digest); ``None`` disables.
        self.slow_query_threshold_s = slow_query_threshold_s
        #: Rolling QPS / error-rate / latency percentiles over recent
        #: simulated time; clock bound by the owning system.
        self.window = WindowedMetrics(
            enabled=enabled,
            bucket_s=window_bucket_s,
            bucket_count=window_buckets,
        )
        #: Registered :class:`~repro.obs.slo.SLO` objects by name, fed by
        #: :meth:`record_request` and evaluated on every request.
        self.slos: dict[str, SLO] = {}
        self._clock = lambda: 0.0
        self._request_ids = itertools.count(1)

    def span(self, name: str, parent=None, **tags: object):
        return self.tracer.span(name, parent=parent, **tags)

    def emit(self, etype: str, sim_s: float | None = None, **fields: object):
        """Record one structured event (no-op when disabled)."""
        return self.events.emit(etype, sim_s=sim_s, **fields)

    # -- request correlation -----------------------------------------------

    def mint_request_id(self) -> str:
        """A new installation-unique request id (e.g. ``req-000042``).

        Minted even on a disabled handle: request correlation is part of
        the result contract, not a telemetry feature, and the counter
        costs nothing on the simulated clock.
        """
        return f"req-{next(self._request_ids):06d}"

    # -- windows & SLOs ------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Point the window/SLO machinery at a clock (``Network.now_s``)."""
        self._clock = clock
        self.window.clock = clock
        for slo in self.slos.values():
            slo.clock = clock

    def add_slo(
        self,
        name: str,
        objective: float = 0.999,
        kind: str = "availability",
        threshold_s: float | None = None,
        rules=None,
    ) -> SLO:
        """Register an SLO fed by every :meth:`record_request`."""
        if name in self.slos:
            raise ValueError(f"SLO {name!r} already registered")
        slo = SLO(
            name,
            objective=objective,
            kind=kind,
            threshold_s=threshold_s,
            rules=rules,
            clock=self._clock,
            obs=self,
        )
        self.slos[name] = slo
        return slo

    def record_request(
        self,
        ok: bool,
        sim_latency_s: float,
        federation: str | None = None,
    ) -> None:
        """Feed one finished request into the window and every SLO.

        ``ok`` means the request succeeded *and* was not degraded; the
        latency is simulated seconds.  Each call re-evaluates the
        registered SLOs, so burn-rate alerts fire (and clear) on the
        request path itself — no separate evaluation thread.
        """
        if not self.enabled:
            return
        labels = {"federation": federation} if federation else {}
        window = self.window
        window.inc("query.requests", **labels)
        if not ok:
            window.inc("query.errors", **labels)
        window.observe("query.latency_s", sim_latency_s, **labels)
        for slo in self.slos.values():
            slo.record(ok, sim_latency_s)
            slo.evaluate()

    def evaluate_slos(self) -> list[dict]:
        """Force one evaluation pass (clock-driven clears between requests)."""
        return [slo.evaluate() for slo in self.slos.values()]

    def active_alerts(self) -> list[dict]:
        """Status of every SLO whose burn-rate alert is currently firing."""
        return [
            slo.status()
            for _, slo in sorted(self.slos.items())
            if slo.alert_active
        ]

    def publish_window_gauges(self) -> None:
        """Refresh ``window.*`` gauges from the rolling window.

        Idempotent at a fixed simulated clock, so exporters may call it
        freely: a debug bundle's Prometheus page and a report rendered
        right after both see the same values.
        """
        if not self.enabled:
            return
        window = self.window
        metrics = self.metrics
        span = window.window_s
        for labels in window.label_sets("query.requests"):
            requests = window.count("query.requests", **labels)
            errors = window.count("query.errors", **labels)
            metrics.set_gauge("window.qps", requests / span, **labels)
            metrics.set_gauge(
                "window.error_rate",
                errors / requests if requests else 0.0,
                **labels,
            )
        for labels in window.label_sets("query.latency_s"):
            summary = window.summary("query.latency_s", **labels)
            if summary is None:
                continue
            for stat in ("p50", "p95", "p99"):
                metrics.set_gauge(
                    f"window.latency_{stat}_s", summary[stat], **labels
                )
        for labels in window.label_sets("site.requests"):
            metrics.set_gauge(
                "window.site_qps",
                window.count("site.requests", **labels) / span,
                **labels,
            )
        for labels in window.label_sets("site.latency_s"):
            summary = window.summary("site.latency_s", **labels)
            if summary is not None:
                metrics.set_gauge(
                    "window.site_latency_p95_s", summary["p95"], **labels
                )

    def reset(self) -> None:
        self.tracer.clear()
        self.metrics.reset()
        self.events.clear()
        self.window.reset()

    def render(self, last_spans: int | None = None, last_events: int | None = 20) -> str:
        """Combined text dump: metrics, event tail, recent span trees.

        A disabled handle returns an explicit marker instead of empty
        sections — empty telemetry and no telemetry are different facts.
        """
        if not self.enabled:
            return DISABLED_REPORT
        self.publish_window_gauges()
        return (
            self.metrics.render()
            + "\n\n"
            + self.events.render(last=last_events)
            + "\n\n== traces (most recent last) ==\n"
            + self.tracer.render(last=last_spans)
        )


#: Shared no-op handle used wherever no observability was configured.
DISABLED = Observability(enabled=False)


def obs_of(network) -> Observability:
    """The observability handle attached to a network, else DISABLED."""
    obs = getattr(network, "obs", None)
    return obs if obs is not None else DISABLED


__all__ = [
    "DISABLED",
    "DISABLED_REPORT",
    "BurnRateRule",
    "Event",
    "EventLog",
    "FetchActual",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "SLO",
    "Span",
    "Tracer",
    "WindowedMetrics",
    "load_events_jsonl",
    "obs_of",
    "percentile",
    "render_explain_analyze",
]
