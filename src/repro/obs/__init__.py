"""Observability: span tracing, metrics, and EXPLAIN ANALYZE.

The paper's experiments reason about *why* a plan was chosen and *where* a
global operation spends its time; this package makes both first-class
instead of ad-hoc :class:`~repro.net.MessageTrace` arithmetic:

- :class:`Tracer` / :class:`~repro.obs.trace.Span` — nested spans threaded
  through the query processor, executor, gateways, 2PC coordinator, and
  deadlock monitor, carrying wall-clock and simulated durations
- :class:`MetricsRegistry` — counters / gauges / histograms (p50/p95/p99)
  for rows and bytes shipped per site, messages by purpose, fetch latency,
  2PC outcomes, deadlock aborts, and fault-injector drops
- :func:`render_explain_analyze` — the executed plan annotated with actual
  per-fetch rows/bytes/time against the optimizer's estimates
  (``GlobalResult.explain_analyze()``)

One :class:`Observability` handle bundles a tracer and a registry; a
:class:`~repro.myriad.MyriadSystem` owns one (``system.obs``, with
``system.metrics`` / ``system.tracer`` shortcuts) and shares it with every
layer through the simulated :class:`~repro.net.Network`.  Everything is
zero-dependency and near-free when disabled
(``MyriadSystem(observability=False)``).
"""

from __future__ import annotations

from repro.obs.events import Event, EventLog, load_events_jsonl
from repro.obs.explain import FetchActual, render_explain_analyze
from repro.obs.metrics import MetricsRegistry, percentile
from repro.obs.trace import NULL_SPAN, Span, Tracer

#: Marker returned by reports/exporters when observability is off, so a
#: disabled handle can never be mistaken for a quiet (but observed) run.
DISABLED_REPORT = (
    "observability disabled: no metrics, traces, or events were recorded\n"
    "(construct the system with observability=True to collect telemetry)"
)


class Observability:
    """One tracer + metrics registry + event log, enabled or disabled together."""

    def __init__(
        self,
        enabled: bool = True,
        max_roots: int = 64,
        max_events: int = 4096,
        slow_query_threshold_s: float | None = 1.0,
    ):
        self.enabled = enabled
        self.tracer = Tracer(enabled=enabled, max_roots=max_roots)
        self.metrics = MetricsRegistry(enabled=enabled)
        self.events = EventLog(enabled=enabled, max_events=max_events)
        # Evicted root spans surface as the obs.spans_dropped counter.
        self.tracer.metrics = self.metrics
        #: Queries whose *simulated* latency crosses this threshold emit a
        #: ``query.slow`` event (with a plan digest); ``None`` disables.
        self.slow_query_threshold_s = slow_query_threshold_s

    def span(self, name: str, parent=None, **tags: object):
        return self.tracer.span(name, parent=parent, **tags)

    def emit(self, etype: str, sim_s: float | None = None, **fields: object):
        """Record one structured event (no-op when disabled)."""
        return self.events.emit(etype, sim_s=sim_s, **fields)

    def reset(self) -> None:
        self.tracer.clear()
        self.metrics.reset()
        self.events.clear()

    def render(self, last_spans: int | None = None, last_events: int | None = 20) -> str:
        """Combined text dump: metrics, event tail, recent span trees.

        A disabled handle returns an explicit marker instead of empty
        sections — empty telemetry and no telemetry are different facts.
        """
        if not self.enabled:
            return DISABLED_REPORT
        return (
            self.metrics.render()
            + "\n\n"
            + self.events.render(last=last_events)
            + "\n\n== traces (most recent last) ==\n"
            + self.tracer.render(last=last_spans)
        )


#: Shared no-op handle used wherever no observability was configured.
DISABLED = Observability(enabled=False)


def obs_of(network) -> Observability:
    """The observability handle attached to a network, else DISABLED."""
    obs = getattr(network, "obs", None)
    return obs if obs is not None else DISABLED


__all__ = [
    "DISABLED",
    "DISABLED_REPORT",
    "Event",
    "EventLog",
    "FetchActual",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "Span",
    "Tracer",
    "load_events_jsonl",
    "obs_of",
    "percentile",
    "render_explain_analyze",
]
