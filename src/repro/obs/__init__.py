"""Observability: span tracing, metrics, and EXPLAIN ANALYZE.

The paper's experiments reason about *why* a plan was chosen and *where* a
global operation spends its time; this package makes both first-class
instead of ad-hoc :class:`~repro.net.MessageTrace` arithmetic:

- :class:`Tracer` / :class:`~repro.obs.trace.Span` — nested spans threaded
  through the query processor, executor, gateways, 2PC coordinator, and
  deadlock monitor, carrying wall-clock and simulated durations
- :class:`MetricsRegistry` — counters / gauges / histograms (p50/p95/p99)
  for rows and bytes shipped per site, messages by purpose, fetch latency,
  2PC outcomes, deadlock aborts, and fault-injector drops
- :func:`render_explain_analyze` — the executed plan annotated with actual
  per-fetch rows/bytes/time against the optimizer's estimates
  (``GlobalResult.explain_analyze()``)

One :class:`Observability` handle bundles a tracer and a registry; a
:class:`~repro.myriad.MyriadSystem` owns one (``system.obs``, with
``system.metrics`` / ``system.tracer`` shortcuts) and shares it with every
layer through the simulated :class:`~repro.net.Network`.  Everything is
zero-dependency and near-free when disabled
(``MyriadSystem(observability=False)``).
"""

from __future__ import annotations

from repro.obs.explain import FetchActual, render_explain_analyze
from repro.obs.metrics import MetricsRegistry, percentile
from repro.obs.trace import NULL_SPAN, Span, Tracer


class Observability:
    """One tracer + one metrics registry, enabled or disabled together."""

    def __init__(self, enabled: bool = True, max_roots: int = 64):
        self.enabled = enabled
        self.tracer = Tracer(enabled=enabled, max_roots=max_roots)
        self.metrics = MetricsRegistry(enabled=enabled)

    def span(self, name: str, **tags: object):
        return self.tracer.span(name, **tags)

    def reset(self) -> None:
        self.tracer.clear()
        self.metrics.reset()

    def render(self, last_spans: int | None = None) -> str:
        """Combined text dump: metrics tables, then recent span trees."""
        return (
            self.metrics.render()
            + "\n\n== traces (most recent last) ==\n"
            + self.tracer.render(last=last_spans)
        )


#: Shared no-op handle used wherever no observability was configured.
DISABLED = Observability(enabled=False)


def obs_of(network) -> Observability:
    """The observability handle attached to a network, else DISABLED."""
    obs = getattr(network, "obs", None)
    return obs if obs is not None else DISABLED


__all__ = [
    "DISABLED",
    "FetchActual",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "Span",
    "Tracer",
    "obs_of",
    "percentile",
    "render_explain_analyze",
]
