"""Service-level objectives with multi-window burn-rate alerting.

An :class:`SLO` tracks one target over the request stream — availability
("99.9% of queries succeed") or latency ("99% finish under 20 simulated
ms") — and converts recent failures into *error-budget burn rate*: a burn
of 1.0 spends the budget exactly over the objective period, 14.4 spends it
fourteen times as fast.  Each :class:`BurnRateRule` pairs a long window
(sensitivity) with a short window (reset speed): the alert fires only when
**both** exceed the rule's factor, so a stale spike cannot keep an alert up
once the short window has recovered — the standard SRE multi-window,
multi-burn-rate construction.

Bookkeeping is an exact ring of (total, bad) counts per clock-aligned
bucket on the simulated clock — no sampling, bounded memory.  Transitions
emit ``slo.burn`` events (``state=firing`` / ``state=cleared``) and every
evaluation refreshes the ``slo.burn_rate`` / ``slo.alert_active`` gauges in
the shared :class:`~repro.obs.metrics.MetricsRegistry`, so alerts ride the
Prometheus/JSON exporters for free.

Evaluation happens on the request path
(:meth:`~repro.obs.Observability.record_request`); :meth:`SLO.status` is a
read-only view for dashboards and debug bundles that never mutates alert
state — introspection must not perturb the event log it is snapshotting.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass

KINDS = ("availability", "latency")


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when burn rate exceeds ``factor`` in both windows."""

    long_s: float
    short_s: float
    factor: float

    def __post_init__(self):
        if self.short_s <= 0 or self.long_s <= 0:
            raise ValueError("burn-rate windows must be positive")
        if self.short_s > self.long_s:
            raise ValueError("short window must not exceed the long window")
        if self.factor <= 0:
            raise ValueError("burn-rate factor must be positive")

    @property
    def label(self) -> str:
        return f"{self.long_s:g}s/{self.short_s:g}s"


#: Page-worthy fast burn plus a slower ticket-worthy burn, scaled to the
#: simulated clock (the classic 1h/5m + 6h/30m pair compressed to sim
#: seconds).  Override per-SLO for benchmark-sized windows.
DEFAULT_RULES = (
    BurnRateRule(long_s=60.0, short_s=5.0, factor=14.4),
    BurnRateRule(long_s=300.0, short_s=25.0, factor=6.0),
)


class _SLOBucket:
    __slots__ = ("index", "total", "bad")

    def __init__(self, index: int):
        self.index = index
        self.total = 0
        self.bad = 0


class SLO:
    """One objective over the request stream, with burn-rate alert rules."""

    def __init__(
        self,
        name: str,
        objective: float = 0.999,
        kind: str = "availability",
        threshold_s: float | None = None,
        rules: tuple[BurnRateRule, ...] | None = None,
        clock=None,
        obs=None,
    ):
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be strictly between 0 and 1")
        if kind not in KINDS:
            raise ValueError(f"unknown SLO kind {kind!r}; use one of {KINDS}")
        if kind == "latency" and threshold_s is None:
            raise ValueError("a latency SLO needs threshold_s")
        self.name = name
        self.objective = objective
        self.kind = kind
        self.threshold_s = threshold_s
        self.rules = tuple(rules) if rules else DEFAULT_RULES
        #: The error budget: the bad-request fraction the objective allows.
        self.budget = 1.0 - objective
        self.clock = clock or (lambda: 0.0)
        self.obs = obs
        # Bucket width resolves the shortest window into >= 5 slices; the
        # ring is sized to cover the longest window plus the open bucket.
        shortest = min(rule.short_s for rule in self.rules)
        longest = max(rule.long_s for rule in self.rules)
        self.bucket_s = shortest / 5.0
        self._buckets: deque[_SLOBucket] = deque(
            maxlen=int(math.ceil(longest / self.bucket_s)) + 1
        )
        self._lock = threading.Lock()
        self.alert_active = False
        self.fired = 0
        self.cleared = 0

    # -- recording ---------------------------------------------------------

    def record(self, ok: bool, latency_s: float | None = None) -> None:
        """Count one request against the objective."""
        bad = not ok
        if self.kind == "latency" and not bad:
            bad = latency_s is not None and latency_s > self.threshold_s
        index = int(self.clock() // self.bucket_s)
        with self._lock:
            if not self._buckets or self._buckets[-1].index != index:
                self._buckets.append(_SLOBucket(index))
            bucket = self._buckets[-1]
            bucket.total += 1
            if bad:
                bucket.bad += 1

    def _counts(self, window_s: float, now_index: int) -> tuple[int, int]:
        """(total, bad) inside the window (lock held by caller)."""
        cutoff = now_index - max(1, int(round(window_s / self.bucket_s)))
        total = bad = 0
        for bucket in self._buckets:
            if bucket.index > cutoff:
                total += bucket.total
                bad += bucket.bad
        return total, bad

    # -- evaluation --------------------------------------------------------

    def _rule_rows(self) -> list[dict]:
        now_index = int(self.clock() // self.bucket_s)
        rows = []
        with self._lock:
            for rule in self.rules:
                long_total, long_bad = self._counts(rule.long_s, now_index)
                short_total, short_bad = self._counts(rule.short_s, now_index)
                burn_long = (
                    (long_bad / long_total) / self.budget if long_total else 0.0
                )
                burn_short = (
                    (short_bad / short_total) / self.budget
                    if short_total
                    else 0.0
                )
                rows.append(
                    {
                        "rule": rule.label,
                        "factor": rule.factor,
                        "burn_long": burn_long,
                        "burn_short": burn_short,
                        "requests": long_total,
                        "bad": long_bad,
                        "firing": bool(
                            long_total
                            and burn_long >= rule.factor
                            and burn_short >= rule.factor
                        ),
                    }
                )
        return rows

    def evaluate(self) -> dict:
        """Re-check every rule, transition alert state, refresh gauges.

        Called from the request path; transitions emit ``slo.burn`` events
        stamped with the simulated clock, so an alert's firing time is
        joinable against breaker trips and fault events.
        """
        rows = self._rule_rows()
        firing = [row for row in rows if row["firing"]]
        now_s = self.clock()
        if firing and not self.alert_active:
            self.alert_active = True
            self.fired += 1
            self._emit("firing", firing[0], now_s)
        elif not firing and self.alert_active:
            self.alert_active = False
            self.cleared += 1
            self._emit("cleared", rows[0] if rows else None, now_s)
        if self.obs is not None:
            metrics = self.obs.metrics
            for row in rows:
                metrics.set_gauge(
                    "slo.burn_rate",
                    row["burn_long"],
                    slo=self.name,
                    window=row["rule"].split("/", 1)[0],
                )
            metrics.set_gauge(
                "slo.alert_active",
                1.0 if self.alert_active else 0.0,
                slo=self.name,
            )
        return self._status_dict(rows)

    def _emit(self, state: str, row: dict | None, now_s: float) -> None:
        if self.obs is None:
            return
        fields = {
            "slo": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "state": state,
        }
        if row is not None:
            fields.update(
                rule=row["rule"],
                factor=row["factor"],
                burn_long=round(row["burn_long"], 6),
                burn_short=round(row["burn_short"], 6),
            )
        self.obs.emit("slo.burn", sim_s=now_s, **fields)

    def status(self) -> dict:
        """Read-only view: burn rates plus the *current* alert state.

        Never transitions the alert or emits events — safe to call from
        dashboards and introspection snapshots.
        """
        return self._status_dict(self._rule_rows())

    def _status_dict(self, rows: list[dict]) -> dict:
        out = {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "alert_active": self.alert_active,
            "fired": self.fired,
            "cleared": self.cleared,
            "rules": rows,
        }
        if self.threshold_s is not None:
            out["threshold_s"] = self.threshold_s
        return out
