"""EXPLAIN ANALYZE for global queries.

Renders an executed :class:`~repro.query.executor.GlobalResult` as the plan
that ran, annotated per fetch with the *actual* rows / bytes / simulated
time measured during execution next to the optimizer's *estimates* — so the
paper's simple-vs-full-fledged optimizer claims (experiment E2) are
auditable from a single report: a bad estimate shows up as an est/actual gap
on the exact fetch that caused it.

This module only formats; the measurements are collected by
:class:`~repro.query.executor.GlobalExecutor` (one :class:`FetchActual` per
fetch) and the estimates by the optimizers (stored on each
:class:`~repro.query.localizer.Fetch`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FetchActual:
    """Measured execution of one fetch: what actually crossed the wire."""

    rows: int = 0
    bytes: int = 0
    messages: int = 0
    sim_s: float = 0.0
    wall_s: float = 0.0
    #: True when the fragment came from the federation-site fragment cache
    #: (zero messages crossed the wire for this fetch).
    cached: bool = False
    #: Pre-compression bytes of this fetch's messages; equals ``bytes``
    #: unless wire compression shrank the result payload.
    raw_bytes: int = 0
    #: Column-encoding summary of the shipped fragment (e.g. ``"dict,rle"``)
    #: when wire compression encoded it; None otherwise.
    codec: str | None = None


def _fmt_est(value: float | None, unit: str = "") -> str:
    if value is None:
        return "?"
    if unit == "ms":
        return f"{value * 1000:.3f}ms"
    return f"{value:.0f}"


def render_explain_analyze(result) -> str:
    """Text report: executed plan with per-fetch actuals vs. estimates.

    ``result`` is a :class:`~repro.query.executor.GlobalResult`; duck-typed
    here to keep the observability layer free of query-layer imports.
    """
    plan = result.plan
    trace = result.trace
    missing = set(getattr(result, "missing_sites", ()) or ())
    header = f"EXPLAIN ANALYZE GlobalPlan[{plan.strategy}]"
    request_id = getattr(result, "request_id", None)
    if request_id is not None:
        # The same id is on the execution's spans, events, and message
        # records, so a debug bundle joins this report to its trace.
        header += f" request={request_id}"
    lines = [header]
    if getattr(result, "degraded", False):
        lines.append(
            "  DEGRADED: partial result, missing sites: "
            + ", ".join(sorted(missing))
        )
    estimated = (
        f"{plan.estimated_cost_s * 1000:.3f}ms"
        if plan.estimated_cost_s is not None
        else "?"
    )
    lines.append(
        f"  plan: estimated cost {estimated}; "
        f"measured {trace.elapsed_s * 1000:.3f}ms simulated, "
        f"{trace.message_count} messages, {trace.total_bytes} bytes"
    )
    for fetch in plan.fetches:
        lines.append("  " + plan.fetch_summary(fetch))
        replanned = (
            " (replanned)" if getattr(fetch, "replanned", False) else ""
        )
        lines.append(
            "    est:    rows={} bytes={} time={}{}".format(
                _fmt_est(fetch.est_rows),
                _fmt_est(fetch.est_bytes),
                _fmt_est(fetch.est_cost_s, "ms"),
                replanned,
            )
        )
        actual = result.fetch_actuals.get(fetch.index)
        if actual is None:
            if fetch.site in missing:
                lines.append(
                    f"    actual: (skipped: site {fetch.site!r} unreachable, "
                    "empty fragment substituted)"
                )
            else:
                lines.append("    actual: (not executed)")
            continue
        cached = " cached" if actual.cached else ""
        wire = ""
        if actual.raw_bytes > actual.bytes:
            saved = 100.0 * (1 - actual.bytes / actual.raw_bytes)
            codec = f" codec={actual.codec}" if actual.codec else ""
            wire = f" raw={actual.raw_bytes} (-{saved:.0f}%{codec})"
        lines.append(
            f"    actual: rows={actual.rows} bytes={actual.bytes}{wire} "
            f"time={actual.sim_s * 1000:.3f}ms "
            f"(msgs={actual.messages}, wall={actual.wall_s * 1000:.3f}ms)"
            f"{cached}"
        )
    for note in plan.notes:
        lines.append(f"  note: {note}")
    from repro.sql.printer import SQLPrinter

    lines.append("  residual: " + SQLPrinter().print_query(plan.query))
    lines.append(
        f"  result: {len(result.rows)} rows "
        f"({result.fetched_rows} fetched from {len(plan.fetches)} fragments)"
    )
    return "\n".join(lines)
