"""Metrics registry: counters, gauges, and histograms with percentiles.

Zero-dependency and deliberately simple: metrics are identified by a name
plus sorted ``(label, value)`` pairs, histogram percentiles are computed on
read (recording is an O(1) append), and everything is guarded by one lock so
the deadlock monitor's thread can record sweeps concurrently with queries.

A disabled registry (``MetricsRegistry(enabled=False)``) turns every
recording call into an immediate return, which is what the E12 benchmark
measures the overhead of.
"""

from __future__ import annotations

import threading

#: Key identifying one metric series: (name, ((label, value), ...)).
MetricKey = tuple

PERCENTILES = (50.0, 95.0, 99.0)


def _key(name: str, labels: dict[str, object]) -> MetricKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def percentile(values: list[float], pct: float) -> float:
    """Nearest-rank percentile of a non-empty value list.

    ``pct`` is clamped to [0, 100]; a single-sample list returns that
    sample for every percentile, and ``pct=100`` returns the maximum.
    An empty list is a caller error and raises :class:`ValueError`
    (``histogram_summary`` returns ``None`` for never-observed series
    instead of calling this).
    """
    if not values:
        raise ValueError("percentile() of an empty value list")
    pct = max(0.0, min(100.0, pct))
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(pct / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class MetricsRegistry:
    """Federation-wide counters, gauges, and latency histograms."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._histograms: dict[MetricKey, list[float]] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            self._histograms.setdefault(key, []).append(value)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str, **labels: object) -> float:
        """Value of one counter series (0.0 when never incremented)."""
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all its label combinations."""
        with self._lock:
            return sum(
                value
                for (metric, _), value in self._counters.items()
                if metric == name
            )

    def gauge(self, name: str, **labels: object) -> float | None:
        with self._lock:
            return self._gauges.get(_key(name, labels))

    def histogram_summary(
        self, name: str, **labels: object
    ) -> dict[str, float] | None:
        """count/min/max/mean/p50/p95/p99 of one histogram series."""
        with self._lock:
            values = list(self._histograms.get(_key(name, labels), ()))
        if not values:
            return None
        summary = {
            "count": float(len(values)),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
        }
        for pct in PERCENTILES:
            summary[f"p{pct:g}"] = percentile(values, pct)
        return summary

    def counter_series(self) -> list[tuple[str, dict[str, str], float]]:
        """Every counter as ``(name, labels, value)``, sorted (exporters)."""
        with self._lock:
            items = sorted(self._counters.items())
        return [(name, dict(labels), value) for (name, labels), value in items]

    def gauge_series(self) -> list[tuple[str, dict[str, str], float]]:
        """Every gauge as ``(name, labels, value)``, sorted (exporters)."""
        with self._lock:
            items = sorted(self._gauges.items())
        return [(name, dict(labels), value) for (name, labels), value in items]

    def histogram_series(self) -> list[tuple[str, dict[str, str], dict]]:
        """Every histogram as ``(name, labels, summary)``, sorted."""
        with self._lock:
            keys = sorted(self._histograms)
        out = []
        for name, labels in keys:
            summary = self.histogram_summary(name, **dict(labels))
            if summary is not None:
                out.append((name, dict(labels), summary))
        return out

    def snapshot(self) -> dict[str, dict]:
        """Plain-dict dump of every series (stable ordering for reports)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histogram_keys = list(self._histograms)
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for key in sorted(counters):
            out["counters"][_label_text(key)] = counters[key]
        for key in sorted(gauges):
            out["gauges"][_label_text(key)] = gauges[key]
        for key in sorted(histogram_keys):
            name, labels = key
            out["histograms"][_label_text(key)] = self.histogram_summary(
                name, **dict(labels)
            )
        return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """Text report of every metric, grouped by kind."""
        snap = self.snapshot()
        lines = ["== metrics =="]
        if not any(snap.values()):
            lines.append("(no metrics recorded)")
            return "\n".join(lines)
        if snap["counters"]:
            lines.append("-- counters --")
            width = max(len(k) for k in snap["counters"])
            for series, value in snap["counters"].items():
                lines.append(f"{series.ljust(width)}  {value:g}")
        if snap["gauges"]:
            lines.append("-- gauges --")
            width = max(len(k) for k in snap["gauges"])
            for series, value in snap["gauges"].items():
                lines.append(f"{series.ljust(width)}  {value:g}")
        if snap["histograms"]:
            lines.append("-- histograms --")
            for series, summary in snap["histograms"].items():
                stats = " ".join(
                    f"{stat}={value:.6g}" for stat, value in summary.items()
                )
                lines.append(f"{series}  {stats}")
        return "\n".join(lines)


def _label_text(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"
