"""Metrics registry: counters, gauges, and histograms with percentiles.

Zero-dependency and deliberately simple: metrics are identified by a name
plus sorted ``(label, value)`` pairs, histogram percentiles are computed on
read (recording is O(1)), and everything is guarded by one lock so the
deadlock monitor's thread can record sweeps concurrently with queries.

Histogram series are *bounded*: each keeps exact count / sum / min / max
forever, but retains at most ``histogram_cap`` samples via a deterministic
Algorithm-R reservoir (seeded from the series key, so two identically-fed
registries stay byte-identical).  Up to the cap, percentiles are exact
nearest-rank; past it they are nearest-rank over a uniform sample of the
full history — an approximation whose error shrinks as the cap grows, while
memory stays O(cap) per series no matter how long the system serves.

A disabled registry (``MetricsRegistry(enabled=False)``) turns every
recording call into an immediate return, which is what the E12 benchmark
measures the overhead of.
"""

from __future__ import annotations

import math
import random
import threading
import zlib

#: Key identifying one metric series: (name, ((label, value), ...)).
MetricKey = tuple

PERCENTILES = (50.0, 95.0, 99.0)


def _key(name: str, labels: dict[str, object]) -> MetricKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def percentile(values: list[float], pct: float) -> float:
    """Nearest-rank percentile of a non-empty value list.

    ``pct`` is clamped to [0, 100]; a single-sample list returns that
    sample for every percentile, and ``pct=100`` returns the maximum.
    An empty list is a caller error and raises :class:`ValueError`
    (``histogram_summary`` returns ``None`` for never-observed series
    instead of calling this).
    """
    if not values:
        raise ValueError("percentile() of an empty value list")
    pct = max(0.0, min(100.0, pct))
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(pct / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class _Histogram:
    """One bounded histogram series: exact aggregates + sample reservoir."""

    __slots__ = ("count", "total", "mn", "mx", "samples", "_rng")

    def __init__(self, seed: int):
        self.count = 0
        self.total = 0.0
        self.mn = math.inf
        self.mx = -math.inf
        self.samples: list[float] = []
        # Per-series RNG seeded from the series key: replacement decisions
        # are deterministic across runs and across identically-fed
        # registries (reports and bundles stay reproducible).
        self._rng = random.Random(seed)

    def observe(self, value: float, cap: int) -> None:
        self.count += 1
        self.total += value
        if value < self.mn:
            self.mn = value
        if value > self.mx:
            self.mx = value
        if len(self.samples) < cap:
            self.samples.append(value)
        else:
            # Algorithm R: keep each of the `count` observations with equal
            # probability cap/count.
            slot = self._rng.randrange(self.count)
            if slot < cap:
                self.samples[slot] = value

    def snapshot(self) -> tuple[int, float, float, float, list[float]]:
        return (self.count, self.total, self.mn, self.mx, list(self.samples))


def _summarize(
    snap: tuple[int, float, float, float, list[float]]
) -> dict[str, float] | None:
    count, total, mn, mx, samples = snap
    if not count:
        return None
    summary = {
        "count": float(count),
        "min": mn,
        "max": mx,
        "mean": total / count,
    }
    for pct in PERCENTILES:
        summary[f"p{pct:g}"] = percentile(samples, pct)
    return summary


class MetricsRegistry:
    """Federation-wide counters, gauges, and latency histograms."""

    def __init__(self, enabled: bool = True, histogram_cap: int = 512):
        self.enabled = enabled
        if histogram_cap < 1:
            raise ValueError("histogram_cap must be at least 1")
        self.histogram_cap = histogram_cap
        self._lock = threading.Lock()
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._histograms: dict[MetricKey, _Histogram] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram(
                    zlib.crc32(repr(key).encode())
                )
            hist.observe(value, self.histogram_cap)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str, **labels: object) -> float:
        """Value of one counter series (0.0 when never incremented)."""
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all its label combinations."""
        with self._lock:
            return sum(
                value
                for (metric, _), value in self._counters.items()
                if metric == name
            )

    def gauge(self, name: str, **labels: object) -> float | None:
        with self._lock:
            return self._gauges.get(_key(name, labels))

    def histogram_summary(
        self, name: str, **labels: object
    ) -> dict[str, float] | None:
        """count/min/max/mean/p50/p95/p99 of one histogram series.

        count/min/max/mean are exact over the full history; percentiles
        are nearest-rank over the series' reservoir (exact until the
        series exceeds ``histogram_cap`` observations).
        """
        with self._lock:
            hist = self._histograms.get(_key(name, labels))
            snap = hist.snapshot() if hist is not None else None
        return _summarize(snap) if snap is not None else None

    def counter_series(self) -> list[tuple[str, dict[str, str], float]]:
        """Every counter as ``(name, labels, value)``, sorted (exporters)."""
        with self._lock:
            items = sorted(self._counters.items())
        return [(name, dict(labels), value) for (name, labels), value in items]

    def gauge_series(self) -> list[tuple[str, dict[str, str], float]]:
        """Every gauge as ``(name, labels, value)``, sorted (exporters)."""
        with self._lock:
            items = sorted(self._gauges.items())
        return [(name, dict(labels), value) for (name, labels), value in items]

    def histogram_series(self) -> list[tuple[str, dict[str, str], dict]]:
        """Every histogram as ``(name, labels, summary)``, sorted.

        All series are snapshotted in **one** critical section, so the
        result is a consistent point-in-time view even while recorders
        are running (and the lock is taken once, not once per series).
        """
        with self._lock:
            snaps = sorted(
                (key, hist.snapshot())
                for key, hist in self._histograms.items()
            )
        out = []
        for (name, labels), snap in snaps:
            summary = _summarize(snap)
            if summary is not None:
                out.append((name, dict(labels), summary))
        return out

    def snapshot(self) -> dict[str, dict]:
        """Plain-dict dump of every series (stable ordering for reports).

        Counters, gauges, and every histogram are captured in a single
        critical section — one consistent cut across all three kinds.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                key: hist.snapshot()
                for key, hist in self._histograms.items()
            }
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for key in sorted(counters):
            out["counters"][_label_text(key)] = counters[key]
        for key in sorted(gauges):
            out["gauges"][_label_text(key)] = gauges[key]
        for key in sorted(histograms):
            out["histograms"][_label_text(key)] = _summarize(histograms[key])
        return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """Text report of every metric, grouped by kind."""
        snap = self.snapshot()
        lines = ["== metrics =="]
        if not any(snap.values()):
            lines.append("(no metrics recorded)")
            return "\n".join(lines)
        if snap["counters"]:
            lines.append("-- counters --")
            width = max(len(k) for k in snap["counters"])
            for series, value in snap["counters"].items():
                lines.append(f"{series.ljust(width)}  {value:g}")
        if snap["gauges"]:
            lines.append("-- gauges --")
            width = max(len(k) for k in snap["gauges"])
            for series, value in snap["gauges"].items():
                lines.append(f"{series.ljust(width)}  {value:g}")
        if snap["histograms"]:
            lines.append("-- histograms --")
            for series, summary in snap["histograms"].items():
                stats = " ".join(
                    f"{stat}={value:.6g}" for stat, value in summary.items()
                )
                lines.append(f"{series}  {stats}")
        return "\n".join(lines)


def _label_text(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"
