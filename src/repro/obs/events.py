"""Structured event log: the durable narrative of one MYRIAD run.

Spans answer *where time went* and metrics answer *how much*; the event log
answers *what happened, in order*.  It records typed, timestamped events for
the state machinery the paper's claims rest on:

- ``2pc`` — every global-transaction state transition (BEGIN / PREPARING /
  PREPARED / COMMITTED / ABORTED / IN-DOUBT / RECOVERED), per participant
- ``deadlock.sweep`` — each detection round that found cycles, with the
  cycles and the chosen victims
- ``fault.drop`` / ``fault.crash`` / ``fault.restart`` / ``fault.partition``
  / ``fault.heal`` — everything the fault injector did to the network
- ``wal.park`` / ``wal.drain`` — pending-delivery decisions parked for
  recovery and their later draining
- ``query.slow`` — queries whose simulated latency crossed the configured
  threshold, with a digest of the executed plan
- ``gateway.timeout`` — local queries that exceeded the paper's timeout
  period (the global-deadlock signal)

The log is bounded (oldest events evicted, evictions counted), thread-safe
(the deadlock monitor emits from its own thread), and serialises to JSONL —
one JSON object per line — for the debug bundle.  Like the rest of the
observability layer it is zero-dependency and a no-op when disabled.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Event:
    """One recorded event.

    ``wall_ts`` is seconds since the epoch; ``sim_s`` is the simulated-clock
    position of the operation that emitted the event (the emitting trace's
    elapsed virtual seconds), or ``None`` when no simulated operation was in
    flight (e.g. coordinator bookkeeping).
    """

    seq: int
    type: str
    wall_ts: float
    sim_s: float | None = None
    fields: dict = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "seq": self.seq,
            "type": self.type,
            "wall_ts": self.wall_ts,
            "sim_s": self.sim_s,
        }
        payload.update(self.fields)
        return json.dumps(payload, sort_keys=True, default=str)

    @classmethod
    def from_json(cls, line: str) -> "Event":
        data = json.loads(line)
        seq = data.pop("seq")
        etype = data.pop("type")
        wall_ts = data.pop("wall_ts")
        sim_s = data.pop("sim_s", None)
        return cls(seq, etype, wall_ts, sim_s, data)


def _json_safe(value: object) -> object:
    """Coerce one field value to something ``json.dumps`` round-trips."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


class EventLog:
    """Bounded, thread-safe structured event recorder."""

    def __init__(self, enabled: bool = True, max_events: int = 4096):
        self.enabled = enabled
        self.max_events = max_events
        self._events: deque[Event] = deque()
        self._lock = threading.Lock()
        self._seq = 0
        #: Events evicted because the buffer was full — surfaced in reports
        #: so a truncated log is never mistaken for a complete one.
        self.dropped = 0

    # -- recording ---------------------------------------------------------

    def emit(
        self, etype: str, sim_s: float | None = None, **fields: object
    ) -> Event | None:
        """Record one event; returns it (or ``None`` when disabled)."""
        if not self.enabled:
            return None
        safe = {key: _json_safe(value) for key, value in fields.items()}
        with self._lock:
            event = Event(self._seq, etype, time.time(), sim_s, safe)
            self._seq += 1
            if len(self._events) >= self.max_events:
                self._events.popleft()
                self.dropped += 1
            self._events.append(event)
        return event

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def snapshot(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    def of_type(self, etype: str) -> list[Event]:
        return [event for event in self.snapshot() if event.type == etype]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    # -- serialisation -----------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line, oldest first (trailing newline)."""
        events = self.snapshot()
        if not events:
            return ""
        return "\n".join(event.to_json() for event in events) + "\n"

    def render(self, last: int | None = 20) -> str:
        """Human-readable tail of the log."""
        events = self.snapshot()
        lines = [f"== events ({len(events)} recorded, {self.dropped} dropped) =="]
        if not events:
            lines.append("(no events recorded)")
            return "\n".join(lines)
        if last is not None:
            events = events[-last:]
        for event in events:
            sim = f" sim={event.sim_s * 1000:.3f}ms" if event.sim_s is not None else ""
            detail = " ".join(
                f"{key}={value}" for key, value in sorted(event.fields.items())
            )
            lines.append(f"[{event.seq}] {event.type}{sim} {detail}".rstrip())
        return "\n".join(lines)


def load_events_jsonl(text: str) -> list[Event]:
    """Parse a JSONL event dump back into :class:`Event` objects."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(Event.from_json(line))
    return events
