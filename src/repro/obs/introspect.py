"""Live system introspection: locks, wait-for graph, 2PC states, stats.

Read-only snapshot APIs over a running :class:`~repro.myriad.MyriadSystem` —
the operational surface the paper's machinery (2PL locals, 2PC, timeout
deadlock resolution) needs to be *observable* rather than inferred:

- :func:`lock_table` — per-site held and waiting table locks by mode
- :func:`wait_for_graph` — the union of the components' wait-for edges in
  global-transaction terms, plus cycles, chosen victims, and a Graphviz DOT
  render
- :func:`transaction_states` — every known global transaction's coordinator
  state next to its per-site branch states, flagging divergence (e.g. a
  branch still PREPARED after the coordinator decided)
- :func:`federation_stats` — sites, federations, network totals, and
  transaction-manager counters in one dict

All snapshots are plain JSON-safe dicts; :func:`introspection_snapshot`
bundles the four for the debug bundle, and :func:`render_dashboard` formats
them as the human dashboard the ``repro.obs.report`` CLI prints.
"""

from __future__ import annotations

from repro.txn.deadlock import WaitForGraphDetector


# ---------------------------------------------------------------------------
# Lock table
# ---------------------------------------------------------------------------


def lock_table(system) -> dict[str, list[dict]]:
    """Per-site lock table: held and waiting locks, by resource and mode.

    Transaction ids are reported in *global* terms where the local
    transaction is a branch of a global one (``G3``), local ids otherwise.
    """
    table: dict[str, list[dict]] = {}
    for site in sorted(system.gateways):
        table[site] = system.gateways[site].lock_table()
    return table


# ---------------------------------------------------------------------------
# Wait-for graph
# ---------------------------------------------------------------------------


def wait_for_graph(system) -> dict:
    """The global wait-for graph: edges, cycles, victims, and a DOT render."""
    detector = WaitForGraphDetector(system.gateways)
    edges = detector.global_edges()
    cycles = detector.find_cycles()
    victims = detector.victims_for(cycles)
    return {
        "edges": [[str(a), str(b)] for a, b in edges],
        "cycles": [[str(txn) for txn in cycle] for cycle in cycles],
        "victims": [str(victim) for victim in victims],
        "dot": _render_dot(edges, cycles, victims),
    }


def _render_dot(edges, cycles, victims) -> str:
    """Graphviz DOT text: deadlocked nodes filled, victims double-circled."""
    deadlocked = {str(txn) for cycle in cycles for txn in cycle}
    victim_set = {str(victim) for victim in victims}
    nodes = sorted(
        {str(a) for a, _ in edges}
        | {str(b) for _, b in edges}
        | deadlocked
    )
    lines = ["digraph wait_for {", "  rankdir=LR;"]
    for node in nodes:
        attrs = []
        if node in deadlocked:
            attrs.append('style=filled fillcolor="#f4cccc"')
        if node in victim_set:
            attrs.append("peripheries=2")
        suffix = f" [{' '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{node}"{suffix};')
    for source, target in sorted((str(a), str(b)) for a, b in edges):
        lines.append(f'  "{source}" -> "{target}";')
    lines.append("}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Global transaction states
# ---------------------------------------------------------------------------


def transaction_states(system) -> list[dict]:
    """Coordinator state vs. per-site branch state for every known txn.

    Covers active global transactions, branches still present at any
    gateway (including in-doubt PREPARED branches whose coordinator already
    forgot them), and parked pending deliveries.  ``divergent`` is set when
    the branches do not agree with the coordinator's view — the condition
    2PC recovery exists to repair.
    """
    gtm = system.transactions
    coordinator: dict[str, str] = {
        str(gid): txn.state.value for gid, txn in gtm.active.items()
    }
    decisions = {
        str(gid): decision
        for gid, decision in gtm.wal.coordinator_decisions().items()
    }
    branches: dict[str, dict[str, str]] = {}
    for site in sorted(system.gateways):
        for gid, state in system.gateways[site].branch_states().items():
            branches.setdefault(str(gid), {})[site] = state
    pending: dict[str, dict[str, str]] = {}
    for gid, sites in gtm.pending_deliveries.items():
        pending[str(gid)] = dict(sites)

    rows = []
    for gid in sorted(set(coordinator) | set(branches) | set(pending)):
        coord_state = coordinator.get(gid)
        decision = decisions.get(gid)
        branch_states = branches.get(gid, {})
        divergent = _is_divergent(coord_state, decision, branch_states)
        rows.append(
            {
                "global_id": gid,
                "coordinator": coord_state
                or (f"decided:{decision}" if decision else "forgotten"),
                "branches": branch_states,
                "pending_delivery": pending.get(gid, {}),
                "divergent": divergent,
            }
        )
    return rows


def _is_divergent(
    coord_state: str | None, decision: str | None, branch_states: dict[str, str]
) -> bool:
    states = set(branch_states.values())
    # A PREPARED branch after the coordinator decided (or forgot) is in
    # doubt; mixed terminal branch states can never be right.
    if "prepared" in states and coord_state != "preparing":
        return True
    terminal = states & {"committed", "aborted"}
    if len(terminal) > 1:
        return True
    return False


# ---------------------------------------------------------------------------
# Federation stats
# ---------------------------------------------------------------------------


def federation_stats(system) -> dict:
    """One JSON-safe dict of the installation's shape and counters."""
    gtm = system.transactions
    network = system.network
    health = getattr(network, "health", None)
    return {
        "health": (
            health.snapshot(sites=system.gateways)
            if health is not None
            else {}
        ),
        "sites": {
            site: {
                "dialect": type(system.components[site]).__name__,
                "exports": gateway.export_names(),
                "queries_executed": gateway.queries_executed,
                "timeouts": gateway.timeouts,
                "snapshot_reads": gateway.snapshot_reads,
                "open_branches": len(gateway.branch_states()),
            }
            for site, gateway in sorted(system.gateways.items())
        },
        "sessions": (
            system._server.stats()
            if getattr(system, "_server", None) is not None
            else {}
        ),
        "federations": {
            federation.name: {"relations": sorted(federation.relations)}
            for federation in system.federations.values()
        },
        "network": {
            "messages": network.total_messages,
            "bytes": network.total_bytes,
            "dropped": network.dropped_messages,
        },
        "transactions": {
            "active": len(gtm.active),
            "commits": gtm.commits,
            "aborts": gtm.aborts,
            "timeout_aborts": gtm.timeout_aborts,
            "vote_no_aborts": gtm.vote_no_aborts,
            "decision_retries": gtm.decision_retries,
            "decisions_parked": gtm.decisions_parked,
            "decisions_recovered": gtm.decisions_recovered,
        },
    }


def introspection_snapshot(system) -> dict:
    """All four snapshots in one dict (the bundle's introspection.json)."""
    return {
        "lock_table": lock_table(system),
        "wait_for_graph": wait_for_graph(system),
        "transaction_states": transaction_states(system),
        "federation_stats": federation_stats(system),
    }


# ---------------------------------------------------------------------------
# Human dashboard
# ---------------------------------------------------------------------------


def render_dashboard(snapshot: dict) -> str:
    """Format an :func:`introspection_snapshot` as the CLI's dashboard."""
    lines: list[str] = []

    stats = snapshot.get("federation_stats", {})
    lines.append("== federation ==")
    for site, info in stats.get("sites", {}).items():
        lines.append(
            f"site {site} [{info['dialect']}]: "
            f"exports={','.join(info['exports']) or '-'} "
            f"queries={info['queries_executed']} "
            f"timeouts={info['timeouts']} "
            f"open_branches={info['open_branches']}"
        )
    for name, info in stats.get("federations", {}).items():
        lines.append(
            f"federation {name}: relations={','.join(info['relations']) or '-'}"
        )
    sessions = stats.get("sessions") or {}
    if sessions:
        lines.append(
            f"sessions: open={sessions.get('open', 0)} "
            f"peak={sessions.get('peak', 0)} "
            f"queries={sessions.get('queries', 0)} "
            f"updates={sessions.get('updates', 0)} "
            f"commits={sessions.get('commits', 0)} "
            f"aborts={sessions.get('aborts', 0)}"
        )
    net = stats.get("network", {})
    lines.append(
        f"network: messages={net.get('messages', 0)} "
        f"bytes={net.get('bytes', 0)} dropped={net.get('dropped', 0)}"
    )
    health = stats.get("health", {})
    unhealthy = {
        site: info
        for site, info in sorted(health.items())
        if info.get("state") != "closed" or info.get("trips")
    }
    if unhealthy:
        lines.append(
            "health: "
            + " ".join(
                f"{site}={info['state'].upper()}"
                f"(fails={info['consecutive_failures']},"
                f"trips={info['trips']})"
                for site, info in unhealthy.items()
            )
        )
    elif health:
        lines.append("health: all breakers CLOSED")
    txn = stats.get("transactions", {})
    lines.append(
        "transactions: "
        + " ".join(f"{key}={value}" for key, value in txn.items())
    )

    lines.append("")
    lines.append("== lock table ==")
    any_locks = False
    for site, resources in snapshot.get("lock_table", {}).items():
        for entry in resources:
            any_locks = True
            holders = " ".join(
                f"{txn}:{mode}" for txn, mode in sorted(entry["holders"].items())
            )
            waiters = " ".join(
                f"{txn}:{mode}?" for txn, mode in entry["waiters"]
            )
            lines.append(
                f"{site}.{entry['resource']}: held[{holders}]"
                + (f" waiting[{waiters}]" if waiters else "")
            )
    if not any_locks:
        lines.append("(no locks held)")

    lines.append("")
    lines.append("== wait-for graph ==")
    graph = snapshot.get("wait_for_graph", {})
    if graph.get("edges"):
        for source, target in graph["edges"]:
            lines.append(f"{source} -> {target}")
        for cycle in graph.get("cycles", []):
            lines.append(f"cycle: {' -> '.join(cycle + [cycle[0]])}")
        if graph.get("victims"):
            lines.append(f"victims: {', '.join(graph['victims'])}")
    else:
        lines.append("(no waits)")

    lines.append("")
    lines.append("== global transactions ==")
    states = snapshot.get("transaction_states", [])
    if states:
        for row in states:
            branch_text = " ".join(
                f"{site}={state}" for site, state in sorted(row["branches"].items())
            )
            pending = row.get("pending_delivery") or {}
            pending_text = (
                " pending[" + " ".join(f"{s}:{d}" for s, d in sorted(pending.items())) + "]"
                if pending
                else ""
            )
            flag = "  << DIVERGENT" if row["divergent"] else ""
            lines.append(
                f"{row['global_id']}: coordinator={row['coordinator']} "
                f"{branch_text}{pending_text}{flag}".rstrip()
            )
    else:
        lines.append("(no global transactions known)")
    return "\n".join(lines)
