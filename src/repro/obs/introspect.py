"""Live system introspection: locks, wait-for graph, 2PC states, stats.

Read-only snapshot APIs over a running :class:`~repro.myriad.MyriadSystem` —
the operational surface the paper's machinery (2PL locals, 2PC, timeout
deadlock resolution) needs to be *observable* rather than inferred:

- :func:`lock_table` — per-site held and waiting table locks by mode
- :func:`wait_for_graph` — the union of the components' wait-for edges in
  global-transaction terms, plus cycles, chosen victims, and a Graphviz DOT
  render
- :func:`transaction_states` — every known global transaction's coordinator
  state next to its per-site branch states, flagging divergence (e.g. a
  branch still PREPARED after the coordinator decided)
- :func:`federation_stats` — sites, federations, network totals, and
  transaction-manager counters in one dict

All snapshots are plain JSON-safe dicts; :func:`introspection_snapshot`
bundles the four for the debug bundle, and :func:`render_dashboard` formats
them as the human dashboard the ``repro.obs.report`` CLI prints.
"""

from __future__ import annotations

from repro.txn.deadlock import WaitForGraphDetector


# ---------------------------------------------------------------------------
# Lock table
# ---------------------------------------------------------------------------


def lock_table(system) -> dict[str, list[dict]]:
    """Per-site lock table: held and waiting locks, by resource and mode.

    Transaction ids are reported in *global* terms where the local
    transaction is a branch of a global one (``G3``), local ids otherwise.
    """
    table: dict[str, list[dict]] = {}
    for site in sorted(system.gateways):
        table[site] = system.gateways[site].lock_table()
    return table


# ---------------------------------------------------------------------------
# Wait-for graph
# ---------------------------------------------------------------------------


def wait_for_graph(system) -> dict:
    """The global wait-for graph: edges, cycles, victims, and a DOT render."""
    detector = WaitForGraphDetector(system.gateways)
    edges = detector.global_edges()
    cycles = detector.find_cycles()
    victims = detector.victims_for(cycles)
    return {
        "edges": [[str(a), str(b)] for a, b in edges],
        "cycles": [[str(txn) for txn in cycle] for cycle in cycles],
        "victims": [str(victim) for victim in victims],
        "dot": _render_dot(edges, cycles, victims),
    }


def _render_dot(edges, cycles, victims) -> str:
    """Graphviz DOT text: deadlocked nodes filled, victims double-circled."""
    deadlocked = {str(txn) for cycle in cycles for txn in cycle}
    victim_set = {str(victim) for victim in victims}
    nodes = sorted(
        {str(a) for a, _ in edges}
        | {str(b) for _, b in edges}
        | deadlocked
    )
    lines = ["digraph wait_for {", "  rankdir=LR;"]
    for node in nodes:
        attrs = []
        if node in deadlocked:
            attrs.append('style=filled fillcolor="#f4cccc"')
        if node in victim_set:
            attrs.append("peripheries=2")
        suffix = f" [{' '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{node}"{suffix};')
    for source, target in sorted((str(a), str(b)) for a, b in edges):
        lines.append(f'  "{source}" -> "{target}";')
    lines.append("}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Global transaction states
# ---------------------------------------------------------------------------


def transaction_states(system) -> list[dict]:
    """Coordinator state vs. per-site branch state for every known txn.

    Covers active global transactions, branches still present at any
    gateway (including in-doubt PREPARED branches whose coordinator already
    forgot them), and parked pending deliveries.  ``divergent`` is set when
    the branches do not agree with the coordinator's view — the condition
    2PC recovery exists to repair.
    """
    gtm = system.transactions
    coordinator: dict[str, str] = {
        str(gid): txn.state.value for gid, txn in gtm.active.items()
    }
    decisions = {
        str(gid): decision
        for gid, decision in gtm.wal.coordinator_decisions().items()
    }
    branches: dict[str, dict[str, str]] = {}
    for site in sorted(system.gateways):
        for gid, state in system.gateways[site].branch_states().items():
            branches.setdefault(str(gid), {})[site] = state
    pending: dict[str, dict[str, str]] = {}
    for gid, sites in gtm.pending_deliveries.items():
        pending[str(gid)] = dict(sites)

    rows = []
    for gid in sorted(set(coordinator) | set(branches) | set(pending)):
        coord_state = coordinator.get(gid)
        decision = decisions.get(gid)
        branch_states = branches.get(gid, {})
        divergent = _is_divergent(coord_state, decision, branch_states)
        rows.append(
            {
                "global_id": gid,
                "coordinator": coord_state
                or (f"decided:{decision}" if decision else "forgotten"),
                "branches": branch_states,
                "pending_delivery": pending.get(gid, {}),
                "divergent": divergent,
            }
        )
    return rows


def _is_divergent(
    coord_state: str | None, decision: str | None, branch_states: dict[str, str]
) -> bool:
    states = set(branch_states.values())
    # A PREPARED branch after the coordinator decided (or forgot) is in
    # doubt; mixed terminal branch states can never be right.
    if "prepared" in states and coord_state != "preparing":
        return True
    terminal = states & {"committed", "aborted"}
    if len(terminal) > 1:
        return True
    return False


# ---------------------------------------------------------------------------
# Federation stats
# ---------------------------------------------------------------------------


def _mvcc_stats(dbms) -> dict:
    """Snapshot-horizon facts for one component DBMS (empty if no MVCC)."""
    manager = getattr(dbms, "transactions", None)
    if manager is None:
        return {}
    commit_ts = manager.commit_ts
    oldest = manager.oldest_snapshot_ts()
    return {
        "commit_ts": commit_ts,
        "active_snapshots": manager.active_snapshots(),
        "oldest_snapshot_ts": oldest,
        # How far version GC is held back by the oldest open read view,
        # in commit timestamps; 0 means vacuum can prune to "now".
        "snapshot_horizon_age": commit_ts - oldest,
    }


def _window_stats(obs) -> dict:
    """Rolling per-federation and per-site rates from the windowed ring."""
    window = obs.window
    span = window.window_s
    out: dict = {"window_s": span, "federations": {}, "sites": {}}
    for labels in window.label_sets("query.requests"):
        requests = window.count("query.requests", **labels)
        errors = window.count("query.errors", **labels)
        summary = window.summary("query.latency_s", **labels)
        out["federations"][labels.get("federation", "")] = {
            "requests": requests,
            "qps": requests / span,
            "error_rate": errors / requests if requests else 0.0,
            "latency_p50_s": summary["p50"] if summary else None,
            "latency_p95_s": summary["p95"] if summary else None,
            "latency_p99_s": summary["p99"] if summary else None,
        }
    for labels in window.label_sets("site.requests"):
        requests = window.count("site.requests", **labels)
        summary = window.summary("site.latency_s", **labels)
        out["sites"][labels.get("site", "")] = {
            "requests": requests,
            "qps": requests / span,
            "latency_p95_s": summary["p95"] if summary else None,
        }
    return out


def _cache_stats(metrics) -> dict:
    """Hit ratios of the global plan cache and the fragment caches."""
    out = {}
    for cache in ("plancache", "fragcache"):
        hits = metrics.counter_total(f"{cache}.hit")
        misses = metrics.counter_total(f"{cache}.miss")
        lookups = hits + misses
        out[cache] = {
            "hits": hits,
            "misses": misses,
            "hit_ratio": hits / lookups if lookups else None,
        }
    # Wire-compression savings of fragments stored encoded (zero with the
    # wire_compression knob off — the counters are never bumped).
    bytes_raw = metrics.counter_total("fragcache.bytes_raw")
    bytes_wire = metrics.counter_total("fragcache.bytes_wire")
    out["fragcache"]["bytes_raw"] = bytes_raw
    out["fragcache"]["bytes_wire"] = bytes_wire
    out["fragcache"]["bytes_saved"] = bytes_raw - bytes_wire
    out["fragcache"]["compression_ratio"] = (
        bytes_raw / bytes_wire if bytes_wire else None
    )
    return out


def federation_stats(system) -> dict:
    """One JSON-safe dict of the installation's shape and counters."""
    gtm = system.transactions
    network = system.network
    health = getattr(network, "health", None)
    obs = system.obs
    return {
        "health": (
            health.snapshot(sites=system.gateways)
            if health is not None
            else {}
        ),
        "sites": {
            site: {
                "dialect": type(system.components[site]).__name__,
                "exports": gateway.export_names(),
                "queries_executed": gateway.queries_executed,
                "timeouts": gateway.timeouts,
                "snapshot_reads": gateway.snapshot_reads,
                "open_branches": len(gateway.branch_states()),
                "mvcc": _mvcc_stats(system.components[site]),
            }
            for site, gateway in sorted(system.gateways.items())
        },
        "replication": {
            site: group.stats()
            for site, group in sorted(
                getattr(system, "replica_groups", {}).items()
            )
        },
        "windows": _window_stats(obs),
        "slos": [slo.status() for _, slo in sorted(obs.slos.items())],
        "alerts": obs.active_alerts(),
        "caches": _cache_stats(obs.metrics),
        "sessions": (
            system._server.stats()
            if getattr(system, "_server", None) is not None
            else {}
        ),
        "federations": {
            federation.name: {"relations": sorted(federation.relations)}
            for federation in system.federations.values()
        },
        "network": {
            "messages": network.total_messages,
            "bytes": network.total_bytes,
            "dropped": network.dropped_messages,
        },
        "transactions": {
            "active": len(gtm.active),
            "commits": gtm.commits,
            "aborts": gtm.aborts,
            "timeout_aborts": gtm.timeout_aborts,
            "vote_no_aborts": gtm.vote_no_aborts,
            "decision_retries": gtm.decision_retries,
            "decisions_parked": gtm.decisions_parked,
            "decisions_recovered": gtm.decisions_recovered,
        },
    }


def introspection_snapshot(system) -> dict:
    """All four snapshots in one dict (the bundle's introspection.json)."""
    return {
        "lock_table": lock_table(system),
        "wait_for_graph": wait_for_graph(system),
        "transaction_states": transaction_states(system),
        "federation_stats": federation_stats(system),
    }


# ---------------------------------------------------------------------------
# Human dashboard
# ---------------------------------------------------------------------------


def _fmt_ms(value) -> str:
    return f"{value * 1000:.3f}ms" if value is not None else "-"


def _render_ops_window(lines: list[str], stats: dict) -> None:
    """The live-operations section: rolling rates, caches, MVCC, SLOs.

    All lookups are defensive (``.get``) so dashboards render for bundles
    written before these fields existed.
    """
    windows = stats.get("windows") or {}
    slos = stats.get("slos") or []
    alerts = stats.get("alerts") or []
    caches = stats.get("caches") or {}
    if not (windows or slos or caches):
        return
    lines.append("")
    lines.append(
        f"== ops window (last {windows.get('window_s', 0):g}s simulated) =="
    )
    for fed, row in sorted((windows.get("federations") or {}).items()):
        lines.append(
            f"federation {fed or '-'}: qps={row.get('qps', 0.0):.2f} "
            f"error_rate={row.get('error_rate', 0.0) * 100:.2f}% "
            f"p50={_fmt_ms(row.get('latency_p50_s'))} "
            f"p95={_fmt_ms(row.get('latency_p95_s'))} "
            f"p99={_fmt_ms(row.get('latency_p99_s'))}"
        )
    health = stats.get("health", {})
    for site, row in sorted((windows.get("sites") or {}).items()):
        breaker = (health.get(site) or {}).get("state", "-")
        lines.append(
            f"site {site}: qps={row.get('qps', 0.0):.2f} "
            f"p95={_fmt_ms(row.get('latency_p95_s'))} "
            f"breaker={breaker.upper()}"
        )
    for name, row in sorted(caches.items()):
        ratio = row.get("hit_ratio")
        ratio_text = f"{ratio * 100:.1f}%" if ratio is not None else "-"
        codec = ""
        if row.get("bytes_saved"):
            codec = (
                f" wire_saved={row['bytes_saved']:g}B "
                f"(x{row.get('compression_ratio') or 0:.2f})"
            )
        lines.append(
            f"cache {name}: hit_ratio={ratio_text} "
            f"(hits={row.get('hits', 0):g} misses={row.get('misses', 0):g})"
            f"{codec}"
        )
    for site, info in sorted((stats.get("sites") or {}).items()):
        mvcc = info.get("mvcc") or {}
        if mvcc:
            lines.append(
                f"mvcc {site}: commit_ts={mvcc.get('commit_ts', 0)} "
                f"snapshots={mvcc.get('active_snapshots', 0)} "
                f"horizon_age={mvcc.get('snapshot_horizon_age', 0)}"
            )
    for status in slos:
        worst = max(
            (rule.get("burn_long", 0.0) for rule in status.get("rules", [])),
            default=0.0,
        )
        state = "FIRING" if status.get("alert_active") else "ok"
        lines.append(
            f"slo {status.get('name', '?')} "
            f"[{status.get('kind', '?')} "
            f"{status.get('objective', 0.0) * 100:g}%]: {state} "
            f"worst_burn={worst:.2f} fired={status.get('fired', 0)} "
            f"cleared={status.get('cleared', 0)}"
        )
    for alert in alerts:
        firing = [
            rule for rule in alert.get("rules", []) if rule.get("firing")
        ]
        rule = firing[0] if firing else {}
        lines.append(
            f"ALERT {alert.get('name', '?')}: rule={rule.get('rule', '-')} "
            f"burn_long={rule.get('burn_long', 0.0):.2f} "
            f"burn_short={rule.get('burn_short', 0.0):.2f}"
        )


def render_dashboard(snapshot: dict) -> str:
    """Format an :func:`introspection_snapshot` as the CLI's dashboard."""
    lines: list[str] = []

    stats = snapshot.get("federation_stats", {})
    lines.append("== federation ==")
    for site, info in stats.get("sites", {}).items():
        lines.append(
            f"site {site} [{info['dialect']}]: "
            f"exports={','.join(info['exports']) or '-'} "
            f"queries={info['queries_executed']} "
            f"timeouts={info['timeouts']} "
            f"open_branches={info['open_branches']}"
        )
    for name, info in stats.get("federations", {}).items():
        lines.append(
            f"federation {name}: relations={','.join(info['relations']) or '-'}"
        )
    sessions = stats.get("sessions") or {}
    if sessions:
        lines.append(
            f"sessions: open={sessions.get('open', 0)}"
            f"/{sessions.get('max', 0)} "
            f"peak={sessions.get('peak', 0)} "
            f"queries={sessions.get('queries', 0)} "
            f"updates={sessions.get('updates', 0)} "
            f"commits={sessions.get('commits', 0)} "
            f"aborts={sessions.get('aborts', 0)}"
        )
    net = stats.get("network", {})
    lines.append(
        f"network: messages={net.get('messages', 0)} "
        f"bytes={net.get('bytes', 0)} dropped={net.get('dropped', 0)}"
    )
    health = stats.get("health", {})
    unhealthy = {
        site: info
        for site, info in sorted(health.items())
        if info.get("state") != "closed" or info.get("trips")
    }
    if unhealthy:
        lines.append(
            "health: "
            + " ".join(
                f"{site}={info['state'].upper()}"
                f"(fails={info['consecutive_failures']},"
                f"trips={info['trips']})"
                for site, info in unhealthy.items()
            )
        )
    elif health:
        lines.append("health: all breakers CLOSED")
    txn = stats.get("transactions", {})
    lines.append(
        "transactions: "
        + " ".join(f"{key}={value}" for key, value in txn.items())
    )

    replication = stats.get("replication") or {}
    if replication:
        lines.append("")
        lines.append("== replication ==")
        for site, group in sorted(replication.items()):
            staleness = group.get("staleness") or {}
            worst = max(staleness.values(), default=0)
            lines.append(
                f"group {site}: replicas={group.get('replicas', 0)} "
                f"leader={group.get('leader', '-')} "
                f"term={group.get('term', 0)} "
                f"commit_index={group.get('commit_index', 0)} "
                f"elections={group.get('elections', 0)} "
                f"failovers={group.get('failovers', 0)} "
                f"redirects={group.get('redirects', 0)} "
                f"follower_reads={group.get('follower_reads', 0)} "
                f"max_staleness={worst}"
            )

    _render_ops_window(lines, stats)

    lines.append("")
    lines.append("== lock table ==")
    any_locks = False
    for site, resources in snapshot.get("lock_table", {}).items():
        for entry in resources:
            any_locks = True
            holders = " ".join(
                f"{txn}:{mode}" for txn, mode in sorted(entry["holders"].items())
            )
            waiters = " ".join(
                f"{txn}:{mode}?" for txn, mode in entry["waiters"]
            )
            lines.append(
                f"{site}.{entry['resource']}: held[{holders}]"
                + (f" waiting[{waiters}]" if waiters else "")
            )
    if not any_locks:
        lines.append("(no locks held)")

    lines.append("")
    lines.append("== wait-for graph ==")
    graph = snapshot.get("wait_for_graph", {})
    if graph.get("edges"):
        for source, target in graph["edges"]:
            lines.append(f"{source} -> {target}")
        for cycle in graph.get("cycles", []):
            lines.append(f"cycle: {' -> '.join(cycle + [cycle[0]])}")
        if graph.get("victims"):
            lines.append(f"victims: {', '.join(graph['victims'])}")
    else:
        lines.append("(no waits)")

    lines.append("")
    lines.append("== global transactions ==")
    states = snapshot.get("transaction_states", [])
    if states:
        for row in states:
            branch_text = " ".join(
                f"{site}={state}" for site, state in sorted(row["branches"].items())
            )
            pending = row.get("pending_delivery") or {}
            pending_text = (
                " pending[" + " ".join(f"{s}:{d}" for s, d in sorted(pending.items())) + "]"
                if pending
                else ""
            )
            flag = "  << DIVERGENT" if row["divergent"] else ""
            lines.append(
                f"{row['global_id']}: coordinator={row['coordinator']} "
                f"{branch_text}{pending_text}{flag}".rstrip()
            )
    else:
        lines.append("(no global transactions known)")
    return "\n".join(lines)
