"""``python -m repro.obs.report`` — the operator's view of a MYRIAD run.

Three modes:

- ``--bundle DIR`` — load a debug bundle written by
  ``MyriadSystem.dump_debug_bundle`` and print its observability report
  (byte-for-byte as recorded) followed by the introspection dashboard and
  bundle inventory
- ``--demo [--dump DIR]`` — run a small deterministic workload (queries,
  2PC commits/aborts, an injected decision loss with recovery) and print
  the live dashboard; ``--dump`` also writes a bundle
- ``--selftest`` — run the demo, dump a bundle to a temp directory, reload
  it, and verify the round trip (report byte-identical, metrics lossless,
  traces and Prometheus text schema-valid); exits non-zero on any mismatch

With no arguments, ``--demo`` runs.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile


def build_demo_system():
    """A small deterministic run exercising every telemetry source."""
    from repro.errors import TwoPhaseCommitError
    from repro.workloads import build_bank_sites

    # slow_query_threshold_s=0 makes every query cross the slow-query
    # threshold so the event log has query.slow entries to show.
    system = build_bank_sites(
        3, 4, query_timeout=2.0, slow_query_threshold_s=0.0
    )
    # A demo SLO so the ops-window section of the dashboard has burn-rate
    # rows (the healthy demo traffic never fires the alert).
    system.add_slo("availability", objective=0.99)

    system.query("bank", "SELECT COUNT(*) FROM accounts")
    system.query("bank", "SELECT SUM(balance) FROM accounts")

    # A committed two-site transfer (full 2PC).
    txn = system.begin_transaction()
    txn.execute("b0", "UPDATE account SET balance = balance - 25 WHERE acct = 0")
    txn.execute("b1", "UPDATE account SET balance = balance + 25 WHERE acct = 4")
    txn.commit()

    # An aborted transfer (client-initiated rollback).
    txn = system.begin_transaction()
    txn.execute("b0", "UPDATE account SET balance = balance - 5 WHERE acct = 1")
    txn.abort()

    # A participant that votes NO (phase-1 failure).
    system.gateways["b2"].fail_next_prepares = 1
    txn = system.begin_transaction()
    txn.execute("b0", "UPDATE account SET balance = balance - 1 WHERE acct = 2")
    txn.execute("b2", "UPDATE account SET balance = balance + 1 WHERE acct = 8")
    try:
        txn.commit()
    except TwoPhaseCommitError:
        pass

    # A commit decision the network keeps losing: the delivery is parked on
    # the WAL pending list (branch in doubt), then the partition heals and
    # recovery drains it.
    faults = system.inject_faults(seed=5)
    faults.drop_next(count=10**6, destination="b1", purpose="commit")
    txn = system.begin_transaction()
    txn.execute("b0", "UPDATE account SET balance = balance - 10 WHERE acct = 3")
    txn.execute("b1", "UPDATE account SET balance = balance + 10 WHERE acct = 5")
    txn.commit()
    faults.clear()
    system.transactions.recover_in_doubt()
    return system


def _print_live(system) -> None:
    from repro.obs.introspect import introspection_snapshot, render_dashboard

    print(render_dashboard(introspection_snapshot(system)))
    print()
    print(system.observability_report())


def _print_bundle(bundle) -> None:
    from repro.obs.introspect import render_dashboard

    # The recorded report first, verbatim: reloading a bundle reproduces
    # observability_report() byte-for-byte.
    sys.stdout.write(bundle.report)
    if not bundle.report.endswith("\n"):
        print()
    print()
    print(render_dashboard(bundle.introspection))
    print()
    print("== bundle ==")
    print(f"path: {bundle.path}")
    manifest = bundle.manifest
    print(f"format: {manifest['format']}")
    print(f"files: {', '.join(manifest['files'])}")
    print(
        f"events: {manifest['events']} recorded, "
        f"{manifest['events_dropped']} dropped; "
        f"span roots: {manifest['span_roots']} retained, "
        f"{manifest['spans_dropped']} dropped, "
        f"{manifest.get('spans_sampled_out', 0)} sampled out"
    )
    print(f"config: {json.dumps(bundle.config, sort_keys=True)}")


def selftest() -> int:
    """Dump-reload round trip over the demo run; 0 on success."""
    from repro.obs.export import load_debug_bundle

    system = build_demo_system()
    problems: list[str] = []
    with tempfile.TemporaryDirectory(prefix="myriad-bundle-") as tmp:
        system.dump_debug_bundle(tmp)
        report = system.observability_report()
        bundle = load_debug_bundle(tmp)
        if bundle.report != report:
            problems.append("report.txt does not round-trip byte-for-byte")
        if bundle.metrics != json.loads(
            json.dumps(system.metrics.snapshot())
        ):
            problems.append("metrics.json does not match the live registry")
        live_events = system.obs.events.snapshot()
        if [e.to_json() for e in bundle.events] != [
            e.to_json() for e in live_events
        ]:
            problems.append("events.jsonl does not round-trip")
        if not any(e.type == "2pc" for e in bundle.events):
            problems.append("event log is missing 2PC state transitions")
        if not any(e.type == "wal.park" for e in bundle.events):
            problems.append("event log is missing the parked decision")
        problems.extend(bundle.validate())
    if problems:
        for problem in problems:
            print(f"selftest FAILED: {problem}", file=sys.stderr)
        return 1
    print(
        f"selftest ok: bundle round-trip lossless "
        f"({len(live_events)} events, "
        f"{len(system.tracer.roots)} span roots, schemas valid)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Load a MYRIAD debug bundle or run a demo workload and "
        "print the observability dashboard.",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--bundle", metavar="DIR", help="load a dumped debug bundle"
    )
    group.add_argument(
        "--demo",
        action="store_true",
        help="run the demo workload and print the live dashboard (default)",
    )
    group.add_argument(
        "--selftest",
        action="store_true",
        help="demo + dump + reload + verify; non-zero exit on mismatch",
    )
    parser.add_argument(
        "--dump",
        metavar="DIR",
        help="with --demo: also write the run's debug bundle to DIR",
    )
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if args.bundle:
        from repro.obs.export import load_debug_bundle

        _print_bundle(load_debug_bundle(args.bundle))
        return 0
    system = build_demo_system()
    if args.dump:
        path = system.dump_debug_bundle(args.dump)
        print(f"wrote debug bundle to {path}")
        print()
    _print_live(system)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... | head`: die quietly, like cat does
        sys.exit(141)
