"""Windowed metrics: a ring of time buckets on the simulated clock.

The all-time :class:`~repro.obs.metrics.MetricsRegistry` answers "how much,
ever"; operating a federation needs "how much, *lately*" — rolling QPS,
error rate, and latency percentiles over the last N simulated seconds.
:class:`WindowedMetrics` provides that with a fixed ring of per-series
buckets keyed by the simulated clock (``Network.now_s``), so memory stays
bounded no matter how long the system runs and no matter how many requests
a session storm pushes through.

Each bucket keeps exact ``count`` / ``sum`` / ``min`` / ``max`` plus a small
capped sample list for percentile estimation; buckets older than the window
fall off the ring.  Reading merges the buckets still inside the requested
window.  Everything is guarded by one lock (worker fetch threads record
per-site latencies concurrently with session threads) and becomes an
immediate return when disabled — the E12/E18 overhead budget applies here
too.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.obs.metrics import PERCENTILES, MetricKey, _key, percentile

#: Multiplicative hash step for the deterministic in-bucket sample
#: overwrite (Knuth); keeps replacement spread without an RNG per bucket.
_SAMPLE_STEP = 2654435761


class _Bucket:
    """Aggregates for one series over one clock-aligned time slice."""

    __slots__ = ("index", "count", "total", "mn", "mx", "samples")

    def __init__(self, index: int):
        self.index = index
        self.count = 0
        self.total = 0.0
        self.mn: float | None = None
        self.mx: float | None = None
        self.samples: list[float] = []

    def add(self, value: float, sample_cap: int) -> None:
        self.count += 1
        self.total += value
        if self.mn is None or value < self.mn:
            self.mn = value
        if self.mx is None or value > self.mx:
            self.mx = value
        if sample_cap <= 0:
            return
        if len(self.samples) < sample_cap:
            self.samples.append(value)
        else:
            # Deterministic overwrite: later observations displace earlier
            # ones pseudo-uniformly, with no per-bucket RNG state.
            self.samples[(self.count * _SAMPLE_STEP) % sample_cap] = value


class WindowedMetrics:
    """Rolling counters and latency distributions over recent sim time.

    ``bucket_s`` × ``bucket_count`` is the widest window answerable
    (:attr:`window_s`); narrower reads pass ``window_s=`` to the readers.
    The clock defaults to a constant 0.0 (everything lands in one bucket)
    until :class:`~repro.myriad.MyriadSystem` binds it to the simulated
    network clock.
    """

    def __init__(
        self,
        enabled: bool = True,
        bucket_s: float = 0.5,
        bucket_count: int = 120,
        samples_per_bucket: int = 64,
        clock=None,
    ):
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        if bucket_count < 1:
            raise ValueError("bucket_count must be at least 1")
        self.enabled = enabled
        self.bucket_s = bucket_s
        self.bucket_count = bucket_count
        self.samples_per_bucket = samples_per_bucket
        self.clock = clock or (lambda: 0.0)
        self._lock = threading.Lock()
        self._series: dict[MetricKey, deque[_Bucket]] = {}

    @property
    def window_s(self) -> float:
        """The widest window this ring can answer."""
        return self.bucket_s * self.bucket_count

    # -- recording ---------------------------------------------------------

    def _bucket(self, key: MetricKey) -> _Bucket:
        """The current-slice bucket for ``key`` (lock held by caller)."""
        index = int(self.clock() // self.bucket_s)
        ring = self._series.get(key)
        if ring is None:
            ring = self._series[key] = deque(maxlen=self.bucket_count)
        if not ring or ring[-1].index != index:
            ring.append(_Bucket(index))
        return ring[-1]

    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Count one occurrence (``amount`` rides along as the sum)."""
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            bucket = self._bucket(key)
            bucket.count += 1
            bucket.total += amount

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one distribution sample (latency, size, ...)."""
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            self._bucket(key).add(value, self.samples_per_bucket)

    # -- reading -----------------------------------------------------------

    def _window_buckets(
        self, key: MetricKey, window_s: float | None
    ) -> list[_Bucket]:
        """Buckets of ``key`` inside the window (lock held by caller)."""
        ring = self._series.get(key)
        if not ring:
            return []
        span = self.window_s if window_s is None else window_s
        width = max(1, int(round(span / self.bucket_s)))
        cutoff = int(self.clock() // self.bucket_s) - width
        return [bucket for bucket in ring if bucket.index > cutoff]

    def count(
        self, name: str, window_s: float | None = None, **labels: object
    ) -> int:
        """Events recorded for this series inside the window."""
        with self._lock:
            return sum(
                b.count for b in self._window_buckets(_key(name, labels), window_s)
            )

    def total(
        self, name: str, window_s: float | None = None, **labels: object
    ) -> float:
        """Summed amounts/values for this series inside the window."""
        with self._lock:
            return sum(
                b.total for b in self._window_buckets(_key(name, labels), window_s)
            )

    def rate(
        self, name: str, window_s: float | None = None, **labels: object
    ) -> float:
        """Events per simulated second over the window."""
        span = self.window_s if window_s is None else window_s
        if span <= 0:
            return 0.0
        return self.count(name, window_s=window_s, **labels) / span

    def summary(
        self, name: str, window_s: float | None = None, **labels: object
    ) -> dict[str, float] | None:
        """count/min/max/mean/p50/p95/p99 of the window, or ``None``.

        Percentiles are nearest-rank over the buckets' retained samples
        (at most ``samples_per_bucket`` per bucket); count, min, max, and
        mean are exact.
        """
        with self._lock:
            buckets = self._window_buckets(_key(name, labels), window_s)
            count = sum(b.count for b in buckets)
            if not count:
                return None
            total = sum(b.total for b in buckets)
            mn = min(b.mn for b in buckets if b.mn is not None)
            mx = max(b.mx for b in buckets if b.mx is not None)
            samples = [value for b in buckets for value in b.samples]
        out = {
            "count": float(count),
            "min": mn,
            "max": mx,
            "mean": total / count,
        }
        for pct in PERCENTILES:
            out[f"p{pct:g}"] = percentile(samples, pct) if samples else mn
        return out

    def label_sets(self, name: str) -> list[dict[str, str]]:
        """Every label combination recorded for ``name``, sorted."""
        with self._lock:
            keys = sorted(key for key in self._series if key[0] == name)
        return [dict(labels) for _, labels in keys]

    def series_count(self) -> int:
        """Distinct (name, labels) series held (memory-bound checks)."""
        with self._lock:
            return len(self._series)

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
