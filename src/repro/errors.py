"""Exception hierarchy shared by every MYRIAD subsystem.

Every error raised by the library derives from :class:`MyriadError`, so
applications can catch one type at the top level.  The hierarchy mirrors the
layering of the system: SQL front end, storage/engine, concurrency, gateway,
federation, and global transaction management.
"""

from __future__ import annotations


class MyriadError(Exception):
    """Base class for every error raised by the repro library."""


# --------------------------------------------------------------------------
# SQL front end
# --------------------------------------------------------------------------


class SQLError(MyriadError):
    """Base class for errors in the SQL front end."""


class LexerError(SQLError):
    """Raised when the input text cannot be tokenised."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SQLError):
    """Raised when the token stream does not form a valid statement."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


# --------------------------------------------------------------------------
# Catalog / storage / execution
# --------------------------------------------------------------------------


class CatalogError(MyriadError):
    """Unknown table/column/index, duplicate definitions, etc."""


class TypeError_(MyriadError):
    """SQL type error (incompatible operands, bad cast).

    Named with a trailing underscore to avoid shadowing the builtin.
    Exposed publicly as ``SQLTypeError``.
    """


SQLTypeError = TypeError_


class IntegrityError(MyriadError):
    """Constraint violation: primary key duplicate, NOT NULL, etc."""


class ExecutionError(MyriadError):
    """Runtime failure while executing a (local or global) plan."""


# --------------------------------------------------------------------------
# Concurrency / transactions
# --------------------------------------------------------------------------


class TransactionError(MyriadError):
    """Base class for transaction-related failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (deadlock victim, timeout, or explicit)."""

    def __init__(self, message: str = "transaction aborted", *, reason: str = ""):
        super().__init__(message)
        self.reason = reason or message


class DeadlockError(TransactionAborted):
    """A (local) deadlock was detected and this transaction chosen as victim."""

    def __init__(self, message: str = "deadlock detected"):
        super().__init__(message, reason="deadlock")


class LockTimeoutError(TransactionAborted):
    """A lock/query wait exceeded its timeout (MYRIAD's global-deadlock signal)."""

    def __init__(self, message: str = "lock wait timeout"):
        super().__init__(message, reason="timeout")


class TwoPhaseCommitError(TransactionError):
    """A failure during the two-phase commit protocol."""


# --------------------------------------------------------------------------
# Federation layer
# --------------------------------------------------------------------------


class FederationError(MyriadError):
    """Errors in federation/schema-integration definitions."""


class ServerError(FederationError):
    """Serving-layer failures: pool exhausted, closed server/session, or
    misuse of a client session (e.g. DML in a read-only transaction)."""


class GatewayError(MyriadError):
    """Errors raised by a gateway (translation failure, export violation)."""


class GatewayTimeout(GatewayError):
    """A local query did not return within its timeout period.

    Per the paper, the federation layer interprets this as a (potential)
    global deadlock and aborts the entire global transaction.
    """

    def __init__(self, message: str = "gateway query timeout", *, site: str = ""):
        super().__init__(message)
        self.site = site


class NetworkError(MyriadError):
    """Simulated-network failures (unknown endpoint, partition)."""


class CircuitOpenError(NetworkError):
    """Fail-fast refusal: the target site's circuit breaker is OPEN.

    Raised *without* any message traffic when a site has accumulated enough
    consecutive failures that the federation stops talking to it until a
    half-open probe succeeds (see :class:`repro.health.HealthTracker`).
    """

    def __init__(self, message: str = "circuit open", *, site: str = ""):
        super().__init__(message)
        self.site = site


class MessageDropped(NetworkError):
    """A message was lost to injected faults (drop rule, crash, partition).

    Carries enough context for the sender to classify the loss; the 2PC
    coordinator uses it to drive decision-message retry and parking.
    """

    def __init__(
        self,
        message: str = "message dropped",
        *,
        source: str = "",
        destination: str = "",
        purpose: str = "",
        reason: str = "",
    ):
        super().__init__(message)
        self.source = source
        self.destination = destination
        self.purpose = purpose
        self.reason = reason
