"""A workflow model on top of MYRIAD — the paper's §3 future work.

    "We will examine the possibilities of constructing a workflow model on
    top of Myriad."

This module implements the classic *saga* style of long-running workflow
over a federated database: a workflow is a sequence of **steps**, each of
which runs as its own (ACID, 2PC-committed) global transaction, paired with
a **compensation** that semantically undoes it.  If step *k* fails, the
compensations of steps *k-1 … 1* run in reverse order, each again as a
global transaction.

Unlike a single global transaction, a saga holds no locks between steps —
the right trade-off for multi-site business processes that would otherwise
pin locks across user think time.  The price is intermediate visibility;
compensations must be semantic inverses, not physical undo.

A :class:`WorkflowLog` records every state transition durably (same WAL
abstraction the coordinators use), so a crashed workflow can be completed
or compensated by :func:`recover_workflows`.
"""

from __future__ import annotations

import enum
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.concurrency.wal import WriteAheadLog
from repro.errors import MyriadError, TransactionAborted, TwoPhaseCommitError
from repro.myriad import MyriadSystem
from repro.txn import GlobalTransaction


class WorkflowError(MyriadError):
    """A workflow failed and was (or could not be) compensated."""

    def __init__(self, message: str, compensated: bool):
        super().__init__(message)
        self.compensated = compensated


class StepStatus(enum.Enum):
    PENDING = "pending"
    DONE = "done"
    FAILED = "failed"
    COMPENSATED = "compensated"


@dataclass
class WorkflowStep:
    """One step: a forward action and its semantic compensation.

    Both callables receive an open :class:`GlobalTransaction` and the
    workflow's shared ``context`` dict; the transaction is committed by the
    engine after the callable returns (or aborted if it raises).
    """

    name: str
    action: Callable[[GlobalTransaction, dict], None]
    compensation: Callable[[GlobalTransaction, dict], None] | None = None


class WorkflowStatus(enum.Enum):
    RUNNING = "running"
    COMMITTED = "committed"
    COMPENSATING = "compensating"
    COMPENSATED = "compensated"
    STUCK = "stuck"  # a compensation failed; operator attention needed


@dataclass
class WorkflowRun:
    """The durable record of one workflow execution."""

    workflow_id: str
    step_names: list[str]
    status: WorkflowStatus = WorkflowStatus.RUNNING
    completed_steps: list[str] = field(default_factory=list)
    failed_step: str | None = None
    context: dict = field(default_factory=dict)


class WorkflowEngine:
    """Runs saga workflows over one MyriadSystem."""

    def __init__(self, system: MyriadSystem, log: WriteAheadLog | None = None):
        self.system = system
        self.log = log or WriteAheadLog()
        self._counter = itertools.count(1)
        self.runs: dict[str, WorkflowRun] = {}
        # Counters for tests/monitoring.
        self.committed = 0
        self.compensated = 0
        self.stuck = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        steps: list[WorkflowStep],
        context: dict | None = None,
        workflow_id: str | None = None,
        max_attempts_per_step: int = 1,
    ) -> WorkflowRun:
        """Execute a workflow; compensate completed steps on failure.

        Raises :class:`WorkflowError` if any step ultimately fails (with
        ``compensated`` telling whether rollback succeeded).
        """
        if workflow_id is None:
            workflow_id = f"W{next(self._counter)}"
        run = WorkflowRun(
            workflow_id=workflow_id,
            step_names=[step.name for step in steps],
            context=dict(context or {}),
        )
        self.runs[workflow_id] = run
        self._log(run, "begin")

        for step in steps:
            if self._execute_step(run, step, max_attempts_per_step):
                run.completed_steps.append(step.name)
                self._log(run, f"done:{step.name}")
            else:
                run.failed_step = step.name
                self._log(run, f"failed:{step.name}")
                self._compensate(run, steps)
                if run.status is WorkflowStatus.COMPENSATED:
                    self.compensated += 1
                    raise WorkflowError(
                        f"workflow {workflow_id} failed at step "
                        f"{step.name!r}; all completed steps compensated",
                        compensated=True,
                    )
                self.stuck += 1
                raise WorkflowError(
                    f"workflow {workflow_id} failed at step {step.name!r} "
                    "and compensation also failed: operator intervention "
                    "required",
                    compensated=False,
                )

        run.status = WorkflowStatus.COMMITTED
        self._log(run, "committed")
        self.committed += 1
        return run

    def _execute_step(
        self, run: WorkflowRun, step: WorkflowStep, attempts: int
    ) -> bool:
        for _ in range(max(attempts, 1)):
            txn = self.system.begin_transaction(
                f"{run.workflow_id}:{step.name}:{next(self._counter)}"
            )
            try:
                step.action(txn, run.context)
                txn.commit()
                return True
            except (TransactionAborted, TwoPhaseCommitError, MyriadError):
                # The coordinator aborts on its own failures; user code may
                # raise while the transaction is still active — clean up.
                txn.abort()
                continue
            except Exception:
                txn.abort()
                raise
        return False

    def _compensate(self, run: WorkflowRun, steps: list[WorkflowStep]) -> None:
        run.status = WorkflowStatus.COMPENSATING
        self._log(run, "compensating")
        by_name = {step.name: step for step in steps}
        for name in reversed(run.completed_steps):
            step = by_name[name]
            if step.compensation is None:
                continue
            txn = self.system.begin_transaction(
                f"{run.workflow_id}:undo:{name}:{next(self._counter)}"
            )
            try:
                step.compensation(txn, run.context)
                txn.commit()
                self._log(run, f"compensated:{name}")
            except Exception:
                try:
                    txn.abort()
                except Exception:
                    pass
                run.status = WorkflowStatus.STUCK
                self._log(run, "stuck")
                return
        run.status = WorkflowStatus.COMPENSATED
        self._log(run, "compensated")

    # ------------------------------------------------------------------
    # Durable log
    # ------------------------------------------------------------------

    def _log(self, run: WorkflowRun, event: str) -> None:
        from repro.concurrency.wal import LogRecordType

        # Reuse the coordinator record shape: txn_id = workflow id.
        self.log.append(
            LogRecordType.COORD_BEGIN_2PC
            if event == "begin"
            else LogRecordType.COORD_END,
            run.workflow_id,
            (event,),
            flush=True,
        )

    def history(self, workflow_id: str) -> list[str]:
        """The durable event trail of one workflow."""
        return [
            record.payload[0]
            for record in self.log.durable_records()
            if record.txn_id == workflow_id and record.payload
        ]


def recover_workflows(
    engine: WorkflowEngine, steps_by_name: dict[str, WorkflowStep]
) -> list[str]:
    """Compensate every workflow left RUNNING/COMPENSATING (crash recovery).

    Returns the ids of the workflows that were rolled back.  Workflows whose
    compensation fails remain STUCK.
    """
    recovered = []
    for run in engine.runs.values():
        if run.status in (WorkflowStatus.RUNNING, WorkflowStatus.COMPENSATING):
            steps = [
                steps_by_name[name]
                for name in run.step_names
                if name in steps_by_name
            ]
            engine._compensate(run, steps)
            if run.status is WorkflowStatus.COMPENSATED:
                recovered.append(run.workflow_id)
    return recovered
