"""Workflow (saga) model on top of MYRIAD global transactions (§3 future work)."""

from repro.workflow.saga import (
    StepStatus,
    WorkflowEngine,
    WorkflowError,
    WorkflowRun,
    WorkflowStatus,
    WorkflowStep,
    recover_workflows,
)

__all__ = [
    "StepStatus",
    "WorkflowEngine",
    "WorkflowError",
    "WorkflowRun",
    "WorkflowStatus",
    "WorkflowStep",
    "recover_workflows",
]
