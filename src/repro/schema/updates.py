"""Updatable integrated relations: routing federation-level DML to sources.

MYRIAD's query interface lets users pose *transactions* against the
federation.  DML against an integrated relation is supported when the
relation is **updatable**: its view is a single SELECT over exactly one
export relation whose output columns are plain column references (no
integration functions, joins, unions, or aggregation).  The DML is rewritten
into the export relation's namespace (and the view's row predicate is
conjoined, so updates cannot escape the view).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FederationError
from repro.schema.integration import IntegratedRelation
from repro.sql import ast


@dataclass(frozen=True)
class UpdatableSource:
    """Where an updatable integrated relation's rows live."""

    site: str
    export: str
    #: integrated column (lower) → export column
    column_map: dict[str, str]
    #: the view's row predicate over *export* columns, if any
    predicate: ast.Expression | None


def resolve_updatable(relation: IntegratedRelation) -> UpdatableSource:
    """Analyse a view; raise FederationError if it is not updatable."""
    view = relation.view
    if not isinstance(view, ast.Select):
        raise FederationError(
            f"integrated relation {relation.name!r} is not updatable: "
            "set operations cannot be updated through"
        )
    if (
        view.group_by
        or view.having is not None
        or view.distinct
        or view.limit is not None
        or view.offset is not None
    ):
        raise FederationError(
            f"integrated relation {relation.name!r} is not updatable: "
            "aggregation/DISTINCT/LIMIT in the definition"
        )
    if len(view.from_clause) != 1 or not isinstance(
        view.from_clause[0], ast.TableName
    ):
        raise FederationError(
            f"integrated relation {relation.name!r} is not updatable: "
            "the definition must read exactly one export relation"
        )
    source = view.from_clause[0]
    if "." not in source.name:
        raise FederationError(
            f"integrated relation {relation.name!r} is not updatable: "
            "the source must be a site-qualified export relation"
        )
    site, _, export = source.name.partition(".")
    binding = source.binding.lower()

    column_map: dict[str, str] = {}
    for item in view.items:
        expr = item.expression
        if not isinstance(expr, ast.ColumnRef):
            raise FederationError(
                f"integrated relation {relation.name!r} is not updatable: "
                f"column {item.output_name!r} is computed"
            )
        if expr.table is not None and expr.table.lower() != binding:
            raise FederationError(
                f"integrated relation {relation.name!r} is not updatable: "
                f"column {item.output_name!r} comes from another binding"
            )
        column_map[item.output_name.lower()] = expr.name

    predicate = None
    if view.where is not None:
        predicate = _strip_qualifiers(view.where, binding)
    return UpdatableSource(site, export, column_map, predicate)


def rewrite_dml(
    statement: ast.Statement, relation_name: str, source: UpdatableSource
) -> ast.Statement:
    """Rewrite DML over an integrated relation into its export namespace."""
    if isinstance(statement, ast.Insert):
        columns = statement.columns or list(source.column_map.keys())
        mapped = [_map_column(source, c, relation_name) for c in columns]
        if statement.query is not None:
            raise FederationError(
                "INSERT ... SELECT through an integrated relation is not "
                "supported; insert rows explicitly"
            )
        return ast.Insert(source.export, mapped, statement.rows)
    if isinstance(statement, ast.Update):
        assignments = [
            (
                _map_column(source, column, relation_name),
                _map_expr(source, value, relation_name),
            )
            for column, value in statement.assignments
        ]
        where = _combine_where(source, statement.where, relation_name)
        return ast.Update(source.export, assignments, where)
    if isinstance(statement, ast.Delete):
        where = _combine_where(source, statement.where, relation_name)
        return ast.Delete(source.export, where)
    raise FederationError(
        f"unsupported federated DML {type(statement).__name__}"
    )


def _combine_where(
    source: UpdatableSource,
    where: ast.Expression | None,
    relation_name: str,
) -> ast.Expression | None:
    mapped = (
        _map_expr(source, where, relation_name) if where is not None else None
    )
    parts = [p for p in (mapped, source.predicate) if p is not None]
    return ast.conjoin(parts)


def _map_column(
    source: UpdatableSource, column: str, relation_name: str
) -> str:
    mapped = source.column_map.get(column.lower())
    if mapped is None:
        raise FederationError(
            f"integrated relation {relation_name!r} has no column {column!r}"
        )
    return mapped


def _map_expr(
    source: UpdatableSource, expr: ast.Expression, relation_name: str
) -> ast.Expression:
    def replace(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.ColumnRef):
            if node.table is not None and node.table.lower() != (
                relation_name.lower()
            ):
                raise FederationError(
                    f"federated DML may only reference {relation_name!r}"
                )
            return ast.ColumnRef(
                _map_column(source, node.name, relation_name)
            )
        if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
            raise FederationError(
                "subqueries are not supported in federated DML"
            )
        return node

    return ast.transform_expression(expr, replace)


def _strip_qualifiers(expr: ast.Expression, binding: str) -> ast.Expression:
    def replace(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.ColumnRef) and node.table is not None:
            if node.table.lower() == binding:
                return ast.ColumnRef(node.name)
        return node

    return ast.transform_expression(expr, replace)
