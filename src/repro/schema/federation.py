"""Federations: named integrated schemas over a set of gateways.

MYRIAD supports *multiple federations*: each federation owns its integrated
relations and integration functions, while gateways/export schemas are shared
infrastructure.  The federation object also performs view expansion — turning
a global query over integrated relations into one over export relations —
which is the first step of global query processing.
"""

from __future__ import annotations

from repro.errors import FederationError
from repro.gateway import Gateway
from repro.schema.functions import FunctionRegistry, standard_registry
from repro.schema.integration import IntegratedRelation
from repro.sql import ast, parse_query


class Federation:
    """One federation: integrated relations + integration functions."""

    def __init__(self, name: str, gateways: dict[str, Gateway]):
        self.name = name
        self.gateways = gateways
        self.functions: FunctionRegistry = standard_registry()
        self.relations: dict[str, IntegratedRelation] = {}
        #: Bumped on every integrated-relation (re)definition or drop; part
        #: of the global plan-cache key, so schema changes implicitly flush
        #: every plan compiled against the old schema.
        self.schema_version = 0

    # ------------------------------------------------------------------
    # Schema management (what the paper's query interface lets DBAs do)
    # ------------------------------------------------------------------

    def add_relation(self, relation: IntegratedRelation) -> IntegratedRelation:
        key = relation.name.lower()
        if key in self.relations:
            raise FederationError(
                f"integrated relation {relation.name!r} already exists in "
                f"federation {self.name!r}"
            )
        self._validate_sources(relation)
        self.relations[key] = relation
        self.schema_version += 1
        return relation

    def define_relation(self, name: str, sql: str) -> IntegratedRelation:
        """Define an integrated relation from a SQL view definition."""
        relation = IntegratedRelation(name, parse_query(sql))
        return self.add_relation(relation)

    def drop_relation(self, name: str) -> None:
        if name.lower() not in self.relations:
            raise FederationError(
                f"no integrated relation {name!r} in federation {self.name!r}"
            )
        del self.relations[name.lower()]
        self.schema_version += 1

    def replace_relation(self, relation: IntegratedRelation) -> IntegratedRelation:
        self.relations.pop(relation.name.lower(), None)
        return self.add_relation(relation)

    def get_relation(self, name: str) -> IntegratedRelation:
        try:
            return self.relations[name.lower()]
        except KeyError:
            raise FederationError(
                f"no integrated relation {name!r} in federation {self.name!r}"
            ) from None

    def has_relation(self, name: str) -> bool:
        return name.lower() in self.relations

    def relation_names(self) -> list[str]:
        return sorted(r.name for r in self.relations.values())

    def register_function(self, name: str, fn) -> None:
        """Register a user-defined integration function."""
        self.functions.register(name, fn)

    def _validate_sources(self, relation: IntegratedRelation) -> None:
        for site, export in relation.sources():
            gateway = self.gateways.get(site)
            if gateway is None:
                raise FederationError(
                    f"integrated relation {relation.name!r} references "
                    f"unknown site {site!r}"
                )
            if not gateway.exports.has(export):
                raise FederationError(
                    f"integrated relation {relation.name!r} references "
                    f"{site}.{export}, but that site exports no such relation"
                )

    # ------------------------------------------------------------------
    # View expansion
    # ------------------------------------------------------------------

    def expand(self, query: ast.Query) -> ast.Query:
        """Replace integrated-relation references with their view bodies.

        Expansion is recursive (views over views) with cycle detection.
        The result references only export relations (``site.export`` names)
        and derived tables.
        """
        return self._expand_query(query, frozenset())

    def _expand_query(
        self, query: ast.Query, expanding: frozenset[str]
    ) -> ast.Query:
        if isinstance(query, ast.SetOperation):
            return ast.SetOperation(
                query.kind,
                self._expand_query(query.left, expanding),
                self._expand_query(query.right, expanding),
                list(query.order_by),
                query.limit,
                query.offset,
            )
        return ast.Select(
            items=[
                ast.SelectItem(self._expand_expr(i.expression, expanding), i.alias)
                for i in query.items
            ],
            from_clause=[
                self._expand_ref(r, expanding) for r in query.from_clause
            ],
            where=self._expand_expr(query.where, expanding)
            if query.where is not None
            else None,
            group_by=[self._expand_expr(g, expanding) for g in query.group_by],
            having=self._expand_expr(query.having, expanding)
            if query.having is not None
            else None,
            order_by=[
                ast.OrderItem(
                    self._expand_expr(o.expression, expanding), o.ascending
                )
                for o in query.order_by
            ],
            limit=query.limit,
            offset=query.offset,
            distinct=query.distinct,
        )

    def _expand_ref(
        self, ref: ast.TableRef, expanding: frozenset[str]
    ) -> ast.TableRef:
        if isinstance(ref, ast.TableName):
            key = ref.name.lower()
            if "." not in ref.name and key in self.relations:
                if key in expanding:
                    raise FederationError(
                        f"cyclic integrated-relation definition at {ref.name!r}"
                    )
                view = self.relations[key].view
                expanded = self._expand_query(view, expanding | {key})
                return ast.SubqueryRef(expanded, ref.binding)
            return ref
        if isinstance(ref, ast.SubqueryRef):
            return ast.SubqueryRef(
                self._expand_query(ref.query, expanding), ref.alias
            )
        if isinstance(ref, ast.Join):
            return ast.Join(
                self._expand_ref(ref.left, expanding),
                self._expand_ref(ref.right, expanding),
                ref.join_type,
                self._expand_expr(ref.condition, expanding)
                if ref.condition is not None
                else None,
                list(ref.using),
            )
        return ref

    def _expand_expr(
        self, expr: ast.Expression, expanding: frozenset[str]
    ) -> ast.Expression:
        def replace(node: ast.Expression) -> ast.Expression:
            if isinstance(node, ast.InSubquery):
                return ast.InSubquery(
                    node.operand,
                    self._expand_query(node.query, expanding),
                    node.negated,
                )
            if isinstance(node, ast.Exists):
                return ast.Exists(
                    self._expand_query(node.query, expanding), node.negated
                )
            if isinstance(node, ast.ScalarSubquery):
                return ast.ScalarSubquery(
                    self._expand_query(node.query, expanding)
                )
            return node

        return ast.transform_expression(expr, replace)
