"""Schema integration: integration functions, integrated relations, federations."""

from repro.schema.federation import Federation
from repro.schema.functions import (
    STANDARD_RESOLVERS,
    FunctionRegistry,
    all_agree,
    numeric_average,
    numeric_max,
    numeric_min,
    prefer_first,
    prefer_last,
    standard_registry,
)
from repro.schema.integration import (
    IntegratedRelation,
    SourceColumn,
    join_merge,
    union_merge,
    view_relation,
)
from repro.schema.updates import (
    UpdatableSource,
    resolve_updatable,
    rewrite_dml,
)

__all__ = [
    "Federation",
    "STANDARD_RESOLVERS",
    "FunctionRegistry",
    "all_agree",
    "numeric_average",
    "numeric_max",
    "numeric_min",
    "prefer_first",
    "prefer_last",
    "standard_registry",
    "IntegratedRelation",
    "SourceColumn",
    "join_merge",
    "union_merge",
    "view_relation",
    "UpdatableSource",
    "resolve_updatable",
    "rewrite_dml",
]
