"""User-defined integration functions and conflict resolvers.

The paper: *"relations from these databases are merged into integrated
relations using relational operations as well as user-defined integration
functions."*  An integration function is a named scalar function registered
with a federation and usable in integrated-relation definitions and global
queries — unit conversion, code mapping, name normalisation, and conflict
resolution between sources reporting different values for the same attribute.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import FederationError


class FunctionRegistry:
    """Named scalar functions available inside one federation."""

    def __init__(self):
        self._functions: dict[str, Callable] = {}

    def register(self, name: str, fn: Callable) -> None:
        key = name.upper()
        if key in self._functions:
            raise FederationError(f"integration function {name!r} already defined")
        self._functions[key] = fn

    def get(self, name: str) -> Callable:
        try:
            return self._functions[name.upper()]
        except KeyError:
            raise FederationError(f"unknown integration function {name!r}") from None

    def has(self, name: str) -> bool:
        return name.upper() in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)

    def as_dict(self) -> dict[str, Callable]:
        return dict(self._functions)


# ---------------------------------------------------------------------------
# Stock conflict-resolution functions
# ---------------------------------------------------------------------------
#
# These resolve attribute conflicts when the same entity appears in several
# component databases (vertical/overlap integration): given the candidate
# values from each source, produce the integrated value.


def prefer_first(*values: object) -> object:
    """First non-NULL value, in source priority order (like COALESCE)."""
    for value in values:
        if value is not None:
            return value
    return None


def prefer_last(*values: object) -> object:
    """Last non-NULL value."""
    result = None
    for value in values:
        if value is not None:
            result = value
    return result


def numeric_average(*values: object) -> object:
    """Average of the non-NULL numeric candidates."""
    numbers = [v for v in values if v is not None]
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


def numeric_max(*values: object) -> object:
    numbers = [v for v in values if v is not None]
    return max(numbers) if numbers else None


def numeric_min(*values: object) -> object:
    numbers = [v for v in values if v is not None]
    return min(numbers) if numbers else None


def all_agree(*values: object) -> object:
    """The common value if every non-NULL source agrees, else NULL.

    The conservative resolver: disagreements surface as NULL so DBAs can
    find them with ``WHERE x IS NULL``.
    """
    present = [v for v in values if v is not None]
    if not present:
        return None
    first = present[0]
    if all(v == first for v in present[1:]):
        return first
    return None


STANDARD_RESOLVERS: dict[str, Callable] = {
    "PREFER_FIRST": prefer_first,
    "PREFER_LAST": prefer_last,
    "AVG_CONFLICT": numeric_average,
    "MAX_CONFLICT": numeric_max,
    "MIN_CONFLICT": numeric_min,
    "ALL_AGREE": all_agree,
}


def standard_registry() -> FunctionRegistry:
    """A registry preloaded with the stock conflict resolvers."""
    registry = FunctionRegistry()
    for name, fn in STANDARD_RESOLVERS.items():
        registry.register(name, fn)
    return registry
