"""Integrated relations: views over export relations.

A federation's schema is a set of *integrated relations*, each derived from
export relations via relational operations and user-defined integration
functions (the paper, §1).  An integrated relation is stored as a SQL view
whose FROM items name export relations with a site qualifier —
``ora_site.employees`` — or other integrated relations.

Two classic merge shapes get first-class builders:

- :func:`union_merge` — *horizontal* integration: the same kind of entity
  lives in several databases (e.g. employees of two subsidiaries); the
  integrated relation is the (outer) union, optionally tagged with a source
  column.
- :func:`join_merge` — *vertical/overlap* integration: the same entities
  appear in several databases with different (or conflicting) attributes;
  the integrated relation is a full outer join on the shared key with a
  conflict resolver per overlapping attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FederationError
from repro.sql import ast, parse_query
from repro.sql.printer import SQLPrinter


@dataclass
class SourceColumn:
    """Where an integrated column comes from (for lineage/browsing)."""

    site: str
    export: str
    column: str


@dataclass
class IntegratedRelation:
    """One integrated relation: a named view over export relations."""

    name: str
    view: ast.Query
    #: Optional documentation of per-column lineage (builders fill this).
    lineage: dict[str, list[SourceColumn]] = field(default_factory=dict)

    @property
    def column_names(self) -> list[str]:
        """Output column names, if statically derivable."""
        query = self.view
        while isinstance(query, ast.SetOperation):
            query = query.left
        names = []
        for item in query.items:
            if isinstance(item.expression, ast.Star):
                raise FederationError(
                    f"integrated relation {self.name!r} uses '*'; "
                    "define explicit columns"
                )
            names.append(item.output_name)
        return names

    def sources(self) -> list[tuple[str, str]]:
        """All (site, export_relation) pairs referenced by the view."""
        found: list[tuple[str, str]] = []

        def visit_query(query: ast.Query) -> None:
            if isinstance(query, ast.SetOperation):
                visit_query(query.left)
                visit_query(query.right)
                return
            for ref in query.from_clause:
                visit_ref(ref)

        def visit_ref(ref: ast.TableRef) -> None:
            if isinstance(ref, ast.TableName):
                if "." in ref.name:
                    site, _, export = ref.name.partition(".")
                    pair = (site, export)
                    if pair not in found:
                        found.append(pair)
            elif isinstance(ref, ast.SubqueryRef):
                visit_query(ref.query)
            elif isinstance(ref, ast.Join):
                visit_ref(ref.left)
                visit_ref(ref.right)

        visit_query(self.view)
        return found

    def definition_sql(self) -> str:
        """The view definition as SQL text (for the schema browser)."""
        return SQLPrinter().print_query(self.view)


# ---------------------------------------------------------------------------
# Merge builders
# ---------------------------------------------------------------------------


def _source_name(site: str, export: str) -> str:
    return f"{site}.{export}"


def union_merge(
    name: str,
    sources: list[tuple[str, str, list[str] | dict[str, str]]],
    distinct: bool = False,
    source_tag_column: str | None = None,
) -> IntegratedRelation:
    """Horizontal merge: UNION [ALL] of per-source projections.

    ``sources`` entries are ``(site, export, columns)`` where ``columns`` is
    either a list of column names common to all sources or a mapping from
    integrated-column name → that source's column name.  With
    ``source_tag_column`` every row carries the site name it came from.
    """
    if not sources:
        raise FederationError("union_merge needs at least one source")

    blocks: list[ast.Select] = []
    lineage: dict[str, list[SourceColumn]] = {}
    expected: list[str] | None = None
    for site, export, columns in sources:
        if isinstance(columns, dict):
            mapping = dict(columns)
        else:
            mapping = {column: column for column in columns}
        names = list(mapping.keys())
        if expected is None:
            expected = names
        elif [n.lower() for n in names] != [n.lower() for n in expected]:
            raise FederationError(
                f"union_merge source {site}.{export} columns {names} do not "
                f"match {expected}"
            )
        items = [
            ast.SelectItem(ast.ColumnRef(source_column), integrated)
            for integrated, source_column in mapping.items()
        ]
        if source_tag_column is not None:
            items.append(ast.SelectItem(ast.Literal(site), source_tag_column))
        blocks.append(
            ast.Select(
                items=items,
                from_clause=[ast.TableName(_source_name(site, export))],
            )
        )
        for integrated, source_column in mapping.items():
            lineage.setdefault(integrated, []).append(
                SourceColumn(site, export, source_column)
            )

    view: ast.Query = blocks[0]
    kind = ast.SetOpKind.UNION if distinct else ast.SetOpKind.UNION_ALL
    for block in blocks[1:]:
        view = ast.SetOperation(kind, view, block)
    return IntegratedRelation(name, view, lineage)


def join_merge(
    name: str,
    left: tuple[str, str],
    right: tuple[str, str],
    on: list[tuple[str, str]],
    attributes: dict[str, object],
    join_type: ast.JoinType = ast.JoinType.FULL,
) -> IntegratedRelation:
    """Vertical/overlap merge: outer join on a shared key.

    ``attributes`` maps each integrated column to one of:

    - ``("left", column)`` — taken from the left source
    - ``("right", column)`` — taken from the right source
    - ``("key", position)`` — the join key (COALESCE of both sides so outer
      rows keep their key); ``position`` indexes into ``on``
    - ``("resolve", function_name, left_column, right_column)`` — a
      user-defined integration function applied to both candidates
    """
    left_site, left_export = left
    right_site, right_export = right
    left_binding, right_binding = "l", "r"

    condition = ast.conjoin(
        [
            ast.BinaryOp(
                "=",
                ast.ColumnRef(lcol, left_binding),
                ast.ColumnRef(rcol, right_binding),
            )
            for lcol, rcol in on
        ]
    )
    join = ast.Join(
        ast.TableName(_source_name(left_site, left_export), left_binding),
        ast.TableName(_source_name(right_site, right_export), right_binding),
        join_type,
        condition,
    )

    items: list[ast.SelectItem] = []
    lineage: dict[str, list[SourceColumn]] = {}
    for integrated, spec in attributes.items():
        if not isinstance(spec, tuple) or not spec:
            raise FederationError(
                f"bad attribute spec for {integrated!r}: {spec!r}"
            )
        kind = spec[0]
        if kind == "left":
            expr: ast.Expression = ast.ColumnRef(spec[1], left_binding)
            lineage[integrated] = [
                SourceColumn(left_site, left_export, spec[1])
            ]
        elif kind == "right":
            expr = ast.ColumnRef(spec[1], right_binding)
            lineage[integrated] = [
                SourceColumn(right_site, right_export, spec[1])
            ]
        elif kind == "key":
            position = spec[1] if len(spec) > 1 else 0
            lcol, rcol = on[position]
            expr = ast.FunctionCall(
                "COALESCE",
                [
                    ast.ColumnRef(lcol, left_binding),
                    ast.ColumnRef(rcol, right_binding),
                ],
            )
            lineage[integrated] = [
                SourceColumn(left_site, left_export, lcol),
                SourceColumn(right_site, right_export, rcol),
            ]
        elif kind == "resolve":
            _, function_name, lcol, rcol = spec
            expr = ast.FunctionCall(
                function_name.upper(),
                [
                    ast.ColumnRef(lcol, left_binding),
                    ast.ColumnRef(rcol, right_binding),
                ],
            )
            lineage[integrated] = [
                SourceColumn(left_site, left_export, lcol),
                SourceColumn(right_site, right_export, rcol),
            ]
        else:
            raise FederationError(
                f"unknown attribute spec kind {kind!r} for {integrated!r}"
            )
        items.append(ast.SelectItem(expr, integrated))

    view = ast.Select(items=items, from_clause=[join])
    return IntegratedRelation(name, view, lineage)


def view_relation(name: str, sql: str) -> IntegratedRelation:
    """Free-form integrated relation from a SQL view definition."""
    return IntegratedRelation(name, parse_query(sql))
