"""Multi-version snapshot reads layered over the strict-2PL storage.

The component DBMSs keep strict 2PL + undo for writers (table-granularity
exclusive locks guarantee at most one uncommitted writer per table), which
makes an InnoDB-style read view cheap to bolt on top:

- every committing transaction that wrote rows is stamped by a per-DBMS
  commit counter (``LocalTransactionManager._commit_ts``) and *publishes*
  the new committed value of each touched RID into the table's version
  chain (``Table.versions``) before releasing its locks;
- while a writer is still uncommitted, each touched RID carries a *pending
  marker* (``Table.uncommitted``) recording the last committed value, set
  before the in-place mutation, so readers never see dirty data;
- a :class:`Snapshot` is just the commit counter value at ``begin``: a RID's
  visible value is the latest chain entry stamped at or before the snapshot,
  falling back to the pending marker's committed value, falling back to the
  live heap.

Readers take **no locks** and touch **no WAL**: version chains are immutable
tuples replaced wholesale (publish and GC swap the whole tuple under the
transaction manager's mutex), so a reader holding a stale tuple still sees a
consistent committed prefix.  Chains are pruned against the oldest active
snapshot on every publish and by a periodic vacuum.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.storage.schema import Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.concurrency.transactions import LocalTransactionManager
    from repro.storage.table import Table

#: Version-chain type: ascending ``(commit_ts, value)`` entries; a ``None``
#: value records a committed delete.
Chain = tuple[tuple[int, "Row | None"], ...]

_MISSING = object()


def visible_value(table: "Table", rid: int, ts: int) -> Row | None:
    """The committed value of ``rid`` as of commit timestamp ``ts``.

    Returns ``None`` when the row did not exist (or was deleted) at ``ts``.
    """
    chain = table.versions.get(rid)
    if chain is not None:
        value = _MISSING
        for entry_ts, entry_value in chain:
            if entry_ts <= ts:
                value = entry_value
            else:
                break
        if value is not _MISSING:
            return value
        # Every entry is newer than the snapshot and the pre-chain baseline
        # was pruned: only possible for snapshots older than the GC horizon,
        # which registered snapshots never are.
        return None
    marker = table.uncommitted.get(rid)
    if marker is not None:
        return marker[1]
    return table.rows.get(rid)


def prune_chain(chain: Chain, horizon: int) -> Chain:
    """Drop entries no active snapshot can need.

    Keeps the latest entry stamped at or before ``horizon`` (the oldest
    active snapshot still resolves through it) plus everything newer.
    """
    keep_from = 0
    for position, (entry_ts, _) in enumerate(chain):
        if entry_ts <= horizon:
            keep_from = position
        else:
            break
    return chain[keep_from:] if keep_from else chain


class Snapshot:
    """A read view over one component DBMS, pinned at a commit timestamp.

    Obtained from :meth:`LocalTransactionManager.begin_snapshot`; must be
    released (``release()`` or the context-manager protocol) so version GC
    can advance past it.
    """

    __slots__ = ("manager", "snapshot_id", "ts", "_released")

    def __init__(
        self, manager: "LocalTransactionManager", snapshot_id: int, ts: int
    ):
        self.manager = manager
        self.snapshot_id = snapshot_id
        self.ts = ts
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self.manager.release_snapshot(self)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot(id={self.snapshot_id}, ts={self.ts})"

    # -- visibility ------------------------------------------------------

    def visible_get(self, table: "Table", rid: int) -> Row | None:
        """The value of ``rid`` visible to this snapshot, or ``None``."""
        return visible_value(table, rid, self.ts)

    def visible_items(self, table: "Table") -> Iterator[tuple[int, Row]]:
        """Yield visible ``(rid, row)`` pairs in RID (insertion) order."""
        candidates = set(table.rows)
        if table.versions:
            candidates.update(table.versions)
        if table.uncommitted:
            candidates.update(table.uncommitted)
        for rid in sorted(candidates):
            row = visible_value(table, rid, self.ts)
            if row is not None:
                yield rid, row

    def changed_rids(self, table: "Table") -> set[int]:
        """RIDs whose live heap/index state may differ from this snapshot.

        The union of uncommitted-writer markers and chains whose newest
        entry postdates the snapshot — exactly the RIDs an index scan must
        re-check against visible values (the set is small: GC bounds it by
        the churn since the oldest active snapshot).
        """
        changed = set(table.uncommitted)
        for rid, chain in list(table.versions.items()):
            if chain and chain[-1][0] > self.ts:
                changed.add(rid)
        return changed
