"""Write-ahead log for one component DBMS (and for the 2PC coordinator).

An append-only record list with monotonically increasing LSNs.  The
interesting records for the federation layer are the 2PC ones: PREPARE,
COMMIT, ABORT — recovery uses them to decide the fate of in-doubt
transactions after a (simulated) crash.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field


class LogRecordType(enum.Enum):
    BEGIN = "BEGIN"
    INSERT = "INSERT"
    DELETE = "DELETE"
    UPDATE = "UPDATE"
    PREPARE = "PREPARE"
    COMMIT = "COMMIT"
    ABORT = "ABORT"
    # Coordinator-side records
    COORD_BEGIN_2PC = "COORD_BEGIN_2PC"
    COORD_COMMIT = "COORD_COMMIT"
    COORD_ABORT = "COORD_ABORT"
    COORD_END = "COORD_END"
    # Decision-delivery bookkeeping: a decision message to one participant
    # could not be delivered (parked for recovery) / was finally delivered.
    COORD_PENDING = "COORD_PENDING"
    COORD_DELIVERED = "COORD_DELIVERED"


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    record_type: LogRecordType
    txn_id: object
    payload: tuple = ()


@dataclass
class WriteAheadLog:
    """In-memory WAL with crash/recovery helpers for the tests."""

    records: list[LogRecord] = field(default_factory=list)
    flushed_lsn: int = -1
    _next_lsn: int = 0
    # LSN allocation and the record list mutate together; concurrent
    # branch commits (parallel federation traffic) must not interleave.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def append(
        self,
        record_type: LogRecordType,
        txn_id: object,
        payload: tuple = (),
        flush: bool = False,
    ) -> LogRecord:
        with self._lock:
            record = LogRecord(self._next_lsn, record_type, txn_id, payload)
            self._next_lsn += 1
            self.records.append(record)
            if flush:
                self.flushed_lsn = self._next_lsn - 1
        return record

    def flush(self) -> None:
        """Force the log to 'stable storage' (advance the flushed horizon)."""
        with self._lock:
            self.flushed_lsn = self._next_lsn - 1

    def durable_records(self) -> list[LogRecord]:
        """Records that survive a crash: only those at or below flushed_lsn."""
        return [r for r in self.records if r.lsn <= self.flushed_lsn]

    def simulate_crash(self) -> None:
        """Drop unflushed records, as a crash would."""
        self.records = self.durable_records()

    # -- recovery analysis -------------------------------------------------

    def in_doubt_transactions(self) -> set[object]:
        """Transactions PREPAREd but with no durable COMMIT/ABORT record."""
        prepared: set[object] = set()
        finished: set[object] = set()
        for record in self.durable_records():
            if record.record_type is LogRecordType.PREPARE:
                prepared.add(record.txn_id)
            elif record.record_type in (
                LogRecordType.COMMIT,
                LogRecordType.ABORT,
            ):
                finished.add(record.txn_id)
        return prepared - finished

    def pending_deliveries(self) -> dict[tuple[object, str], str]:
        """(txn_id, site) → decision for parked, still-undelivered decisions.

        A ``COORD_PENDING`` record parks one participant's undeliverable
        COMMIT/ABORT decision; a later ``COORD_DELIVERED`` record for the
        same (txn, site) clears it.  Only durable records count — this is
        the coordinator's crash-surviving pending-delivery list.
        """
        pending: dict[tuple[object, str], str] = {}
        for record in self.durable_records():
            if record.record_type is LogRecordType.COORD_PENDING:
                site, decision = record.payload
                pending[(record.txn_id, site)] = decision
            elif record.record_type is LogRecordType.COORD_DELIVERED:
                (site,) = record.payload
                pending.pop((record.txn_id, site), None)
        return pending

    def coordinator_decisions(self) -> dict[object, str]:
        """txn_id → 'commit' | 'abort' from durable coordinator records."""
        decisions: dict[object, str] = {}
        for record in self.durable_records():
            if record.record_type is LogRecordType.COORD_COMMIT:
                decisions[record.txn_id] = "commit"
            elif record.record_type is LogRecordType.COORD_ABORT:
                decisions[record.txn_id] = "abort"
        return decisions
