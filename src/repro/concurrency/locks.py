"""Strict two-phase-locking lock manager.

Table-granularity S/X locks with upgrade, FIFO-biased waiting, an optional
local wait-for-graph deadlock detector, and bounded waits that raise
:class:`~repro.errors.LockTimeoutError` — the primitive MYRIAD's gateways use
to signal a suspected *global* deadlock up to the federation layer.

The lock manager also exposes its wait-for edges so the federation-level
"oracle" global deadlock detector (benchmark baseline) can union the graphs
of every component DBMS.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from repro.errors import DeadlockError, LockTimeoutError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return held is LockMode.SHARED and requested is LockMode.SHARED


@dataclass
class _LockState:
    """Holders and waiters of one resource."""

    holders: dict[object, LockMode] = field(default_factory=dict)
    waiters: list[tuple[object, LockMode]] = field(default_factory=list)


class LockManager:
    """One lock manager per component DBMS (per the paper: local 2PL).

    ``owner`` identifiers are opaque (transaction ids).  All methods are
    thread-safe; waiting happens on a single condition variable, which is
    plenty at the scale of the experiments.
    """

    def __init__(self, detect_local_deadlocks: bool = True):
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._resources: dict[str, _LockState] = {}
        self._held_by_owner: dict[object, set[str]] = {}
        self._cancelled: set[object] = set()
        self.detect_local_deadlocks = detect_local_deadlocks
        # Counters for experiments.
        self.acquisitions = 0
        self.waits = 0
        self.timeouts = 0
        self.local_deadlocks = 0

    # ------------------------------------------------------------------
    # Acquisition / release
    # ------------------------------------------------------------------

    def acquire(
        self,
        owner: object,
        resource: str,
        mode: LockMode,
        timeout: float | None = None,
    ) -> None:
        """Acquire (or upgrade) a lock, blocking up to ``timeout`` seconds.

        Raises :class:`LockTimeoutError` on timeout and
        :class:`DeadlockError` when the local wait-for graph shows that
        waiting would close a cycle.
        """
        with self._condition:
            state = self._resources.setdefault(resource, _LockState())

            if self._try_grant(owner, state, mode):
                self._note_grant(owner, resource)
                return

            if self.detect_local_deadlocks and self._would_deadlock(
                owner, state
            ):
                self.local_deadlocks += 1
                raise DeadlockError(
                    f"local deadlock acquiring {mode.value} on {resource!r}"
                )

            entry = (owner, mode)
            state.waiters.append(entry)
            self.waits += 1
            remaining = timeout
            import time as _time

            start = _time.monotonic()
            try:
                while True:
                    if owner in self._cancelled:
                        self._cancelled.discard(owner)
                        raise DeadlockError(
                            "lock wait cancelled: chosen as deadlock victim"
                        )
                    if self._try_grant(owner, state, mode, waiting=entry):
                        state.waiters.remove(entry)
                        self._note_grant(owner, resource)
                        self._condition.notify_all()
                        return
                    if timeout is not None:
                        remaining = timeout - (_time.monotonic() - start)
                        if remaining <= 0:
                            self.timeouts += 1
                            raise LockTimeoutError(
                                f"timed out waiting for {mode.value} on "
                                f"{resource!r}"
                            )
                    if self.detect_local_deadlocks and self._would_deadlock(
                        owner, state
                    ):
                        self.local_deadlocks += 1
                        raise DeadlockError(
                            f"local deadlock acquiring {mode.value} on "
                            f"{resource!r}"
                        )
                    self._condition.wait(
                        remaining if timeout is not None else 0.05
                    )
            except (LockTimeoutError, DeadlockError):
                if entry in state.waiters:
                    state.waiters.remove(entry)
                self._condition.notify_all()
                raise

    def _try_grant(
        self,
        owner: object,
        state: _LockState,
        mode: LockMode,
        waiting: tuple | None = None,
    ) -> bool:
        held = state.holders.get(owner)
        if held is not None:
            if held is mode or (
                held is LockMode.EXCLUSIVE and mode is LockMode.SHARED
            ):
                return True
            # Upgrade S → X: allowed when we are the only holder.
            if len(state.holders) == 1:
                state.holders[owner] = LockMode.EXCLUSIVE
                return True
            return False
        others = [m for o, m in state.holders.items() if o != owner]
        if any(not _compatible(m, mode) for m in others):
            return False
        # Fairness: a SHARED request should not jump an older EXCLUSIVE
        # waiter (prevents writer starvation), unless it is that waiter.
        if mode is LockMode.SHARED:
            for waiter_entry in state.waiters:
                if waiter_entry is waiting:
                    break
                if waiter_entry[1] is LockMode.EXCLUSIVE and waiter_entry[0] != owner:
                    return False
        state.holders[owner] = mode
        self.acquisitions += 1
        return True

    def _note_grant(self, owner: object, resource: str) -> None:
        self._held_by_owner.setdefault(owner, set()).add(resource)

    def cancel_waits(self, owner: object) -> None:
        """Make any in-progress lock wait of ``owner`` raise DeadlockError.

        Used by global deadlock-detection policies to kill a victim that is
        blocked inside a component DBMS.  No-op if the owner is not waiting
        (the flag is cleared on its next wait check).
        """
        with self._condition:
            self._cancelled.add(owner)
            self._condition.notify_all()

    def release_all(self, owner: object) -> None:
        """Strict 2PL: drop every lock at commit/abort time."""
        with self._condition:
            self._cancelled.discard(owner)
            resources = self._held_by_owner.pop(owner, set())
            for resource in resources:
                state = self._resources.get(resource)
                if state is not None:
                    state.holders.pop(owner, None)
                    if not state.holders and not state.waiters:
                        del self._resources[resource]
            self._condition.notify_all()

    # ------------------------------------------------------------------
    # Introspection (deadlock detection, experiments)
    # ------------------------------------------------------------------

    def holds(self, owner: object, resource: str) -> LockMode | None:
        with self._lock:
            state = self._resources.get(resource)
            if state is None:
                return None
            return state.holders.get(owner)

    def snapshot(self) -> list[dict]:
        """Point-in-time lock table: holders and waiters per resource.

        Returns one entry per locked resource:
        ``{"resource", "holders": {owner: "S"|"X"}, "waiters": [(owner,
        mode), ...]}`` — the raw material of the federation's
        ``system.lock_table()`` introspection view.
        """
        with self._lock:
            return [
                {
                    "resource": resource,
                    "holders": {
                        owner: mode.value
                        for owner, mode in state.holders.items()
                    },
                    "waiters": [
                        (owner, mode.value) for owner, mode in state.waiters
                    ],
                }
                for resource, state in sorted(self._resources.items())
            ]

    def wait_for_edges(self) -> list[tuple[object, object]]:
        """Edges (waiter → holder) of the current local wait-for graph."""
        with self._lock:
            return self._edges_locked()

    def _edges_locked(self) -> list[tuple[object, object]]:
        edges: list[tuple[object, object]] = []
        for state in self._resources.values():
            for waiter, mode in state.waiters:
                for holder, held_mode in state.holders.items():
                    if holder == waiter:
                        continue
                    if mode is LockMode.EXCLUSIVE or held_mode is LockMode.EXCLUSIVE:
                        edges.append((waiter, holder))
        return edges

    def _would_deadlock(self, owner: object, state: _LockState) -> bool:
        """Would ``owner`` waiting on ``state`` close a local cycle?"""
        edges = self._edges_locked()
        for holder, mode in state.holders.items():
            if holder != owner:
                edges.append((owner, holder))
        graph: dict[object, set[object]] = {}
        for source, target in edges:
            graph.setdefault(source, set()).add(target)
        # DFS from owner looking for a path back to owner.
        stack = list(graph.get(owner, ()))
        seen: set[object] = set()
        while stack:
            node = stack.pop()
            if node == owner:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
        return False
