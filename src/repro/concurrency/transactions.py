"""Local transactions: strict 2PL + undo logging + 2PC participant states.

Each component DBMS owns one :class:`LocalTransactionManager`.  Transactions
acquire table locks through a :class:`TxnMutator` (the engine's mutation
hook), record undo information, and can either commit locally or enter the
PREPARED state on behalf of a global (federated) transaction.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from repro.concurrency.locks import LockManager, LockMode
from repro.concurrency.mvcc import Snapshot, prune_chain
from repro.concurrency.wal import LogRecordType, WriteAheadLog
from repro.engine.executor import Mutator
from repro.errors import TransactionError
from repro.storage.schema import Row
from repro.storage.table import Table


class TxnState(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class _UndoEntry:
    kind: str  # 'insert' | 'delete' | 'update'
    table: Table
    rid: int
    old_row: Row | None = None


@dataclass
class LocalTransaction:
    txn_id: object
    state: TxnState = TxnState.ACTIVE
    undo: list[_UndoEntry] = field(default_factory=list)
    #: Set when this local transaction is a branch of a global transaction.
    global_id: object | None = None
    #: Table → RIDs this transaction wrote; drives MVCC version publish on
    #: commit and pending-marker cleanup on abort.
    mvcc_writes: dict[Table, set[int]] = field(default_factory=dict)

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}, not active"
            )


class LocalTransactionManager:
    """Begin/commit/abort plus the 2PC participant protocol for one DBMS."""

    def __init__(
        self,
        lock_manager: LockManager | None = None,
        wal: WriteAheadLog | None = None,
        lock_timeout: float | None = None,
    ):
        self.locks = lock_manager or LockManager()
        self.wal = wal or WriteAheadLog()
        self.lock_timeout = lock_timeout
        self._transactions: dict[object, LocalTransaction] = {}
        #: Prepared branches that survived a simulated process restart in
        #: their durable form (forced PREPARE record + undo + lock state).
        self._durable_prepared: dict[object, LocalTransaction] = {}
        self._mutex = threading.Lock()
        self._counter = 0
        # MVCC: commit-timestamp counter, active read views, and the tables
        # holding version chains (for vacuum).  All guarded by _mutex.
        self._commit_ts = 0
        self._active_snapshots: dict[int, int] = {}
        self._snapshot_counter = 0
        self._snapshot_releases = 0
        self._versioned_tables: set[Table] = set()
        #: Last commit timestamp that wrote each table (by lowercase name).
        #: The gateways fold this into their fragment-cache data versions so
        #: purely *local* commits — invisible to the federation — still
        #: invalidate cached fragments.
        self._table_commit_ts: dict[str, int] = {}
        #: Run a full vacuum every N snapshot releases (0 disables).
        self.vacuum_interval = 64
        # Experiment counters, guarded by _mutex (sessions are concurrent).
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin(
        self, txn_id: object | None = None, global_id: object | None = None
    ) -> LocalTransaction:
        with self._mutex:
            if txn_id is None:
                self._counter += 1
                txn_id = f"local-{self._counter}"
            if txn_id in self._transactions:
                raise TransactionError(f"transaction {txn_id} already exists")
            txn = LocalTransaction(txn_id, global_id=global_id)
            self._transactions[txn_id] = txn
        self.wal.append(LogRecordType.BEGIN, txn_id)
        return txn

    def get(self, txn_id: object) -> LocalTransaction:
        try:
            return self._transactions[txn_id]
        except KeyError:
            raise TransactionError(f"unknown transaction {txn_id}") from None

    def commit(self, txn: LocalTransaction) -> None:
        """One-phase (local-only) commit."""
        if txn.state is TxnState.PREPARED:
            self._finish_commit(txn)
            return
        txn.require_active()
        self._finish_commit(txn)

    def _finish_commit(self, txn: LocalTransaction) -> None:
        self.wal.append(LogRecordType.COMMIT, txn.txn_id, flush=True)
        txn.state = TxnState.COMMITTED
        txn.undo.clear()
        # Publish the new committed versions *before* releasing locks and
        # under the same mutex that stamps snapshots: a snapshot taken at
        # ts >= this commit is guaranteed to see every one of its writes.
        with self._mutex:
            if txn.mvcc_writes:
                self._commit_ts += 1
                self._publish_versions_locked(txn, self._commit_ts)
            self._transactions.pop(txn.txn_id, None)
            self.commits += 1
        self.locks.release_all(txn.txn_id)

    def abort(self, txn: LocalTransaction) -> None:
        if txn.state in (TxnState.COMMITTED, TxnState.ABORTED):
            return
        self._rollback_changes(txn)
        self._discard_pending(txn)
        self.wal.append(LogRecordType.ABORT, txn.txn_id, flush=True)
        txn.state = TxnState.ABORTED
        self.locks.release_all(txn.txn_id)
        with self._mutex:
            self._transactions.pop(txn.txn_id, None)
            self.aborts += 1

    def _rollback_changes(self, txn: LocalTransaction) -> None:
        for entry in reversed(txn.undo):
            if entry.kind == "insert":
                if entry.rid in entry.table.rows:
                    entry.table.delete(entry.rid)
            elif entry.kind == "delete":
                entry.table.restore(entry.rid, entry.old_row)
            elif entry.kind == "update":
                entry.table.update(entry.rid, entry.old_row)
        txn.undo.clear()

    def _discard_pending(self, txn: LocalTransaction) -> None:
        """Drop an aborted writer's pending markers (after undo restored
        the heap, so readers fall through to the committed values)."""
        for table, rids in txn.mvcc_writes.items():
            for rid in rids:
                table.clear_pending(rid)
        txn.mvcc_writes.clear()

    # ------------------------------------------------------------------
    # MVCC snapshots and version GC
    # ------------------------------------------------------------------

    @property
    def commit_ts(self) -> int:
        """Current commit-timestamp counter (stamped on writing commits)."""
        return self._commit_ts

    def begin_snapshot(self) -> Snapshot:
        """Open a read view pinned at the current commit timestamp."""
        with self._mutex:
            self._snapshot_counter += 1
            snapshot = Snapshot(self, self._snapshot_counter, self._commit_ts)
            self._active_snapshots[snapshot.snapshot_id] = snapshot.ts
        return snapshot

    def release_snapshot(self, snapshot: Snapshot) -> None:
        with self._mutex:
            if self._active_snapshots.pop(snapshot.snapshot_id, None) is None:
                return
            self._snapshot_releases += 1
            if (
                self.vacuum_interval
                and self._snapshot_releases % self.vacuum_interval == 0
            ):
                self._vacuum_locked()

    def active_snapshots(self) -> int:
        with self._mutex:
            return len(self._active_snapshots)

    def oldest_snapshot_ts(self) -> int:
        """GC horizon: the oldest active read view (or "now" if none)."""
        with self._mutex:
            return min(self._active_snapshots.values(), default=self._commit_ts)

    def vacuum(self) -> None:
        """Prune every version chain against the oldest active snapshot."""
        with self._mutex:
            self._vacuum_locked()

    def table_commit_ts(self, table_name: str) -> int:
        """Commit timestamp of the last committed write to ``table_name``."""
        with self._mutex:
            return self._table_commit_ts.get(table_name.lower(), 0)

    def _publish_versions_locked(
        self, txn: LocalTransaction, commit_ts: int
    ) -> None:
        horizon = min(self._active_snapshots.values(), default=commit_ts)
        for table, rids in txn.mvcc_writes.items():
            self._table_commit_ts[table.name.lower()] = commit_ts
            for rid in rids:
                marker = table.uncommitted.get(rid)
                chain = table.versions.get(rid)
                value = table.rows.get(rid)
                if chain is None:
                    # Baseline entry (ts 0) carries the pre-chain committed
                    # value so older snapshots keep resolving.
                    old = marker[1] if marker is not None else None
                    chain = ((0, old), (commit_ts, value))
                else:
                    chain = chain + ((commit_ts, value),)
                chain = prune_chain(chain, horizon)
                if len(chain) == 1 and chain[0][0] <= horizon:
                    # Nothing older than the horizon needs history and the
                    # single entry equals the live heap: drop the chain.
                    table.versions.pop(rid, None)
                else:
                    table.versions[rid] = chain
                # Only after the chain is in place may the marker go: a
                # racing reader must never fall through to the new heap
                # value with a pre-commit snapshot.
                table.uncommitted.pop(rid, None)
            if table.versions:
                self._versioned_tables.add(table)
        txn.mvcc_writes.clear()

    def _vacuum_locked(self) -> None:
        horizon = min(self._active_snapshots.values(), default=self._commit_ts)
        for table in list(self._versioned_tables):
            for rid in list(table.versions):
                chain = table.versions.get(rid)
                if chain is None:  # pragma: no cover - racing publish
                    continue
                pruned = prune_chain(chain, horizon)
                if (
                    len(pruned) == 1
                    and pruned[0][0] <= horizon
                    and rid not in table.uncommitted
                ):
                    table.versions.pop(rid, None)
                elif pruned is not chain:
                    table.versions[rid] = pruned
            if not table.versions:
                self._versioned_tables.discard(table)

    # ------------------------------------------------------------------
    # Two-phase-commit participant interface (used by the gateways)
    # ------------------------------------------------------------------

    def prepare(self, txn: LocalTransaction) -> bool:
        """Phase 1: vote.  Returns True (YES) after forcing the log."""
        txn.require_active()
        self.wal.append(
            LogRecordType.PREPARE, txn.txn_id, (txn.global_id,), flush=True
        )
        txn.state = TxnState.PREPARED
        return True

    def commit_prepared(self, txn: LocalTransaction) -> None:
        if txn.state is not TxnState.PREPARED:
            raise TransactionError(
                f"transaction {txn.txn_id} not prepared (state {txn.state.value})"
            )
        self._finish_commit(txn)

    def abort_prepared(self, txn: LocalTransaction) -> None:
        if txn.state is not TxnState.PREPARED:
            raise TransactionError(
                f"transaction {txn.txn_id} not prepared (state {txn.state.value})"
            )
        txn.state = TxnState.ACTIVE  # allow undo path
        self.abort(txn)

    def active_transactions(self) -> list[LocalTransaction]:
        with self._mutex:
            return list(self._transactions.values())

    # ------------------------------------------------------------------
    # Simulated process restart (participant crash/recovery)
    # ------------------------------------------------------------------

    def simulate_process_restart(self) -> list[object]:
        """Crash and restart this DBMS process: volatile txn state is lost.

        Transactions that had not prepared die with the process — their
        writes are rolled back and their locks freed, as local crash
        recovery would.  PREPARED branches are different: phase 1 forced
        their PREPARE record (with undo information) to the log, so their
        durable form survives the restart — they are parked in
        :meth:`forgotten_prepared` (no longer ``active_transactions()``)
        with their locks still held, until 2PC recovery
        (:func:`repro.txn.recovery.recover_participant`) reinstates and
        resolves them against the coordinator's durable decision.

        Returns the txn ids of the surviving prepared branches.
        """
        with self._mutex:
            transactions = list(self._transactions.values())
            self._transactions.clear()
        survivors: list[object] = []
        for txn in transactions:
            if txn.state is TxnState.PREPARED:
                self._durable_prepared[txn.txn_id] = txn
                survivors.append(txn.txn_id)
            else:
                self._rollback_changes(txn)
                self._discard_pending(txn)
                self.wal.append(LogRecordType.ABORT, txn.txn_id, flush=True)
                txn.state = TxnState.ABORTED
                self.locks.release_all(txn.txn_id)
                with self._mutex:
                    self.aborts += 1
        return survivors

    def forgotten_prepared(self) -> list[object]:
        """Txn ids of prepared branches lost from memory by a restart."""
        return list(self._durable_prepared)

    def reinstate_prepared(self, txn_id: object) -> LocalTransaction:
        """Rebuild one forgotten prepared branch from its durable form."""
        try:
            txn = self._durable_prepared.pop(txn_id)
        except KeyError:
            raise TransactionError(
                f"no forgotten prepared transaction {txn_id}"
            ) from None
        with self._mutex:
            self._transactions[txn.txn_id] = txn
        return txn


class TxnMutator(Mutator):
    """Engine mutation hook that adds strict-2PL locking and undo logging."""

    def __init__(
        self,
        manager: LocalTransactionManager,
        txn: LocalTransaction,
        lock_timeout: float | None = None,
    ):
        self.manager = manager
        self.txn = txn
        self.lock_timeout = (
            lock_timeout if lock_timeout is not None else manager.lock_timeout
        )

    # -- lock hooks -------------------------------------------------------

    def read_lock(self, table: Table) -> None:
        self.txn.require_active()
        self.manager.locks.acquire(
            self.txn.txn_id, table.name.lower(), LockMode.SHARED, self.lock_timeout
        )

    def write_lock(self, table: Table) -> None:
        self.txn.require_active()
        self.manager.locks.acquire(
            self.txn.txn_id,
            table.name.lower(),
            LockMode.EXCLUSIVE,
            self.lock_timeout,
        )

    # -- mutations with undo logging ---------------------------------------

    def _track_write(self, table: Table, rid: int) -> None:
        self.txn.mvcc_writes.setdefault(table, set()).add(rid)

    def insert(self, table: Table, row: Row) -> int:
        self.write_lock(table)
        # The pending marker is registered inside insert(), before the row
        # reaches the heap, so snapshot readers never see it uncommitted.
        rid = table.insert(row, pending_owner=self.txn.txn_id)
        self._track_write(table, rid)
        self.txn.undo.append(_UndoEntry("insert", table, rid))
        self.manager.wal.append(
            LogRecordType.INSERT, self.txn.txn_id, (table.name, rid)
        )
        return rid

    def delete(self, table: Table, rid: int) -> Row:
        self.write_lock(table)
        table.mark_pending(rid, self.txn.txn_id)
        self._track_write(table, rid)
        old_row = table.delete(rid)
        self.txn.undo.append(_UndoEntry("delete", table, rid, old_row))
        self.manager.wal.append(
            LogRecordType.DELETE, self.txn.txn_id, (table.name, rid)
        )
        return old_row

    def update(self, table: Table, rid: int, new_row: Row):
        self.write_lock(table)
        # Mark (and track) before mutating: if the update itself fails the
        # marker still resolves at commit/abort instead of leaking.
        table.mark_pending(rid, self.txn.txn_id)
        self._track_write(table, rid)
        old_row, new = table.update(rid, new_row)
        self.txn.undo.append(_UndoEntry("update", table, rid, old_row))
        self.manager.wal.append(
            LogRecordType.UPDATE, self.txn.txn_id, (table.name, rid)
        )
        return old_row, new
