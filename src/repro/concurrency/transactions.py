"""Local transactions: strict 2PL + undo logging + 2PC participant states.

Each component DBMS owns one :class:`LocalTransactionManager`.  Transactions
acquire table locks through a :class:`TxnMutator` (the engine's mutation
hook), record undo information, and can either commit locally or enter the
PREPARED state on behalf of a global (federated) transaction.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from repro.concurrency.locks import LockManager, LockMode
from repro.concurrency.wal import LogRecordType, WriteAheadLog
from repro.engine.executor import Mutator
from repro.errors import TransactionError
from repro.storage.schema import Row
from repro.storage.table import Table


class TxnState(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class _UndoEntry:
    kind: str  # 'insert' | 'delete' | 'update'
    table: Table
    rid: int
    old_row: Row | None = None


@dataclass
class LocalTransaction:
    txn_id: object
    state: TxnState = TxnState.ACTIVE
    undo: list[_UndoEntry] = field(default_factory=list)
    #: Set when this local transaction is a branch of a global transaction.
    global_id: object | None = None

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}, not active"
            )


class LocalTransactionManager:
    """Begin/commit/abort plus the 2PC participant protocol for one DBMS."""

    def __init__(
        self,
        lock_manager: LockManager | None = None,
        wal: WriteAheadLog | None = None,
        lock_timeout: float | None = None,
    ):
        self.locks = lock_manager or LockManager()
        self.wal = wal or WriteAheadLog()
        self.lock_timeout = lock_timeout
        self._transactions: dict[object, LocalTransaction] = {}
        #: Prepared branches that survived a simulated process restart in
        #: their durable form (forced PREPARE record + undo + lock state).
        self._durable_prepared: dict[object, LocalTransaction] = {}
        self._mutex = threading.Lock()
        self._counter = 0
        # Experiment counters
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin(
        self, txn_id: object | None = None, global_id: object | None = None
    ) -> LocalTransaction:
        with self._mutex:
            if txn_id is None:
                self._counter += 1
                txn_id = f"local-{self._counter}"
            if txn_id in self._transactions:
                raise TransactionError(f"transaction {txn_id} already exists")
            txn = LocalTransaction(txn_id, global_id=global_id)
            self._transactions[txn_id] = txn
        self.wal.append(LogRecordType.BEGIN, txn_id)
        return txn

    def get(self, txn_id: object) -> LocalTransaction:
        try:
            return self._transactions[txn_id]
        except KeyError:
            raise TransactionError(f"unknown transaction {txn_id}") from None

    def commit(self, txn: LocalTransaction) -> None:
        """One-phase (local-only) commit."""
        if txn.state is TxnState.PREPARED:
            self._finish_commit(txn)
            return
        txn.require_active()
        self._finish_commit(txn)

    def _finish_commit(self, txn: LocalTransaction) -> None:
        self.wal.append(LogRecordType.COMMIT, txn.txn_id, flush=True)
        txn.state = TxnState.COMMITTED
        txn.undo.clear()
        self.locks.release_all(txn.txn_id)
        with self._mutex:
            self._transactions.pop(txn.txn_id, None)
        self.commits += 1

    def abort(self, txn: LocalTransaction) -> None:
        if txn.state in (TxnState.COMMITTED, TxnState.ABORTED):
            return
        self._rollback_changes(txn)
        self.wal.append(LogRecordType.ABORT, txn.txn_id, flush=True)
        txn.state = TxnState.ABORTED
        self.locks.release_all(txn.txn_id)
        with self._mutex:
            self._transactions.pop(txn.txn_id, None)
        self.aborts += 1

    def _rollback_changes(self, txn: LocalTransaction) -> None:
        for entry in reversed(txn.undo):
            if entry.kind == "insert":
                if entry.rid in entry.table.rows:
                    entry.table.delete(entry.rid)
            elif entry.kind == "delete":
                entry.table.restore(entry.rid, entry.old_row)
            elif entry.kind == "update":
                entry.table.update(entry.rid, entry.old_row)
        txn.undo.clear()

    # ------------------------------------------------------------------
    # Two-phase-commit participant interface (used by the gateways)
    # ------------------------------------------------------------------

    def prepare(self, txn: LocalTransaction) -> bool:
        """Phase 1: vote.  Returns True (YES) after forcing the log."""
        txn.require_active()
        self.wal.append(
            LogRecordType.PREPARE, txn.txn_id, (txn.global_id,), flush=True
        )
        txn.state = TxnState.PREPARED
        return True

    def commit_prepared(self, txn: LocalTransaction) -> None:
        if txn.state is not TxnState.PREPARED:
            raise TransactionError(
                f"transaction {txn.txn_id} not prepared (state {txn.state.value})"
            )
        self._finish_commit(txn)

    def abort_prepared(self, txn: LocalTransaction) -> None:
        if txn.state is not TxnState.PREPARED:
            raise TransactionError(
                f"transaction {txn.txn_id} not prepared (state {txn.state.value})"
            )
        txn.state = TxnState.ACTIVE  # allow undo path
        self.abort(txn)

    def active_transactions(self) -> list[LocalTransaction]:
        with self._mutex:
            return list(self._transactions.values())

    # ------------------------------------------------------------------
    # Simulated process restart (participant crash/recovery)
    # ------------------------------------------------------------------

    def simulate_process_restart(self) -> list[object]:
        """Crash and restart this DBMS process: volatile txn state is lost.

        Transactions that had not prepared die with the process — their
        writes are rolled back and their locks freed, as local crash
        recovery would.  PREPARED branches are different: phase 1 forced
        their PREPARE record (with undo information) to the log, so their
        durable form survives the restart — they are parked in
        :meth:`forgotten_prepared` (no longer ``active_transactions()``)
        with their locks still held, until 2PC recovery
        (:func:`repro.txn.recovery.recover_participant`) reinstates and
        resolves them against the coordinator's durable decision.

        Returns the txn ids of the surviving prepared branches.
        """
        with self._mutex:
            transactions = list(self._transactions.values())
            self._transactions.clear()
        survivors: list[object] = []
        for txn in transactions:
            if txn.state is TxnState.PREPARED:
                self._durable_prepared[txn.txn_id] = txn
                survivors.append(txn.txn_id)
            else:
                self._rollback_changes(txn)
                self.wal.append(LogRecordType.ABORT, txn.txn_id, flush=True)
                txn.state = TxnState.ABORTED
                self.locks.release_all(txn.txn_id)
                self.aborts += 1
        return survivors

    def forgotten_prepared(self) -> list[object]:
        """Txn ids of prepared branches lost from memory by a restart."""
        return list(self._durable_prepared)

    def reinstate_prepared(self, txn_id: object) -> LocalTransaction:
        """Rebuild one forgotten prepared branch from its durable form."""
        try:
            txn = self._durable_prepared.pop(txn_id)
        except KeyError:
            raise TransactionError(
                f"no forgotten prepared transaction {txn_id}"
            ) from None
        with self._mutex:
            self._transactions[txn.txn_id] = txn
        return txn


class TxnMutator(Mutator):
    """Engine mutation hook that adds strict-2PL locking and undo logging."""

    def __init__(
        self,
        manager: LocalTransactionManager,
        txn: LocalTransaction,
        lock_timeout: float | None = None,
    ):
        self.manager = manager
        self.txn = txn
        self.lock_timeout = (
            lock_timeout if lock_timeout is not None else manager.lock_timeout
        )

    # -- lock hooks -------------------------------------------------------

    def read_lock(self, table: Table) -> None:
        self.txn.require_active()
        self.manager.locks.acquire(
            self.txn.txn_id, table.name.lower(), LockMode.SHARED, self.lock_timeout
        )

    def write_lock(self, table: Table) -> None:
        self.txn.require_active()
        self.manager.locks.acquire(
            self.txn.txn_id,
            table.name.lower(),
            LockMode.EXCLUSIVE,
            self.lock_timeout,
        )

    # -- mutations with undo logging ---------------------------------------

    def insert(self, table: Table, row: Row) -> int:
        self.write_lock(table)
        rid = table.insert(row)
        self.txn.undo.append(_UndoEntry("insert", table, rid))
        self.manager.wal.append(
            LogRecordType.INSERT, self.txn.txn_id, (table.name, rid)
        )
        return rid

    def delete(self, table: Table, rid: int) -> Row:
        self.write_lock(table)
        old_row = table.delete(rid)
        self.txn.undo.append(_UndoEntry("delete", table, rid, old_row))
        self.manager.wal.append(
            LogRecordType.DELETE, self.txn.txn_id, (table.name, rid)
        )
        return old_row

    def update(self, table: Table, rid: int, new_row: Row):
        self.write_lock(table)
        old_row, new = table.update(rid, new_row)
        self.txn.undo.append(_UndoEntry("update", table, rid, old_row))
        self.manager.wal.append(
            LogRecordType.UPDATE, self.txn.txn_id, (table.name, rid)
        )
        return old_row, new
