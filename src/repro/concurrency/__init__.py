"""Concurrency control: 2PL lock manager, WAL, local transactions."""

from repro.concurrency.locks import LockManager, LockMode
from repro.concurrency.mvcc import Snapshot
from repro.concurrency.transactions import (
    LocalTransaction,
    LocalTransactionManager,
    TxnMutator,
    TxnState,
)
from repro.concurrency.wal import LogRecord, LogRecordType, WriteAheadLog

__all__ = [
    "LockManager",
    "LockMode",
    "Snapshot",
    "LocalTransaction",
    "LocalTransactionManager",
    "TxnMutator",
    "TxnState",
    "LogRecord",
    "LogRecordType",
    "WriteAheadLog",
]
