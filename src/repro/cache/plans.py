"""Global plan cache.

Parsing, export expansion, and optimization are pure functions of the SQL
text, the chosen optimizer, the federation's schema, and the statistics
the cost model consulted — so a plan can be reused as long as that whole
key is unchanged.  The key therefore includes the federation's
``schema_version`` (bumped on any relation (re)definition) and every
gateway's ``stats_version`` (bumped when its statistics cache is
invalidated): redefining a schema or committing DML flushes affected
entries implicitly by changing the key.  With adaptive feedback enabled
the key also carries the ``runtime_stats_version`` of the federation's
:class:`~repro.query.feedback.RuntimeStatsStore`, so plans compiled from
superseded learned cardinalities expire the same way — and stop expiring
once the learned estimates converge.

Plans are mutated during execution (fragment registration annotates
them), so the cache stores and returns deep copies — the cached master is
never shared with an executing query.
"""

from __future__ import annotations

import copy

from repro.cache.lru import LRUCache
from repro.query.localizer import GlobalPlan


class PlanCache:
    """LRU of optimized :class:`~repro.query.localizer.GlobalPlan`s."""

    def __init__(self, capacity: int = 64):
        self._lru = LRUCache(capacity)

    def get(self, key: tuple) -> GlobalPlan | None:
        plan = self._lru.get(key)
        if plan is None:
            return None
        return copy.deepcopy(plan)

    def put(self, key: tuple, plan: GlobalPlan) -> None:
        self._lru.put(key, copy.deepcopy(plan))

    def clear(self) -> int:
        return self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def stats(self) -> dict[str, int]:
        return self._lru.stats
