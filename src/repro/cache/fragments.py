"""Federation-site fragment cache.

The most expensive part of a global query is shipping fragment results
from component sites; re-fetching data that has not changed buys nothing
but messages.  This cache keeps shipped fragments at the federation site,
keyed by ``(site, export, fragment-SQL digest)``, and validates every hit
against the owning gateway's *data version* for that export — a counter
bumped only when a write to the export's local table **commits** (see
:meth:`repro.gateway.Gateway.data_version`).  A stale entry is dropped on
sight, so invalidation costs nothing until the fragment is next wanted.

Serializability is preserved by construction: the global executor
bypasses this cache entirely for fetches inside a global transaction, and
degraded (``allow_partial``) fragments are never stored.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.cache.lru import LRUCache


def fragment_digest(sql_text: str) -> str:
    """Stable digest of one shipped fragment query's SQL text."""
    return hashlib.sha256(sql_text.encode()).hexdigest()[:24]


@dataclass
class CachedFragment:
    """One cached shipped fragment: rows plus the version they reflect."""

    columns: list[str]
    rows: list[tuple]
    version: tuple


class FragmentCache:
    """Version-checked LRU of shipped fragments."""

    def __init__(self, capacity: int = 128):
        self._lru = LRUCache(capacity)
        #: Entries dropped because their version no longer matched.
        self.stale_drops = 0

    @staticmethod
    def key(site: str, export: str, sql_text: str) -> tuple[str, str, str]:
        return (site, export.lower(), fragment_digest(sql_text))

    def lookup(
        self, site: str, export: str, sql_text: str, version: tuple
    ) -> CachedFragment | None:
        """A fresh cached fragment, or None (stale entries are evicted)."""
        key = self.key(site, export, sql_text)
        entry = self._lru.get(key)
        if entry is None:
            return None
        if entry.version != version:
            self._lru.invalidate(key)
            self.stale_drops += 1
            return None
        return entry

    def store(
        self,
        site: str,
        export: str,
        sql_text: str,
        fetched_at_version: tuple,
        current_version: tuple,
        columns: list[str],
        rows: list[tuple],
    ) -> bool:
        """Cache one fetched fragment.

        The caller captures the export's version *before* shipping the
        fetch; if it changed by the time the rows arrived (a concurrent
        commit), the fragment may already be stale and is not stored.
        """
        if fetched_at_version != current_version:
            return False
        self._lru.put(
            self.key(site, export, sql_text),
            CachedFragment(list(columns), list(rows), fetched_at_version),
        )
        return True

    def clear(self) -> int:
        return self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def stats(self) -> dict[str, int]:
        stats = self._lru.stats
        stats["stale_drops"] = self.stale_drops
        return stats
