"""Federation-site fragment cache.

The most expensive part of a global query is shipping fragment results
from component sites; re-fetching data that has not changed buys nothing
but messages.  This cache keeps shipped fragments at the federation site,
keyed by ``(site, export, fragment-SQL digest)``, and validates every hit
against the owning gateway's *data version* for that export — a counter
bumped only when a write to the export's local table **commits** (see
:meth:`repro.gateway.Gateway.data_version`).  A stale entry is dropped on
sight, so invalidation costs nothing until the fragment is next wanted.

Serializability is preserved by construction: the global executor
bypasses this cache entirely for fetches inside a global transaction, and
degraded (``allow_partial``) fragments are never stored.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.cache.lru import LRUCache


def fragment_digest(sql_text: str, codec: str = "") -> str:
    """Stable digest of one shipped fragment query's SQL text.

    ``codec`` folds the wire-encoding family into the digest, so entries
    stored compressed and entries stored raw never shadow each other when
    the ``wire_compression`` knob is toggled on a live system.
    """
    return hashlib.sha256(
        (sql_text + "\x00" + codec).encode()
    ).hexdigest()[:24]


@dataclass
class CachedFragment:
    """One cached shipped fragment plus the data version it reflects.

    The payload is either plain ``rows`` or the wire-encoded fragment the
    gateway shipped (``encoded``) — warm entries then hold compressed
    bytes and decode on hit.
    """

    columns: list[str]
    rows: list[tuple] | None
    version: tuple
    #: :class:`repro.net.codec.EncodedFragment` when stored compressed.
    encoded: object = None

    def materialize(self) -> list[tuple]:
        """The fragment's rows (decoding the encoded payload on demand)."""
        if self.encoded is not None:
            from repro.net.codec import decode_fragment

            return decode_fragment(self.encoded)
        return list(self.rows)


class FragmentCache:
    """Version-checked LRU of shipped fragments."""

    def __init__(self, capacity: int = 128):
        self._lru = LRUCache(capacity)
        #: Entries dropped because their version no longer matched.
        self.stale_drops = 0
        #: Cumulative raw-vs-stored sizes of compressed entries stored, for
        #: the ``fragcache.bytes_saved`` metric and dashboard ratios.
        self.bytes_raw = 0
        self.bytes_wire = 0

    @staticmethod
    def key(
        site: str, export: str, sql_text: str, codec: str = ""
    ) -> tuple[str, str, str]:
        return (site, export.lower(), fragment_digest(sql_text, codec))

    def lookup(
        self,
        site: str,
        export: str,
        sql_text: str,
        version: tuple,
        codec: str = "",
    ) -> CachedFragment | None:
        """A fresh cached fragment, or None (stale entries are evicted)."""
        key = self.key(site, export, sql_text, codec)
        entry = self._lru.get(key)
        if entry is None:
            return None
        if entry.version != version:
            self._lru.invalidate(key)
            self.stale_drops += 1
            return None
        return entry

    def store(
        self,
        site: str,
        export: str,
        sql_text: str,
        fetched_at_version: tuple,
        current_version: tuple,
        columns: list[str],
        rows: list[tuple],
        encoded: object = None,
        codec: str = "",
    ) -> bool:
        """Cache one fetched fragment.

        The caller captures the export's version *before* shipping the
        fetch; if it changed by the time the rows arrived (a concurrent
        commit), the fragment may already be stale and is not stored.
        With ``encoded`` (the wire-encoded payload the gateway shipped)
        the entry holds compressed bytes instead of rows.
        """
        if fetched_at_version != current_version:
            return False
        if encoded is not None:
            entry = CachedFragment(
                list(columns), None, fetched_at_version, encoded=encoded
            )
            self.bytes_raw += encoded.raw_bytes
            self.bytes_wire += encoded.wire_bytes
        else:
            entry = CachedFragment(
                list(columns), list(rows), fetched_at_version
            )
        self._lru.put(self.key(site, export, sql_text, codec), entry)
        return True

    def clear(self) -> int:
        return self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def stats(self) -> dict[str, int]:
        stats = self._lru.stats
        stats["stale_drops"] = self.stale_drops
        stats["bytes_raw"] = self.bytes_raw
        stats["bytes_wire"] = self.bytes_wire
        stats["bytes_saved"] = self.bytes_raw - self.bytes_wire
        return stats
