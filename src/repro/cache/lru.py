"""Thread-safe LRU map used by the plan and fragment caches."""

from __future__ import annotations

import threading
from collections import OrderedDict


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Every operation is guarded by one lock; ``get`` refreshes recency.
    Hit/miss/eviction counters are maintained for the observability layer
    (read them via :attr:`stats`).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._data: OrderedDict[object, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: object, default: object = None) -> object:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: object, value: object) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: object) -> bool:
        """Drop one entry; True when it existed."""
        with self._lock:
            return self._data.pop(key, None) is not None

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._data)
            self._data.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._data

    @property
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
