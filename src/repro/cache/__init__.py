"""Federation-side caching: plan cache and write-invalidated fragment cache.

Two caches sit between the global query processor and the gateways (the
tier the 4-level multidatabase architectures put between global and local
layers):

- :class:`PlanCache` — optimized :class:`~repro.query.localizer.GlobalPlan`
  objects keyed by (SQL text, optimizer, federation schema version, per-site
  statistics versions); a hit skips parse → expand → plan entirely
- :class:`FragmentCache` — shipped fragment results keyed by (site, export,
  fragment-SQL digest), validated against per-export data versions that
  gateways bump when writes commit; a hit costs zero network messages

Both are bounded LRUs (:class:`LRUCache`) and fully thread-safe.
"""

from repro.cache.fragments import CachedFragment, FragmentCache, fragment_digest
from repro.cache.lru import LRUCache
from repro.cache.plans import PlanCache

__all__ = [
    "CachedFragment",
    "FragmentCache",
    "LRUCache",
    "PlanCache",
    "fragment_digest",
]
