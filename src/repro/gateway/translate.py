"""Query translation: export-relation names → local-table subqueries.

The federation layer composes SQL over *export* relation names.  A gateway
rewrites each export reference into the equivalent derived table over the
local schema (projection + renaming + row predicate), then renders the whole
statement in the component DBMS's dialect.
"""

from __future__ import annotations

from repro.gateway.exports import ExportSchema
from repro.sql import ast


def rewrite_exports(query: ast.Query, exports: ExportSchema) -> ast.Query:
    """Return a copy of ``query`` with export names replaced by local views."""
    if isinstance(query, ast.SetOperation):
        return ast.SetOperation(
            query.kind,
            rewrite_exports(query.left, exports),
            rewrite_exports(query.right, exports),
            list(query.order_by),
            query.limit,
            query.offset,
        )
    return _rewrite_select(query, exports)


def _rewrite_select(select: ast.Select, exports: ExportSchema) -> ast.Select:
    rewritten = ast.Select(
        items=[
            ast.SelectItem(_rewrite_expr(i.expression, exports), i.alias)
            for i in select.items
        ],
        from_clause=[_rewrite_ref(r, exports) for r in select.from_clause],
        where=_rewrite_expr(select.where, exports)
        if select.where is not None
        else None,
        group_by=[_rewrite_expr(g, exports) for g in select.group_by],
        having=_rewrite_expr(select.having, exports)
        if select.having is not None
        else None,
        order_by=[
            ast.OrderItem(_rewrite_expr(o.expression, exports), o.ascending)
            for o in select.order_by
        ],
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )
    return rewritten


def _rewrite_ref(ref: ast.TableRef, exports: ExportSchema) -> ast.TableRef:
    if isinstance(ref, ast.TableName):
        if exports.has(ref.name):
            relation = exports.get(ref.name)
            return ast.SubqueryRef(relation.as_query(), ref.binding)
        return ref
    if isinstance(ref, ast.SubqueryRef):
        return ast.SubqueryRef(rewrite_exports(ref.query, exports), ref.alias)
    if isinstance(ref, ast.Join):
        return ast.Join(
            _rewrite_ref(ref.left, exports),
            _rewrite_ref(ref.right, exports),
            ref.join_type,
            _rewrite_expr(ref.condition, exports)
            if ref.condition is not None
            else None,
            list(ref.using),
        )
    return ref


def _rewrite_expr(expr: ast.Expression, exports: ExportSchema) -> ast.Expression:
    def replace(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.InSubquery):
            return ast.InSubquery(
                node.operand, rewrite_exports(node.query, exports), node.negated
            )
        if isinstance(node, ast.Exists):
            return ast.Exists(rewrite_exports(node.query, exports), node.negated)
        if isinstance(node, ast.ScalarSubquery):
            return ast.ScalarSubquery(rewrite_exports(node.query, exports))
        return node

    return ast.transform_expression(expr, replace)
