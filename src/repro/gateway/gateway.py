"""The MYRIAD gateway: the federation's ambassador at one component DBMS.

Responsibilities (as in the paper):

- expose the component's *export relations* and their statistics
- accept global SQL fragments, translate them to the local dialect, run them
  through a local session, and ship results back (every hop accounted on the
  simulated network)
- attach a *timeout* to each local query: if the local DBMS cannot finish in
  time (in this model: blocks on a lock that long), raise
  :class:`~repro.errors.GatewayTimeout`, which the global transaction manager
  interprets as a potential global deadlock and aborts the whole global
  transaction
- act as the 2PC participant proxy for global transactions (begin / prepare /
  commit / abort of the local branch)
"""

from __future__ import annotations

import threading
from decimal import Decimal

from repro.engine import ResultSet
from repro.errors import (
    CircuitOpenError,
    GatewayError,
    GatewayTimeout,
    LockTimeoutError,
    NetworkError,
)
from repro.gateway.exports import ExportRelation, ExportSchema
from repro.gateway.translate import rewrite_exports
from repro.localdb.dbms import LocalDBMS, Session
from repro.net import MessageTrace, Network, estimate_rows_bytes
from repro.obs import Observability, obs_of
from repro.sql import ast, to_sql
from repro.storage.stats import TableStats, analyze_rows

#: Virtual per-row processing cost at a component site (SPARC-era: ~50k
#: rows/s through the executor).
LOCAL_ROW_COST_S = 2e-5

#: Site name used for the federation server in message accounting.
FEDERATION_SITE = "federation"


class Gateway:
    """Gateway process in front of one component DBMS."""

    def __init__(
        self,
        dbms: LocalDBMS,
        network: Network,
        site: str | None = None,
        default_timeout: float | None = None,
        wire_compression: bool = False,
    ):
        self.dbms = dbms
        self.network = network
        self.site = site or dbms.name
        self.default_timeout = default_timeout
        #: When True, shipped fragment results are dictionary/RLE encoded
        #: before the ``result`` message is accounted: the network charges
        #: compressed bytes and the encoded payload rides back to the
        #: federation (``ResultSet.encoded``).  Off ⇒ byte accounting is
        #: bit-identical to the uncompressed system.
        self.wire_compression = bool(wire_compression)
        self.exports = ExportSchema(self.site)
        network.add_site(self.site)
        network.add_site(FEDERATION_SITE)
        self._txn_sessions: dict[object, Session] = {}
        self._stats_cache: dict[str, TableStats] = {}
        #: Per-export single-flight locks: concurrent statistics misses for
        #: one export must not double-run the export view (and must not
        #: let a stale recomputation overwrite a fresher ``refresh=True``).
        self._stats_flights: dict[str, threading.Lock] = {}
        #: Narrow mutex for the gateway's shared maps/counters.  Never held
        #: across a network send or a local execution — parallel fetches
        #: must not convoy behind a branch stuck in a lock wait.
        self._mutex = threading.Lock()
        #: Bumped whenever cached statistics are invalidated (DML commit,
        #: export change); part of the global plan-cache key.
        self.stats_version = 0
        # Fragment-cache invalidation state: per-local-table data version
        # counters, bumped only when a write *commits* (2PC or autocommit),
        # plus an export epoch covering export redefinitions and writes
        # whose table set was lost (process restart).
        self._table_versions: dict[str, int] = {}
        self._export_epoch = 0
        self._txn_writes: dict[object, set[str]] = {}
        # Experiment counters
        self.queries_executed = 0
        self.timeouts = 0
        #: Fragment fetches served from an MVCC snapshot (lock-free reads).
        self.snapshot_reads = 0
        # Fault-injection hooks (testing/benchmarks): vote NO on the next N
        # prepares / swallow the next N commit decisions (simulating a
        # participant crash between phases).
        self.fail_next_prepares = 0
        self.drop_next_commits = 0

    @property
    def obs(self) -> Observability:
        return obs_of(self.network)

    def _check_circuit(self) -> None:
        """Fail fast when this site's circuit breaker refuses traffic.

        Only the query/DML paths are gated: 2PC branch control
        (begin/prepare/commit/abort) and recovery must always be allowed
        to try — their deliveries are exactly the probes that re-close a
        breaker.  When the breaker is OPEN but its cooldown has elapsed,
        ``allow()`` admits this call as the half-open probe.
        """
        health = getattr(self.network, "health", None)
        if health is not None and not health.allow(self.site):
            self.obs.metrics.inc("gateway.circuit_open", site=self.site)
            raise CircuitOpenError(
                f"site {self.site!r} refused: circuit breaker is open",
                site=self.site,
            )

    # ------------------------------------------------------------------
    # Export management
    # ------------------------------------------------------------------

    def export_table(
        self,
        local_table: str,
        export_name: str | None = None,
        columns: list[str] | dict[str, str] | None = None,
        predicate: str | None = None,
    ) -> ExportRelation:
        """Expose a local table (or a projection/restriction of it)."""
        schema = self.dbms.table_schema(local_table)
        relation = self.exports.export_table(
            schema, export_name, columns, predicate
        )
        with self._mutex:
            self._stats_cache.pop(relation.name.lower(), None)
            self.stats_version += 1
            # Redefining an export changes what its fragments *mean*:
            # every cached fragment for this site is now suspect.
            self._export_epoch += 1
        return relation

    def export_names(self) -> list[str]:
        return self.exports.names()

    def export_relation_schema(self, name: str):
        relation = self.exports.get(name)
        local_schema = self.dbms.table_schema(relation.local_table)
        return self.exports.export_schema_of(name, local_schema)

    def export_stats(self, name: str, refresh: bool = False) -> TableStats:
        """Statistics of an export view (computed by running the view).

        Recomputation is **single-flight per export**: concurrent cache
        misses serialise on a per-key lock, so the view scan runs once and
        late arrivals reuse the result — and a plain miss that raced past
        a ``refresh=True`` caller can never overwrite the fresher
        statistics with its stale scan.  A refresh replaces the cached
        statistics *and* bumps ``stats_version``: plans compiled from the
        superseded statistics die in the plan cache by key change.
        """
        key = name.lower()
        if not refresh:
            with self._mutex:
                if key in self._stats_cache:
                    return self._stats_cache[key]
        with self._mutex:
            flight = self._stats_flights.setdefault(key, threading.Lock())
        with flight:
            if not refresh:
                # A concurrent miss (or refresh) computed it while this
                # caller waited for the flight lock: reuse, don't re-scan.
                with self._mutex:
                    if key in self._stats_cache:
                        return self._stats_cache[key]
            relation = self.exports.get(name)
            result = self.dbms.execute(relation.as_query())
            stats = analyze_rows(relation.name, result.columns, result.rows)
            with self._mutex:
                replacing = refresh and key in self._stats_cache
                self._stats_cache[key] = stats
                if replacing:
                    self.stats_version += 1
            return stats

    def invalidate_stats(self) -> None:
        with self._mutex:
            self._stats_cache.clear()
            self.stats_version += 1

    # ------------------------------------------------------------------
    # Fragment-cache versioning
    # ------------------------------------------------------------------

    def data_version(self, export_name: str) -> tuple[int, int, int]:
        """Version token for one export's underlying data.

        Changes whenever a write to the export's local table *commits*
        (or whenever the export itself is redefined), so the federation's
        fragment cache can compare-and-reuse shipped fragments.  The third
        component is the component DBMS's own per-table commit stamp, which
        moves on *local-application* commits the gateway never sees —
        without it a cached fragment would outlive an autonomous write.
        """
        try:
            local = self.exports.get(export_name).local_table.lower()
        except GatewayError:
            local = export_name.lower()
        local_ts = self.dbms.transactions.table_commit_ts(local)
        with self._mutex:
            return (
                self._export_epoch,
                self._table_versions.get(local, 0),
                local_ts,
            )

    def _record_write(self, global_id: object, local_table: str | None) -> None:
        with self._mutex:
            writes = self._txn_writes.setdefault(global_id, set())
            if local_table is not None:
                writes.add(local_table.lower())

    def _apply_writes(self, writes: set[str] | None) -> None:
        """Make a resolved branch's writes visible to version readers.

        ``None`` means the branch's write set was lost (e.g. resolved
        through recovery after a process restart): conservatively bump the
        site-wide epoch instead — over-invalidation is always safe.
        """
        with self._mutex:
            if writes is None:
                self._export_epoch += 1
            elif writes:
                for table in writes:
                    self._table_versions[table] = (
                        self._table_versions.get(table, 0) + 1
                    )
            else:
                return  # read-only branch: nothing changed
            self._stats_cache.clear()
            self.stats_version += 1

    # ------------------------------------------------------------------
    # Query shipping
    # ------------------------------------------------------------------

    def execute_query(
        self,
        query: ast.Query | str,
        trace: MessageTrace | None = None,
        from_site: str = FEDERATION_SITE,
        timeout: float | None = None,
        global_id: object | None = None,
        request_id: str | None = None,
    ) -> ResultSet:
        """Translate, run locally, and ship back one query fragment."""
        if isinstance(query, str):
            from repro.sql import parse_query

            query = parse_query(query)
        self._check_circuit()
        local_query = rewrite_exports(query, self.exports)
        sql_text = to_sql(local_query, self.dbms.dialect)

        obs = self.obs
        with obs.span("gateway.query", site=self.site) as span:
            if request_id is not None:
                span.tag(request=request_id)
            request_cost = self.network.send(
                from_site,
                self.site,
                len(sql_text.encode()),
                "query",
                trace,
                request_id=request_id,
            )
            session = self._session_for(global_id)
            result = self._run_local(session, sql_text, timeout)
            compute_cost = (
                self.dbms.engine.last_report.rows_scanned * LOCAL_ROW_COST_S
            )
            if trace is not None:
                trace.add_compute(compute_cost)
            rows = _normalize_rows(result.rows)
            encoded = None
            raw_bytes = None
            if self.wire_compression:
                from repro.net.codec import encode_fragment

                # Encode the canonicalised rows — exactly what the
                # federation receives — and charge compressed bytes.
                encoded = encode_fragment(result.columns, rows)
                result_bytes = encoded.wire_bytes
                if encoded.wire_bytes < encoded.raw_bytes:
                    raw_bytes = encoded.raw_bytes
            else:
                result_bytes = estimate_rows_bytes(result.rows)
            reply_cost = self.network.send(
                self.site,
                from_site,
                result_bytes,
                "result",
                trace,
                request_id=request_id,
                raw_bytes=raw_bytes,
            )
            with self._mutex:
                self.queries_executed += 1
                # Non-transactional fetches ran on a throwaway autocommit
                # session: with MVCC enabled that was a snapshot read.
                if global_id is None and getattr(
                    self.dbms, "mvcc_reads", False
                ):
                    self.snapshot_reads += 1
            sim_latency = request_cost + compute_cost + reply_cost
            span.set_sim(sim_latency).tag(
                rows=len(result.rows), bytes=result_bytes
            )
        metrics = obs.metrics
        metrics.inc("site.rows_shipped", len(result.rows), site=self.site)
        metrics.inc("site.bytes_shipped", result_bytes, site=self.site)
        metrics.observe("gateway.fetch_latency_s", sim_latency, site=self.site)
        # Per-site rolling window: the ops console's QPS / p95 per site.
        obs.window.inc("site.requests", site=self.site)
        obs.window.observe("site.latency_s", sim_latency, site=self.site)
        shipped = ResultSet(result.columns, rows)
        if encoded is not None:
            # The executor reads this for per-fetch raw-vs-wire actuals
            # and stores the encoded payload in the fragment cache.
            shipped.encoded = encoded
        return shipped

    def execute_update(
        self,
        statement: ast.Statement | str,
        global_id: object,
        trace: MessageTrace | None = None,
        from_site: str = FEDERATION_SITE,
        timeout: float | None = None,
    ) -> int:
        """Run a DML fragment inside a global transaction's local branch."""
        if isinstance(statement, str):
            from repro.sql import parse_statement

            statement = parse_statement(statement)
        if isinstance(statement, (ast.Select, ast.SetOperation)):
            raise GatewayError("execute_update expects a DML statement")
        self._check_circuit()
        local_stmt = _rewrite_dml(statement, self.exports)
        sql_text = to_sql(local_stmt, self.dbms.dialect)
        with self.obs.span("gateway.dml", site=self.site):
            self.network.send(
                from_site, self.site, len(sql_text.encode()), "dml", trace
            )
            session = self._session_for(global_id)
            result = self._run_local(session, sql_text, timeout)
            self.network.send(self.site, from_site, 8, "ack", trace)
        # Track which local table this branch wrote: fragment-cache
        # versions bump only if (and when) the branch commits.  An
        # autocommit DML (no global transaction) committed just now.
        written = getattr(local_stmt, "table", None)
        if global_id is None:
            self._apply_writes({written.lower()} if written else None)
        else:
            self._record_write(global_id, written)
        self.invalidate_stats()
        if isinstance(result, ResultSet):  # pragma: no cover - defensive
            return len(result)
        return result

    def _run_local(
        self, session: Session, sql_text: str, timeout: float | None
    ):
        effective = timeout if timeout is not None else self.default_timeout
        previous = session.lock_timeout
        session.lock_timeout = effective
        try:
            return session.execute(sql_text)
        except LockTimeoutError as error:
            # Paper semantics: no answer within the timeout period ⇒ assume
            # the global transaction is deadlocked.
            with self._mutex:
                self.timeouts += 1
            self.obs.metrics.inc("gateway.timeouts", site=self.site)
            self.obs.emit(
                "gateway.timeout", site=self.site, timeout_s=effective
            )
            raise GatewayTimeout(
                f"site {self.site!r}: local query exceeded its timeout "
                f"({effective}s): {error}",
                site=self.site,
            ) from error
        finally:
            session.lock_timeout = previous

    def _session_for(self, global_id: object | None) -> Session:
        if global_id is None:
            return self.dbms.connect()
        with self._mutex:
            session = self._txn_sessions.get(global_id)
        if session is None:
            raise GatewayError(
                f"no local branch for global transaction {global_id!r} at "
                f"{self.site!r}; call begin() first"
            )
        return session

    # ------------------------------------------------------------------
    # Global-transaction branch management (2PC participant proxy)
    # ------------------------------------------------------------------

    def begin(
        self,
        global_id: object,
        trace: MessageTrace | None = None,
        from_site: str = FEDERATION_SITE,
    ) -> None:
        with self._mutex:
            if global_id in self._txn_sessions:
                raise GatewayError(
                    f"global transaction {global_id!r} already has a branch "
                    "here"
                )
        with self.obs.span("gateway.begin", site=self.site, txn=global_id):
            self.network.send(from_site, self.site, 32, "begin", trace)
            session = self.dbms.connect()
            session.begin(global_id=global_id)
            with self._mutex:
                self._txn_sessions[global_id] = session
                # An explicit (empty) write set marks a tracked branch: a
                # read-only commit later bumps no fragment versions.
                self._txn_writes.setdefault(global_id, set())
            try:
                self.network.send(self.site, from_site, 8, "ack", trace)
            except NetworkError:
                # The federation never learns this branch opened; undo it
                # so a retried begin() starts clean instead of hitting a
                # duplicate.
                with self._mutex:
                    self._txn_sessions.pop(global_id, None)
                    self._txn_writes.pop(global_id, None)
                session.rollback()
                raise

    def has_branch(self, global_id: object) -> bool:
        with self._mutex:
            return global_id in self._txn_sessions

    def cancel_branch_waits(self, global_id: object) -> None:
        """Cancel any lock wait of this global transaction's local branch.

        Used by the federation's active deadlock-detection policy to kill a
        chosen victim that is blocked inside this component DBMS.
        """
        with self._mutex:
            session = self._txn_sessions.get(global_id)
        if session is not None and session.txn is not None:
            self.dbms.transactions.locks.cancel_waits(session.txn.txn_id)

    def prepared_branches(self) -> list[object]:
        """Global ids whose local branch is sitting in the PREPARED state."""
        with self._mutex:
            sessions = list(self._txn_sessions.items())
        return [
            global_id
            for global_id, session in sessions
            if session.txn is not None and session.txn.state.name == "PREPARED"
        ]

    def prepare(
        self,
        global_id: object,
        trace: MessageTrace | None = None,
        from_site: str = FEDERATION_SITE,
    ) -> bool:
        session = self._session_for(global_id)
        with self.obs.span(
            "gateway.prepare", site=self.site, txn=global_id
        ) as span:
            self.network.send(from_site, self.site, 32, "prepare", trace)
            if self.fail_next_prepares > 0:
                self.fail_next_prepares -= 1
                # Participant votes NO: its branch aborts locally right away.
                self.network.send(self.site, from_site, 8, "vote", trace)
                session.rollback()
                with self._mutex:
                    self._txn_sessions.pop(global_id, None)
                    self._txn_writes.pop(global_id, None)
                span.tag(vote=False)
                self._emit_branch_event(
                    global_id, "ABORTED", trace, vote=False
                )
                return False
            vote = session.prepare()
            self.network.send(self.site, from_site, 8, "vote", trace)
            span.tag(vote=vote)
        self._emit_branch_event(
            global_id, "PREPARED" if vote else "ABORTED", trace, vote=vote
        )
        return vote

    def commit(
        self,
        global_id: object,
        trace: MessageTrace | None = None,
        from_site: str = FEDERATION_SITE,
    ) -> None:
        if self.drop_next_commits > 0:
            # Simulated message loss / participant crash: the branch stays
            # prepared (in doubt) until recovery resolves it.  Unlike an
            # injected network fault this loss is silent — the coordinator
            # believes the decision was delivered.  The branch's write set
            # stays pending too: versions bump at the *real* commit.
            self.drop_next_commits -= 1
            self.network.send(from_site, self.site, 32, "commit", trace)
            return
        with self._mutex:
            session = self._txn_sessions.get(global_id)
        if session is None:
            # Branch already resolved — possibly below the gateway (process
            # restart + participant recovery).  If writes are still parked
            # here, their table set is unreliable: invalidate broadly.
            with self._mutex:
                leftover = self._txn_writes.pop(global_id, None)
            if leftover:
                self._apply_writes(None)
            return
        with self.obs.span("gateway.commit", site=self.site, txn=global_id):
            # The decision message travels first: if the network drops it,
            # the branch must stay in place (in doubt) so a retry or
            # recovery can still resolve it.
            self.network.send(from_site, self.site, 32, "commit", trace)
            with self._mutex:
                self._txn_sessions.pop(global_id, None)
                writes = self._txn_writes.pop(global_id, set())
            if session.txn is not None and session.txn.state.name == "PREPARED":
                session.commit_prepared()
            else:
                session.commit()
            self._apply_writes(writes)
            self._emit_branch_event(global_id, "COMMITTED", trace)
            self.network.send(self.site, from_site, 8, "ack", trace)

    def abort(
        self,
        global_id: object,
        trace: MessageTrace | None = None,
        from_site: str = FEDERATION_SITE,
    ) -> None:
        with self._mutex:
            session = self._txn_sessions.get(global_id)
        if session is None:
            # Nothing committed: discard any tracked writes unbumped.
            with self._mutex:
                self._txn_writes.pop(global_id, None)
            return
        with self.obs.span("gateway.abort", site=self.site, txn=global_id):
            # As with commit: deliver the decision before touching the branch.
            self.network.send(from_site, self.site, 32, "abort", trace)
            with self._mutex:
                self._txn_sessions.pop(global_id, None)
                # Aborted writes never became visible: no version bumps.
                self._txn_writes.pop(global_id, None)
            if session.txn is not None and session.txn.state.name == "PREPARED":
                session.rollback_prepared()
            else:
                session.rollback()
            self._emit_branch_event(global_id, "ABORTED", trace)
            self.network.send(self.site, from_site, 8, "ack", trace)

    # ------------------------------------------------------------------
    # Replication hooks (follower-side apply; no network accounting —
    # the replica group already charged the raft.append messages)
    # ------------------------------------------------------------------

    def apply_replicated(self, sql_text: str) -> int:
        """Apply one replicated statement to this replica's DBMS.

        The statement arrives in the export namespace (the leader captured
        it before its own local rewrite), so each replica re-translates it
        against its own exports and dialect.  Runs autocommit: the entry is
        already majority-durable, this replica just catches up.
        """
        from repro.sql import parse_statement

        statement = _rewrite_dml(parse_statement(sql_text), self.exports)
        local_text = to_sql(statement, self.dbms.dialect)
        result = self.dbms.connect().execute(local_text)
        written = getattr(statement, "table", None)
        self._apply_writes({written.lower()} if written else None)
        self.invalidate_stats()
        if isinstance(result, ResultSet):  # pragma: no cover - defensive
            return len(result)
        return result

    def adopt_branch(
        self, global_id: object, statements: tuple[str, ...]
    ) -> None:
        """Re-create an in-doubt PREPARED branch from its replicated
        write-set (a newly elected leader materialising a prepare entry its
        predecessor committed to the group log but never decided)."""
        with self._mutex:
            if global_id in self._txn_sessions:
                raise GatewayError(
                    f"global transaction {global_id!r} already has a branch "
                    "here"
                )
        from repro.sql import parse_statement

        session = self.dbms.connect()
        session.begin(global_id=global_id)
        written: set[str] = set()
        for sql_text in statements:
            statement = _rewrite_dml(parse_statement(sql_text), self.exports)
            session.execute(to_sql(statement, self.dbms.dialect))
            table = getattr(statement, "table", None)
            if table is not None:
                written.add(table.lower())
        session.prepare()
        with self._mutex:
            self._txn_sessions[global_id] = session
            self._txn_writes[global_id] = written
        self._emit_branch_event(global_id, "PREPARED", None, adopted=True)

    def resolve_replicated(self, global_id: object, decision: str) -> None:
        """Resolve a live local branch from a replicated decision entry.

        Used when the replica holding the branch learns the outcome from
        the group log (it led when the branch ran, or adopted it) rather
        than from a coordinator message.
        """
        with self._mutex:
            session = self._txn_sessions.pop(global_id, None)
            writes = self._txn_writes.pop(global_id, set())
        if session is None:
            return
        prepared = (
            session.txn is not None and session.txn.state.name == "PREPARED"
        )
        if decision == "commit":
            if prepared:
                session.commit_prepared()
            else:
                session.commit()
            self._apply_writes(writes)
            self._emit_branch_event(global_id, "COMMITTED", None)
        else:
            if prepared:
                session.rollback_prepared()
            else:
                session.rollback()
            self._emit_branch_event(global_id, "ABORTED", None)

    def _emit_branch_event(
        self,
        global_id: object,
        state: str,
        trace: MessageTrace | None,
        **fields: object,
    ) -> None:
        """Record one participant-side 2PC state transition."""
        self.obs.emit(
            "2pc",
            sim_s=trace.elapsed_s if trace is not None else None,
            txn=global_id,
            site=self.site,
            role="participant",
            state=state,
            **fields,
        )

    # ------------------------------------------------------------------
    # Introspection (deadlock-oracle baseline, lock table, 2PC states)
    # ------------------------------------------------------------------

    def _local_to_global(self) -> dict[object, object]:
        """Local txn id → global id, for branches of global transactions."""
        mapping: dict[object, object] = {}
        for txn in self.dbms.transactions.active_transactions():
            if txn.global_id is not None:
                mapping[txn.txn_id] = txn.global_id
        return mapping

    def wait_for_edges(self) -> list[tuple[object, object]]:
        """Local wait-for edges in terms of *global* transaction ids.

        Local-only transactions appear under their local ids; branches of
        global transactions are mapped to their global ids so the federation
        can stitch a global wait-for graph (the oracle detector baseline).
        """
        local_to_global = self._local_to_global()
        edges = []
        for waiter, holder in self.dbms.transactions.locks.wait_for_edges():
            edges.append(
                (
                    local_to_global.get(waiter, waiter),
                    local_to_global.get(holder, holder),
                )
            )
        return edges

    def lock_table(self) -> list[dict]:
        """This site's lock table, with branch owners in global-txn terms.

        One entry per locked resource: ``{"resource", "holders": {txn:
        mode}, "waiters": [[txn, mode], ...]}``; modes are ``"S"``/``"X"``.
        """
        local_to_global = self._local_to_global()

        def name(owner: object) -> str:
            return str(local_to_global.get(owner, owner))

        return [
            {
                "resource": entry["resource"],
                "holders": {
                    name(owner): mode
                    for owner, mode in entry["holders"].items()
                },
                "waiters": [
                    [name(owner), mode] for owner, mode in entry["waiters"]
                ],
            }
            for entry in self.dbms.transactions.locks.snapshot()
        ]

    def branch_states(self) -> dict[object, str]:
        """Global id → local branch state for every open branch here."""
        with self._mutex:
            sessions = list(self._txn_sessions.items())
        return {
            global_id: session.txn.state.value
            for global_id, session in sessions
            if session.txn is not None
        }


def _rewrite_dml(statement: ast.Statement, exports: ExportSchema) -> ast.Statement:
    """Map export-relation names in DML to local tables.

    Updatable exports must expose the table 1:1 per column mapping; the
    rewrite renames the target table and the referenced columns.
    """
    if isinstance(statement, ast.Insert):
        if not exports.has(statement.table):
            return statement
        relation = exports.get(statement.table)
        columns = statement.columns or list(relation.columns.keys())
        local_columns = [relation.local_column(c) for c in columns]
        return ast.Insert(
            relation.local_table, local_columns, statement.rows, statement.query
        )
    if isinstance(statement, ast.Update):
        if not exports.has(statement.table):
            return statement
        relation = exports.get(statement.table)
        assignments = [
            (relation.local_column(c), _map_expr(v, relation))
            for c, v in statement.assignments
        ]
        where = (
            _map_expr(statement.where, relation)
            if statement.where is not None
            else None
        )
        return ast.Update(relation.local_table, assignments, where)
    if isinstance(statement, ast.Delete):
        if not exports.has(statement.table):
            return statement
        relation = exports.get(statement.table)
        where = (
            _map_expr(statement.where, relation)
            if statement.where is not None
            else None
        )
        return ast.Delete(relation.local_table, where)
    return statement


def _map_expr(expr: ast.Expression, relation: ExportRelation) -> ast.Expression:
    def replace(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.ColumnRef) and node.table is None:
            try:
                return ast.ColumnRef(relation.local_column(node.name))
            except GatewayError:
                return node
        return node

    return ast.transform_expression(expr, replace)


def _normalize_rows(rows: list[tuple]) -> list[tuple]:
    """Canonicalise dialect-specific value types (Decimal → int/float)."""
    out = []
    for row in rows:
        out.append(tuple(_normalize_value(v) for v in row))
    return out


def _normalize_value(value: object) -> object:
    if isinstance(value, Decimal):
        if value == value.to_integral_value():
            return int(value)
        return float(value)
    return value
