"""Export schemas: what a component DBMS exposes to federations.

Local autonomy means a component DBMS never exposes raw tables — it exports
*export relations*: a named view of one local table with column projection,
renaming, and an optional row-restriction predicate.  Everything above the
gateway (schema integration, global queries) sees only export relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GatewayError
from repro.sql import ast, parse_expression
from repro.storage.schema import Column, TableSchema


@dataclass
class ExportRelation:
    """One exported view of a local table.

    ``columns`` maps export-column name → local-column name, in export
    order.  ``predicate`` (SQL text over *local* column names) restricts the
    exported rows.
    """

    name: str
    local_table: str
    columns: dict[str, str]
    predicate: str | None = None

    def local_column(self, export_column: str) -> str:
        for export_name, local_name in self.columns.items():
            if export_name.lower() == export_column.lower():
                return local_name
        raise GatewayError(
            f"export relation {self.name!r} has no column {export_column!r}"
        )

    def as_query(self) -> ast.Select:
        """The export view as a SELECT over the local table."""
        items = [
            ast.SelectItem(ast.ColumnRef(local_name, self.local_table), export_name)
            for export_name, local_name in self.columns.items()
        ]
        where = parse_expression(self.predicate) if self.predicate else None
        return ast.Select(
            items=items,
            from_clause=[ast.TableName(self.local_table)],
            where=where,
        )


@dataclass
class ExportSchema:
    """All export relations offered by one component DBMS."""

    site: str
    relations: dict[str, ExportRelation] = field(default_factory=dict)

    def add(self, relation: ExportRelation) -> None:
        key = relation.name.lower()
        if key in self.relations:
            raise GatewayError(
                f"export relation {relation.name!r} already defined at "
                f"{self.site!r}"
            )
        self.relations[key] = relation

    def export_table(
        self,
        local_schema: TableSchema,
        export_name: str | None = None,
        columns: list[str] | dict[str, str] | None = None,
        predicate: str | None = None,
    ) -> ExportRelation:
        """Convenience: build and register an export of a local table."""
        if columns is None:
            mapping = {name: name for name in local_schema.column_names}
        elif isinstance(columns, dict):
            mapping = dict(columns)
        else:
            mapping = {name: name for name in columns}
        for local_name in mapping.values():
            local_schema.column_index(local_name)  # validate
        relation = ExportRelation(
            export_name or local_schema.name,
            local_schema.name,
            mapping,
            predicate,
        )
        self.add(relation)
        return relation

    def get(self, name: str) -> ExportRelation:
        try:
            return self.relations[name.lower()]
        except KeyError:
            raise GatewayError(
                f"site {self.site!r} exports no relation {name!r}"
            ) from None

    def has(self, name: str) -> bool:
        return name.lower() in self.relations

    def names(self) -> list[str]:
        return sorted(relation.name for relation in self.relations.values())

    def export_schema_of(
        self, name: str, local_schema: TableSchema
    ) -> TableSchema:
        """Canonical schema of an export relation (types from local columns)."""
        relation = self.get(name)
        columns = [
            Column(
                export_name,
                local_schema.column(local_name).datatype,
                local_schema.column(local_name).nullable,
            )
            for export_name, local_name in relation.columns.items()
        ]
        # The primary key survives export only if every key column is exposed.
        local_to_export = {
            local.lower(): export for export, local in relation.columns.items()
        }
        primary_key = []
        for key_column in local_schema.primary_key:
            exported = local_to_export.get(key_column.lower())
            if exported is None:
                primary_key = []
                break
            primary_key.append(exported)
        return TableSchema(relation.name, columns, primary_key)
