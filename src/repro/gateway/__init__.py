"""Gateways: dialect translation, export schemas, timeouts, 2PC proxying."""

from repro.gateway.exports import ExportRelation, ExportSchema
from repro.gateway.gateway import FEDERATION_SITE, LOCAL_ROW_COST_S, Gateway
from repro.gateway.translate import rewrite_exports

__all__ = [
    "ExportRelation",
    "ExportSchema",
    "FEDERATION_SITE",
    "LOCAL_ROW_COST_S",
    "Gateway",
    "rewrite_exports",
]
