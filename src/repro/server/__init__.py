"""Serving layer: concurrent client sessions over one MyriadSystem."""

from repro.server.server import ClientSession, FederationServer, SessionPool

__all__ = ["ClientSession", "FederationServer", "SessionPool"]
