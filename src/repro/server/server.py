"""Concurrent serving layer: many client sessions over one MyriadSystem.

The paper's MYRIAD sat behind a client/server interface where many
applications queried the federation at once.  :class:`FederationServer`
models that tier: it hands out independent :class:`ClientSession` objects
over a single :class:`~repro.myriad.MyriadSystem`, each with its own
transaction context, so one thread per client can issue autocommit queries,
DML, and explicit global transactions concurrently.

The server itself is thin by design — the heavy lifting is the PR 5
thread-safety work (network, gateways, WAL, plan/fragment caches) plus the
MVCC snapshot reads in the component DBMSs: autocommit SELECTs never take
table locks, so read traffic scales with threads instead of convoying
behind writers.

Caveats (documented, not hidden):

- ``BEGIN READ ONLY`` on a client session is federation-level: each
  statement reads a per-DBMS-consistent snapshot, but different statements
  (and different sites within one statement) may observe different commit
  points.  Single-site reads are fully snapshot-consistent.
- Direct local writes at a component (local autonomy) are visible to the
  next snapshot, exactly as live reads were before.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING

from repro.errors import MyriadError, ServerError, TransactionAborted
from repro.sql import ast, parse_statement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.myriad import MyriadSystem
    from repro.query import GlobalResult
    from repro.txn import GlobalTransaction

#: Counter fields aggregated from sessions into the server totals.
_STAT_FIELDS = ("queries", "updates", "commits", "aborts", "errors")


class ClientSession:
    """One client's connection to the federation server.

    Sessions are single-client objects: use one thread per session (the
    internal lock only turns accidental sharing into serialisation).
    Transaction state is per-session — an explicit ``BEGIN`` opens a global
    transaction whose branches live in the gateways' per-``global_id``
    local sessions, so concurrent clients never share locks or undo.
    """

    def __init__(self, server: "FederationServer", session_id: str):
        self.server = server
        self.system: "MyriadSystem" = server.system
        self.session_id = session_id
        self._lock = threading.RLock()
        self._txn: "GlobalTransaction | None" = None
        self._read_only = False
        self._closed = False
        # Per-session metrics.
        self.queries = 0
        self.updates = 0
        self.commits = 0
        self.aborts = 0
        self.errors = 0

    # -- transaction control ---------------------------------------------

    def begin(self, read_only: bool = False) -> "GlobalTransaction | None":
        """Open an explicit transaction (``None`` for read-only)."""
        with self._lock:
            self._require_open()
            if self._txn is not None or self._read_only:
                raise ServerError(
                    f"session {self.session_id} already has an open transaction"
                )
            if read_only:
                self._read_only = True
                return None
            self._txn = self.system.begin_transaction()
            return self._txn

    def commit(self) -> None:
        with self._lock:
            self._require_open()
            if self._read_only:
                self._read_only = False
                self.commits += 1
                return
            if self._txn is None:
                return
            txn, self._txn = self._txn, None
            try:
                txn.commit()
            except Exception:
                self.aborts += 1
                self.errors += 1
                raise
            self.commits += 1

    def rollback(self) -> None:
        with self._lock:
            self._require_open()
            if self._read_only:
                self._read_only = False
                self.aborts += 1
                return
            if self._txn is None:
                return
            txn, self._txn = self._txn, None
            txn.abort()
            self.aborts += 1

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None or self._read_only

    @property
    def closed(self) -> bool:
        return self._closed

    # -- statement execution ----------------------------------------------

    def execute(self, federation: str, sql: str):
        """Run one statement against ``federation``.

        Transaction-control statements manage this session's transaction;
        SELECTs return a :class:`~repro.query.GlobalResult` (snapshot reads
        when autocommit or read-only); DML returns the affected-row count.
        """
        statement = parse_statement(sql)
        with self._lock:
            self._require_open()
            if isinstance(statement, ast.BeginTransaction):
                self.begin(read_only=statement.read_only)
                return 0
            if isinstance(statement, ast.CommitTransaction):
                self.commit()
                return 0
            if isinstance(statement, ast.RollbackTransaction):
                self.rollback()
                return 0
            try:
                if isinstance(statement, (ast.Select, ast.SetOperation)):
                    self.queries += 1
                    # The serving layer is the request's entry point: mint
                    # the correlation id here so every span, event, and
                    # message of this statement carries one stable id.
                    request_id = self.system.obs.mint_request_id()
                    if self._txn is not None:
                        return self.system.transactional_query(
                            self._txn, federation, sql, request_id=request_id
                        )
                    return self.system.query(
                        federation, sql, request_id=request_id
                    )
                if self._read_only:
                    raise ServerError(
                        f"session {self.session_id}: read-only transaction "
                        f"cannot execute {type(statement).__name__}"
                    )
                self.updates += 1
                if self._txn is not None:
                    return self.system.transactional_update(
                        self._txn, federation, sql
                    )
                return self.system.update(federation, sql)
            except TransactionAborted:
                # The coordinator already aborted the global transaction
                # (timeout/deadlock victim): drop our handle to it.
                if self._txn is not None:
                    self._txn = None
                    self.aborts += 1
                self.errors += 1
                raise
            except ServerError:
                raise
            except MyriadError:
                self.errors += 1
                raise

    def query(self, federation: str, sql: str) -> "GlobalResult":
        result = self.execute(federation, sql)
        if isinstance(result, int):
            raise ServerError("statement did not produce rows")
        return result

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Abort any open transaction and return the slot to the server."""
        with self._lock:
            if self._closed:
                return
            try:
                if self.in_transaction:
                    self.rollback()
            finally:
                self._closed = True
                self.server._release(self)

    def _require_open(self) -> None:
        if self._closed:
            raise ServerError(f"session {self.session_id} is closed")

    def stats(self) -> dict:
        """This session's counters (one row of ``server.stats()``)."""
        with self._lock:
            return {
                "session_id": self.session_id,
                "in_transaction": self.in_transaction,
                **{name: getattr(self, name) for name in _STAT_FIELDS},
            }

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class FederationServer:
    """Thread-based session pool over one :class:`MyriadSystem`.

    ``connect()`` hands out a :class:`ClientSession` per client (bounded by
    ``max_sessions``); closing a session frees its slot and folds its
    counters into the server totals.  Obtain one via
    :meth:`MyriadSystem.create_server`, which also closes it on system
    shutdown.
    """

    def __init__(self, system: "MyriadSystem", max_sessions: int = 256):
        self.system = system
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._sessions: dict[str, ClientSession] = {}
        self._session_seq = itertools.count(1)
        self._closed = False
        self.total_connected = 0
        self.peak_sessions = 0
        self._retired = {name: 0 for name in _STAT_FIELDS}

    # -- session management ------------------------------------------------

    def connect(self) -> ClientSession:
        with self._lock:
            if self._closed:
                raise ServerError("federation server is closed")
            if len(self._sessions) >= self.max_sessions:
                raise ServerError(
                    f"session pool exhausted ({self.max_sessions} sessions)"
                )
            session = ClientSession(self, f"client-{next(self._session_seq)}")
            self._sessions[session.session_id] = session
            self.total_connected += 1
            self.peak_sessions = max(self.peak_sessions, len(self._sessions))
        return session

    def _release(self, session: ClientSession) -> None:
        with self._lock:
            if self._sessions.pop(session.session_id, None) is None:
                return
            for name in _STAT_FIELDS:
                self._retired[name] += getattr(session, name)

    def sessions(self) -> list[ClientSession]:
        with self._lock:
            return list(self._sessions.values())

    @property
    def open_sessions(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- aggregate metrics -------------------------------------------------

    def stats(self) -> dict:
        """Pool shape plus counters summed over open and closed sessions."""
        with self._lock:
            totals = dict(self._retired)
            for session in self._sessions.values():
                for name in _STAT_FIELDS:
                    totals[name] += getattr(session, name)
            return {
                "open": len(self._sessions),
                "peak": self.peak_sessions,
                "max": self.max_sessions,
                "total_connected": self.total_connected,
                **totals,
            }

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close every session (aborting open transactions); idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()

    def __enter__(self) -> "FederationServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


#: The pool *is* the server in this model; alias kept for API clarity.
SessionPool = FederationServer
