"""Per-site health tracking: consecutive-failure circuit breakers.

The paper's autonomy principle means component DBMSs fail independently —
a federation that keeps hammering a dead site turns one failure into a
latency storm for every query touching it.  This module gives the
federation a memory of recent failures, per site:

- every simulated message outcome is recorded (:meth:`HealthTracker.
  record_success` / :meth:`~HealthTracker.record_failure`, wired into
  :meth:`repro.net.Network.send`)
- ``threshold`` consecutive failures trip the site's breaker from
  **CLOSED** to **OPEN**: callers that consult :meth:`HealthTracker.allow`
  (the global executor, the 2PC decision-delivery retry loop, gateways)
  fail fast or skip the site instead of waiting out another timeout
- after ``cooldown_s`` of *simulated* time the next ``allow()`` moves the
  breaker to **HALF_OPEN** and lets exactly that caller through as a
  probe; a success re-closes the breaker, a failure re-opens it and
  restarts the cooldown

Recovery paths (``recover_in_doubt``, ``recover_participant``) never
consult the breaker — their delivery attempts *are* probes, and a success
there re-closes the breaker like any other.

State transitions are emitted as ``health.trip`` / ``health.probe`` /
``health.close`` events and counted in metrics when an
:class:`~repro.obs.Observability` handle is attached.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class SiteHealth:
    """Mutable health record for one site."""

    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    failures: int = 0
    successes: int = 0
    trips: int = 0
    probes: int = 0
    opened_at_s: float | None = None
    last_error: str | None = None
    #: Single-flight HALF_OPEN guard: True while the admitted probe's
    #: outcome is still pending; every other caller is refused meanwhile.
    probe_inflight: bool = False

    def as_dict(self) -> dict:
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "failures": self.failures,
            "successes": self.successes,
            "trips": self.trips,
            "probes": self.probes,
            "opened_at_s": self.opened_at_s,
            "last_error": self.last_error,
            "probe_inflight": self.probe_inflight,
        }


class HealthTracker:
    """Consecutive-failure circuit breakers for every site of a federation.

    ``clock`` supplies the *simulated* time used for the OPEN→HALF_OPEN
    cooldown; :class:`~repro.myriad.MyriadSystem` wires it to the
    network's cumulative virtual clock, so health decisions are as
    deterministic as everything else in the simulation.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 0.25,
        clock=None,
        obs=None,
    ):
        if threshold < 1:
            raise ValueError("health threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock or (lambda: 0.0)
        #: Optional :class:`repro.obs.Observability` handle for events/metrics.
        self.obs = obs
        self._sites: dict[str, SiteHealth] = {}
        self._mutex = threading.Lock()

    # -- observability ----------------------------------------------------

    def _emit(self, etype: str, site: str, **fields: object) -> None:
        if self.obs is not None:
            self.obs.emit(etype, site=site, sim_s=self._clock(), **fields)
            self.obs.metrics.inc(etype, site=site)

    # -- recording --------------------------------------------------------

    def _site(self, site: str) -> SiteHealth:
        return self._sites.setdefault(site, SiteHealth())

    def record_success(self, site: str) -> None:
        """One message round-trip (or probe) to ``site`` succeeded."""
        with self._mutex:
            health = self._site(site)
            health.successes += 1
            health.consecutive_failures = 0
            reopened = health.state is not BreakerState.CLOSED
            health.state = BreakerState.CLOSED
            health.opened_at_s = None
            health.last_error = None
            health.probe_inflight = False
        if reopened:
            self._emit("health.close", site)

    def record_failure(self, site: str, reason: str | None = None) -> None:
        """One message to ``site`` was lost (crash, partition, drop rule)."""
        with self._mutex:
            health = self._site(site)
            health.failures += 1
            health.consecutive_failures += 1
            health.last_error = reason
            health.probe_inflight = False
            tripped = False
            if health.state is BreakerState.HALF_OPEN:
                # The probe failed: back to OPEN, restart the cooldown.
                health.state = BreakerState.OPEN
                health.opened_at_s = self._clock()
                health.trips += 1
                tripped = True
            elif (
                health.state is BreakerState.CLOSED
                and health.consecutive_failures >= self.threshold
            ):
                health.state = BreakerState.OPEN
                health.opened_at_s = self._clock()
                health.trips += 1
                tripped = True
            # Capture inside the lock: another thread's outcome could
            # rewrite the counter before the event is emitted.
            failures_at_trip = health.consecutive_failures
        if tripped:
            self._emit(
                "health.trip",
                site,
                consecutive_failures=failures_at_trip,
                reason=reason,
            )

    # -- consultation -----------------------------------------------------

    def allow(self, site: str) -> bool:
        """May the caller attempt to talk to ``site`` right now?

        CLOSED: yes.  OPEN: no, until ``cooldown_s`` simulated seconds
        after the trip — then the breaker moves to HALF_OPEN and this call
        is admitted as the **single-flight probe**.  HALF_OPEN: no while
        that probe's outcome is pending — a burst arriving right after the
        cooldown must not turn into a probe stampede where one slow or
        failing request re-trips the breaker for all of them.  Mutates
        state; use :meth:`state` / :meth:`snapshot` for pure inspection.
        """
        with self._mutex:
            health = self._site(site)
            if health.state is BreakerState.CLOSED:
                return True
            now = self._clock()
            if health.state is BreakerState.OPEN:
                opened = health.opened_at_s or 0.0
                if now - opened < self.cooldown_s:
                    return False
                health.state = BreakerState.HALF_OPEN
                health.probes += 1
                health.probe_inflight = True
                # Reused as the probe admission stamp while HALF_OPEN.
                health.opened_at_s = now
            else:  # HALF_OPEN
                admitted = health.opened_at_s or 0.0
                if health.probe_inflight and now - admitted < self.cooldown_s:
                    return False
                # No probe pending, or the admitted one vanished without
                # an outcome for a whole cooldown (its caller resolved the
                # branch without sending): admit a replacement probe.
                health.probes += 1
                health.probe_inflight = True
                health.opened_at_s = now
        self._emit("health.probe", site)
        return True

    def state(self, site: str) -> BreakerState:
        """Current breaker state, without mutating it."""
        with self._mutex:
            health = self._sites.get(site)
            return health.state if health is not None else BreakerState.CLOSED

    def is_blocked(self, site: str) -> bool:
        """True when talking to ``site`` would currently be refused.

        Unlike :meth:`allow` this never starts a half-open probe, so it is
        safe for introspection and planning.
        """
        with self._mutex:
            health = self._sites.get(site)
            if health is None or health.state is BreakerState.CLOSED:
                return False
            opened = health.opened_at_s or 0.0
            if health.state is BreakerState.HALF_OPEN:
                # Only the in-flight probe may talk; everyone else waits
                # (until the probe slot goes stale after a cooldown).
                return (
                    health.probe_inflight
                    and self._clock() - opened < self.cooldown_s
                )
            return self._clock() - opened < self.cooldown_s

    # -- snapshots --------------------------------------------------------

    def snapshot(self, sites=None) -> dict[str, dict]:
        """JSON-safe per-site health map (all-CLOSED defaults for ``sites``)."""
        with self._mutex:
            known = {site: h.as_dict() for site, h in self._sites.items()}
        for site in sites or ():
            known.setdefault(site, SiteHealth().as_dict())
        return known


def health_of(network) -> HealthTracker | None:
    """The health tracker attached to a network, if any."""
    return getattr(network, "health", None)
