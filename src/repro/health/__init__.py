"""Per-site health tracking for the federation (circuit breakers)."""

from repro.health.breaker import (
    BreakerState,
    HealthTracker,
    SiteHealth,
    health_of,
)

__all__ = [
    "BreakerState",
    "HealthTracker",
    "SiteHealth",
    "health_of",
]
