"""Global transaction management: 2PC over gateways, timeout deadlock policy.

Implements the paper's transaction subsystem:

- the *general transaction model*: a global transaction touches any number
  of component DBMSs through their gateways; each touched site becomes a
  branch (participant)
- **two-phase commit** over the participants, with presumed-abort logging at
  the coordinator, to achieve serializable execution on top of the locals'
  strict 2PL
- **timeout-based global deadlock resolution**: every local query carries a
  timeout; when a gateway reports :class:`~repro.errors.GatewayTimeout`, the
  whole global transaction is assumed deadlocked and aborted
"""

from __future__ import annotations

import enum
import itertools
import threading

from repro.concurrency.wal import LogRecordType, WriteAheadLog
from repro.engine import ResultSet
from repro.errors import (
    GatewayTimeout,
    TransactionAborted,
    TransactionError,
    TwoPhaseCommitError,
)
from repro.gateway import Gateway
from repro.net import MessageTrace
from repro.sql import ast


class GlobalTxnState(enum.Enum):
    ACTIVE = "active"
    PREPARING = "preparing"
    COMMITTED = "committed"
    ABORTED = "aborted"


class GlobalTransaction:
    """One global transaction and its per-site branches."""

    def __init__(self, global_id: str, manager: "GlobalTransactionManager"):
        self.global_id = global_id
        self.manager = manager
        self.state = GlobalTxnState.ACTIVE
        self.participants: list[str] = []  # sites with open branches
        self.trace = MessageTrace()

    # -- convenience pass-throughs ------------------------------------------

    def execute(self, site: str, sql: str, timeout: float | None = None):
        return self.manager.execute(self, site, sql, timeout)

    def commit(self) -> None:
        self.manager.commit(self)

    def abort(self) -> None:
        self.manager.abort(self)

    def require_active(self) -> None:
        if self.state is not GlobalTxnState.ACTIVE:
            raise TransactionError(
                f"global transaction {self.global_id} is {self.state.value}"
            )

    def __enter__(self) -> "GlobalTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None and self.state is GlobalTxnState.ACTIVE:
            self.commit()
        elif self.state is GlobalTxnState.ACTIVE:
            self.abort()
        return False


class GlobalTransactionManager:
    """The federation's transaction coordinator."""

    def __init__(
        self,
        gateways: dict[str, Gateway],
        query_timeout: float | None = 5.0,
        wal: WriteAheadLog | None = None,
    ):
        self.gateways = gateways
        #: The paper's timeout period attached to every local query.
        self.query_timeout = query_timeout
        self.wal = wal or WriteAheadLog()
        self._counter = itertools.count(1)
        self._mutex = threading.Lock()
        self.active: dict[str, GlobalTransaction] = {}
        # Experiment counters
        self.commits = 0
        self.aborts = 0
        self.timeout_aborts = 0
        self.vote_no_aborts = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin(self, global_id: str | None = None) -> GlobalTransaction:
        with self._mutex:
            if global_id is None:
                global_id = f"G{next(self._counter)}"
            if global_id in self.active:
                raise TransactionError(
                    f"global transaction {global_id} already active"
                )
            txn = GlobalTransaction(global_id, self)
            self.active[global_id] = txn
        return txn

    def _branch(self, txn: GlobalTransaction, site: str) -> Gateway:
        try:
            gateway = self.gateways[site]
        except KeyError:
            raise TransactionError(f"unknown site {site!r}") from None
        if site not in txn.participants:
            gateway.begin(txn.global_id, txn.trace)
            txn.participants.append(site)
        return gateway

    # ------------------------------------------------------------------
    # Statement execution within a global transaction
    # ------------------------------------------------------------------

    def execute(
        self,
        txn: GlobalTransaction,
        site: str,
        sql: str | ast.Statement,
        timeout: float | None = None,
    ) -> ResultSet | int:
        """Run one statement on one site's branch.

        On :class:`GatewayTimeout` the entire global transaction is aborted
        (the paper's global-deadlock assumption) and
        :class:`TransactionAborted` is raised.
        """
        txn.require_active()
        gateway = self._branch(txn, site)
        effective = timeout if timeout is not None else self.query_timeout
        parsed = sql
        if isinstance(parsed, str):
            from repro.sql import parse_statement

            parsed = parse_statement(parsed)
        try:
            if isinstance(parsed, (ast.Select, ast.SetOperation)):
                return gateway.execute_query(
                    parsed,
                    trace=txn.trace,
                    timeout=effective,
                    global_id=txn.global_id,
                )
            return gateway.execute_update(
                parsed, txn.global_id, trace=txn.trace, timeout=effective
            )
        except GatewayTimeout:
            self.timeout_aborts += 1
            self.abort(txn)
            raise TransactionAborted(
                f"global transaction {txn.global_id} aborted: local query "
                f"at {site!r} exceeded its timeout (assumed global deadlock)",
                reason="timeout",
            ) from None
        except TransactionAborted:
            # The local DBMS aborted the branch (e.g. local deadlock victim).
            self.abort(txn)
            raise

    def run_global_query(
        self,
        txn: GlobalTransaction,
        processor,
        sql: str,
        optimizer: str | None = None,
        timeout: float | None = None,
    ):
        """Run a federation-level SELECT inside this global transaction.

        Branches are opened at every site the plan touches, so the reads
        acquire locks under the global transaction and stay serializable.
        """
        txn.require_active()
        plan = processor.plan(sql, optimizer)
        for fetch in plan.fetches:
            self._branch(txn, fetch.site)
        effective = timeout if timeout is not None else self.query_timeout
        try:
            return processor.executor.execute(
                plan,
                trace=txn.trace,
                timeout=effective,
                global_id=txn.global_id,
            )
        except GatewayTimeout:
            self.timeout_aborts += 1
            self.abort(txn)
            raise TransactionAborted(
                f"global transaction {txn.global_id} aborted: a fetch "
                "exceeded its timeout (assumed global deadlock)",
                reason="timeout",
            ) from None

    # ------------------------------------------------------------------
    # Two-phase commit
    # ------------------------------------------------------------------

    def commit(self, txn: GlobalTransaction) -> None:
        """Commit via 2PC (one-phase optimisation for ≤1 participant)."""
        txn.require_active()
        participants = list(txn.participants)

        if len(participants) <= 1:
            # One-phase: no coordination needed.
            for site in participants:
                self.gateways[site].commit(txn.global_id, txn.trace)
            self._finish(txn, GlobalTxnState.COMMITTED)
            return

        txn.state = GlobalTxnState.PREPARING
        self.wal.append(
            LogRecordType.COORD_BEGIN_2PC,
            txn.global_id,
            tuple(participants),
            flush=True,
        )

        votes_ok = True
        failed_site = None
        for site in participants:
            try:
                vote = self.gateways[site].prepare(txn.global_id, txn.trace)
            except (GatewayTimeout, TransactionError, TransactionAborted):
                vote = False
            if not vote:
                votes_ok = False
                failed_site = site
                break

        if not votes_ok:
            self.wal.append(
                LogRecordType.COORD_ABORT, txn.global_id, flush=True
            )
            self._abort_branches(txn)
            self._finish(txn, GlobalTxnState.ABORTED)
            self.vote_no_aborts += 1
            raise TwoPhaseCommitError(
                f"global transaction {txn.global_id} aborted: participant "
                f"{failed_site!r} voted NO"
            )

        # Decision is now durable: presumed abort before this point,
        # guaranteed commit after.
        self.wal.append(LogRecordType.COORD_COMMIT, txn.global_id, flush=True)
        for site in participants:
            self.gateways[site].commit(txn.global_id, txn.trace)
        self.wal.append(LogRecordType.COORD_END, txn.global_id)
        self._finish(txn, GlobalTxnState.COMMITTED)

    def abort(self, txn: GlobalTransaction) -> None:
        if txn.state in (GlobalTxnState.COMMITTED, GlobalTxnState.ABORTED):
            return
        self.wal.append(LogRecordType.COORD_ABORT, txn.global_id, flush=True)
        self._abort_branches(txn)
        self._finish(txn, GlobalTxnState.ABORTED)

    def _abort_branches(self, txn: GlobalTransaction) -> None:
        for site in txn.participants:
            try:
                self.gateways[site].abort(txn.global_id, txn.trace)
            except TransactionError:  # already gone; nothing to abort
                pass

    def execute_federated(
        self,
        txn: GlobalTransaction,
        federation,
        sql: str | ast.Statement,
        timeout: float | None = None,
    ) -> int:
        """DML posed against an *integrated relation* of a federation.

        The relation must be updatable (a plain projection of one export
        relation — see :mod:`repro.schema.updates`); the statement is
        rewritten into the export namespace and routed to the owning site's
        branch of this global transaction.
        """
        from repro.schema.updates import resolve_updatable, rewrite_dml
        from repro.sql import parse_statement

        statement = parse_statement(sql) if isinstance(sql, str) else sql
        if isinstance(statement, (ast.Select, ast.SetOperation)):
            raise TransactionError(
                "execute_federated handles DML; use run_global_query for reads"
            )
        table = getattr(statement, "table", None)
        if table is None:
            raise TransactionError("unsupported federated statement")
        relation = federation.get_relation(table)
        source = resolve_updatable(relation)
        rewritten = rewrite_dml(statement, relation.name, source)
        result = self.execute(txn, source.site, rewritten, timeout)
        self.gateways[source.site].invalidate_stats()
        return result

    # ------------------------------------------------------------------
    # Coordinator-driven recovery
    # ------------------------------------------------------------------

    def recover_in_doubt(self) -> list[tuple[object, str, str]]:
        """Resolve branches left PREPARED by lost decision messages.

        Re-reads the durable coordinator log: branches of transactions with
        a COMMIT decision are committed, everything else is aborted
        (presumed abort).  Returns (global_id, site, action) triples.
        """
        decisions = self.wal.coordinator_decisions()
        actions: list[tuple[object, str, str]] = []
        for site, gateway in self.gateways.items():
            for global_id in gateway.prepared_branches():
                decision = decisions.get(global_id, "abort")
                if decision == "commit":
                    gateway.commit(global_id)
                else:
                    gateway.abort(global_id)
                actions.append((global_id, site, decision))
        return actions

    def _finish(self, txn: GlobalTransaction, state: GlobalTxnState) -> None:
        txn.state = state
        with self._mutex:
            self.active.pop(txn.global_id, None)
        if state is GlobalTxnState.COMMITTED:
            self.commits += 1
        else:
            self.aborts += 1
