"""Global transaction management: 2PC over gateways, timeout deadlock policy.

Implements the paper's transaction subsystem:

- the *general transaction model*: a global transaction touches any number
  of component DBMSs through their gateways; each touched site becomes a
  branch (participant)
- **two-phase commit** over the participants, with presumed-abort logging at
  the coordinator, to achieve serializable execution on top of the locals'
  strict 2PL
- **timeout-based global deadlock resolution**: every local query carries a
  timeout; when a gateway reports :class:`~repro.errors.GatewayTimeout`, the
  whole global transaction is assumed deadlocked and aborted
"""

from __future__ import annotations

import enum
import itertools
import threading

from repro.concurrency.wal import LogRecordType, WriteAheadLog
from repro.engine import ResultSet
from repro.errors import (
    GatewayTimeout,
    MessageDropped,
    MyriadError,
    NetworkError,
    TransactionAborted,
    TransactionError,
    TwoPhaseCommitError,
)
from repro.gateway import Gateway
from repro.net import MessageTrace, RetryJitter
from repro.obs import DISABLED, Observability
from repro.sql import ast


class GlobalTxnState(enum.Enum):
    ACTIVE = "active"
    PREPARING = "preparing"
    COMMITTED = "committed"
    ABORTED = "aborted"


class GlobalTransaction:
    """One global transaction and its per-site branches."""

    def __init__(self, global_id: str, manager: "GlobalTransactionManager"):
        self.global_id = global_id
        self.manager = manager
        self.state = GlobalTxnState.ACTIVE
        self.participants: list[str] = []  # sites with open branches
        self.trace = MessageTrace()

    # -- convenience pass-throughs ------------------------------------------

    def execute(self, site: str, sql: str, timeout: float | None = None):
        return self.manager.execute(self, site, sql, timeout)

    def commit(self) -> None:
        self.manager.commit(self)

    def abort(self) -> None:
        self.manager.abort(self)

    def require_active(self) -> None:
        if self.state is not GlobalTxnState.ACTIVE:
            raise TransactionError(
                f"global transaction {self.global_id} is {self.state.value}"
            )

    def __enter__(self) -> "GlobalTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None and self.state is GlobalTxnState.ACTIVE:
            self.commit()
        elif self.state is GlobalTxnState.ACTIVE:
            self.abort()
        return False


class GlobalTransactionManager:
    """The federation's transaction coordinator."""

    def __init__(
        self,
        gateways: dict[str, Gateway],
        query_timeout: float | None = 5.0,
        wal: WriteAheadLog | None = None,
        decision_retry_limit: int = 3,
        decision_retry_backoff_s: float = 0.05,
        obs: Observability | None = None,
        retry_jitter: bool = False,
        jitter_seed: int = 0,
    ):
        self.gateways = gateways
        self.obs = obs or DISABLED
        #: The paper's timeout period attached to every local query.
        self.query_timeout = query_timeout
        self.wal = wal or WriteAheadLog()
        #: Phase-2 decision delivery: retries per participant beyond the
        #: first attempt, with exponential virtual backoff between attempts.
        self.decision_retry_limit = decision_retry_limit
        self.decision_retry_backoff_s = decision_retry_backoff_s
        #: Branch-open retries in :meth:`run_global_query` (transient
        #: message loss only), with the same exponential backoff shape.
        self.branch_retry_limit = 2
        self.branch_retry_backoff_s = 0.02
        #: Seeded deterministic jitter on branch-retry backoff (see
        #: :class:`repro.net.RetryJitter`); off by default — no RNG draws,
        #: bit-identical accounting.
        self.retry_jitter = RetryJitter(jitter_seed) if retry_jitter else None
        #: Chaos hook: called with a crash-point label at every enumerated
        #: 2PC/WAL protocol step (``before_coord_commit``,
        #: ``before_deliver:<site>``, ...).  The chaos explorer raises
        #: :class:`repro.chaos.CoordinatorCrash` from it to simulate a
        #: coordinator failure at exactly that point — which is why the
        #: exception must NOT derive from ``MyriadError`` (the delivery
        #: loop swallows those) and why every hook call sits outside the
        #: protocol's try/except blocks.
        self.crash_hook = None
        #: In-memory mirror of the WAL's durable pending-delivery list:
        #: global_id → {site: decision} for parked, undelivered decisions.
        self.pending_deliveries: dict[object, dict[str, str]] = {}
        self._counter = itertools.count(1)
        self._mutex = threading.Lock()
        self.active: dict[str, GlobalTransaction] = {}
        # Experiment counters
        self.commits = 0
        self.aborts = 0
        self.timeout_aborts = 0
        self.vote_no_aborts = 0
        self.decision_retries = 0
        self.decisions_parked = 0
        self.decisions_recovered = 0

    # ------------------------------------------------------------------
    # Chaos / environment plumbing
    # ------------------------------------------------------------------

    def _crashpoint(self, point: str, **context: object) -> None:
        """Announce one enumerated protocol step to the chaos hook."""
        if self.crash_hook is not None:
            self.crash_hook(point, **context)

    def _network(self):
        for gateway in self.gateways.values():
            return gateway.network
        return None

    def _health(self):
        """The shared network's health tracker, if one is attached."""
        network = self._network()
        return getattr(network, "health", None)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin(self, global_id: str | None = None) -> GlobalTransaction:
        with self._mutex:
            if global_id is None:
                global_id = f"G{next(self._counter)}"
            if global_id in self.active:
                raise TransactionError(
                    f"global transaction {global_id} already active"
                )
            txn = GlobalTransaction(global_id, self)
            self.active[global_id] = txn
        self.obs.metrics.inc("txn.begun")
        self.obs.emit("2pc", txn=global_id, role="coordinator", state="BEGIN")
        return txn

    def _branch(self, txn: GlobalTransaction, site: str) -> Gateway:
        try:
            gateway = self.gateways[site]
        except KeyError:
            raise TransactionError(f"unknown site {site!r}") from None
        if site not in txn.participants:
            with self.obs.span("txn.begin", txn=txn.global_id, site=site):
                gateway.begin(txn.global_id, txn.trace)
            txn.participants.append(site)
        return gateway

    # ------------------------------------------------------------------
    # Statement execution within a global transaction
    # ------------------------------------------------------------------

    def execute(
        self,
        txn: GlobalTransaction,
        site: str,
        sql: str | ast.Statement,
        timeout: float | None = None,
    ) -> ResultSet | int:
        """Run one statement on one site's branch.

        On :class:`GatewayTimeout` the entire global transaction is aborted
        (the paper's global-deadlock assumption) and
        :class:`TransactionAborted` is raised.
        """
        txn.require_active()
        effective = timeout if timeout is not None else self.query_timeout
        parsed = sql
        if isinstance(parsed, str):
            from repro.sql import parse_statement

            parsed = parse_statement(parsed)
        try:
            gateway = self._branch(txn, site)
            if isinstance(parsed, (ast.Select, ast.SetOperation)):
                return gateway.execute_query(
                    parsed,
                    trace=txn.trace,
                    timeout=effective,
                    global_id=txn.global_id,
                )
            return gateway.execute_update(
                parsed, txn.global_id, trace=txn.trace, timeout=effective
            )
        except GatewayTimeout:
            self.timeout_aborts += 1
            self.obs.metrics.inc("txn.timeout_aborts")
            self.abort(txn)
            raise TransactionAborted(
                f"global transaction {txn.global_id} aborted: local query "
                f"at {site!r} exceeded its timeout (assumed global deadlock)",
                reason="timeout",
            ) from None
        except TransactionAborted:
            # The local DBMS aborted the branch (e.g. local deadlock victim).
            self.abort(txn)
            raise
        except NetworkError as error:
            # The site became unreachable mid-statement (injected fault or
            # partition): abort the global transaction; unreachable branches
            # are parked for recovery by the abort path.
            self.abort(txn)
            raise TransactionAborted(
                f"global transaction {txn.global_id} aborted: site {site!r} "
                f"unreachable ({error})",
                reason="network",
            ) from error

    def _branch_with_retry(self, txn: GlobalTransaction, site: str) -> Gateway:
        """Open a branch, retrying transient message loss with backoff.

        Only :class:`~repro.errors.MessageDropped` is retried — a refused
        circuit (:class:`~repro.errors.CircuitOpenError`) or an unknown
        site fails immediately.  Backoff is charged to the transaction's
        trace *and* the simulated clock, so breaker cooldowns see it.
        """
        network = self._network()
        last_error: MessageDropped | None = None
        for attempt in range(self.branch_retry_limit + 1):
            if attempt:
                self.obs.metrics.inc("txn.branch_retries")
                backoff = self.branch_retry_backoff_s * 2 ** (attempt - 1)
                if self.retry_jitter is not None:
                    backoff = self.retry_jitter.scale(backoff)
                txn.trace.add_compute(backoff)
                if network is not None:
                    network.advance(backoff)
            try:
                return self._branch(txn, site)
            except MessageDropped as error:
                last_error = error
        raise last_error

    def run_global_query(
        self,
        txn: GlobalTransaction,
        processor,
        sql: str,
        optimizer: str | None = None,
        timeout: float | None = None,
        allow_partial: bool = False,
        request_id: str | None = None,
    ):
        """Run a federation-level SELECT inside this global transaction.

        Branches are opened at every site the plan touches, so the reads
        acquire locks under the global transaction and stay serializable.
        Transient message loss while opening a branch is retried with
        exponential simulated backoff.  With ``allow_partial=True``,
        sites whose circuit breaker is open or that stay unreachable are
        *skipped* instead: the query degrades, and the returned
        ``GlobalResult`` carries ``degraded=True`` plus the
        ``missing_sites`` (see :meth:`GlobalExecutor.execute`).
        """
        txn.require_active()
        obs = processor.obs
        # This path bypasses processor.execute, so it mints (or inherits)
        # the request id itself and feeds the request window directly.
        if request_id is None:
            request_id = obs.mint_request_id()
        plan = processor.plan(sql, optimizer)
        effective = timeout if timeout is not None else self.query_timeout
        health = self._health()
        skip_sites: set[str] = set()
        sim_before = txn.trace.elapsed_s
        try:
            for fetch in plan.fetches:
                site = fetch.site
                if site in skip_sites or site in txn.participants:
                    continue
                # is_blocked (pure), not allow(): consuming the half-open
                # probe slot here would starve the gateway-side circuit
                # check that actually sends the probe.
                if (
                    allow_partial
                    and health is not None
                    and health.is_blocked(site)
                ):
                    skip_sites.add(site)
                    continue
                try:
                    self._branch_with_retry(txn, site)
                except NetworkError:
                    if not allow_partial:
                        raise
                    skip_sites.add(site)
            result = processor.executor.execute(
                plan,
                trace=txn.trace,
                timeout=effective,
                global_id=txn.global_id,
                allow_partial=allow_partial,
                skip_sites=skip_sites,
                request_id=request_id,
            )
            obs.record_request(
                not result.degraded,
                txn.trace.elapsed_s - sim_before,
                federation=processor.federation.name,
            )
            return result
        except GatewayTimeout:
            self.timeout_aborts += 1
            self.obs.metrics.inc("txn.timeout_aborts")
            obs.record_request(
                False,
                txn.trace.elapsed_s - sim_before,
                federation=processor.federation.name,
            )
            self.abort(txn)
            raise TransactionAborted(
                f"global transaction {txn.global_id} aborted: a fetch "
                "exceeded its timeout (assumed global deadlock)",
                reason="timeout",
            ) from None
        except TransactionAborted:
            # A local branch died under us (local deadlock victim): the
            # global transaction cannot proceed with a dead branch — abort
            # it, as execute() does, instead of leaving it ACTIVE.
            obs.record_request(
                False,
                txn.trace.elapsed_s - sim_before,
                federation=processor.federation.name,
            )
            self.abort(txn)
            raise
        except NetworkError as error:
            obs.record_request(
                False,
                txn.trace.elapsed_s - sim_before,
                federation=processor.federation.name,
            )
            self.abort(txn)
            raise TransactionAborted(
                f"global transaction {txn.global_id} aborted: a fetch site "
                f"became unreachable ({error})",
                reason="network",
            ) from error

    # ------------------------------------------------------------------
    # Two-phase commit
    # ------------------------------------------------------------------

    def commit(self, txn: GlobalTransaction) -> None:
        """Commit via 2PC (one-phase optimisation for ≤1 participant)."""
        txn.require_active()
        participants = list(txn.participants)
        sim_before = txn.trace.elapsed_s

        with self.obs.span(
            "txn.commit", txn=txn.global_id, participants=len(participants)
        ) as span:
            if len(participants) <= 1:
                # One-phase: the vote round is skipped, but the decision
                # must still hit the durable log *before* delivery — the
                # app is about to observe COMMITTED, and a coordinator
                # crash (or silently lost commit message) must not leave
                # the lone branch to presume abort afterwards.  Delivery
                # is retried/parked as in full 2PC so a lost commit
                # message cannot leave the branch holding its locks.
                if participants:
                    self._crashpoint(
                        "before_coord_commit", txn=txn.global_id, protocol="1pc"
                    )
                    self.wal.append(
                        LogRecordType.COORD_COMMIT, txn.global_id, flush=True
                    )
                    self._crashpoint(
                        "after_coord_commit", txn=txn.global_id, protocol="1pc"
                    )
                undelivered = self._deliver_decision(
                    txn.global_id, participants, "commit", txn.trace
                )
                if participants and not undelivered:
                    self._crashpoint(
                        "before_coord_end", txn=txn.global_id, protocol="1pc"
                    )
                    self.wal.append(LogRecordType.COORD_END, txn.global_id)
                self._finish(txn, GlobalTxnState.COMMITTED)
                span.tag(protocol="1pc").set_sim(
                    txn.trace.elapsed_s - sim_before
                )
                self.obs.emit(
                    "2pc",
                    sim_s=txn.trace.elapsed_s,
                    txn=txn.global_id,
                    role="coordinator",
                    state="COMMITTED",
                    protocol="1pc",
                )
                return

            txn.state = GlobalTxnState.PREPARING
            self._crashpoint("before_coord_begin_2pc", txn=txn.global_id)
            self.wal.append(
                LogRecordType.COORD_BEGIN_2PC,
                txn.global_id,
                tuple(participants),
                flush=True,
            )
            self._crashpoint("after_coord_begin_2pc", txn=txn.global_id)
            self.obs.emit(
                "2pc",
                sim_s=txn.trace.elapsed_s,
                txn=txn.global_id,
                role="coordinator",
                state="PREPARING",
                participants=participants,
            )

            votes_ok = True
            failed_site = None
            with self.obs.span("txn.prepare", txn=txn.global_id) as prepare:
                for site in participants:
                    self._crashpoint(f"before_prepare:{site}", txn=txn.global_id)
                    try:
                        vote = self.gateways[site].prepare(
                            txn.global_id, txn.trace
                        )
                    except (GatewayTimeout, TransactionError, NetworkError):
                        # A lost PREPARE or VOTE message counts as a NO vote
                        # (presumed abort makes this safe: no decision is
                        # logged).
                        vote = False
                    self._crashpoint(
                        f"after_vote:{site}", txn=txn.global_id, vote=vote
                    )
                    if not vote:
                        votes_ok = False
                        failed_site = site
                        break
                prepare.tag(votes_ok=votes_ok)

            if not votes_ok:
                with self.obs.span(
                    "txn.decide", txn=txn.global_id, decision="abort"
                ):
                    self._crashpoint("before_coord_abort", txn=txn.global_id)
                    self.wal.append(
                        LogRecordType.COORD_ABORT, txn.global_id, flush=True
                    )
                    self._crashpoint("after_coord_abort", txn=txn.global_id)
                self._abort_branches(txn)
                self._finish(txn, GlobalTxnState.ABORTED)
                self.vote_no_aborts += 1
                self.obs.metrics.inc("txn.vote_no_aborts")
                span.set_sim(txn.trace.elapsed_s - sim_before)
                self.obs.emit(
                    "2pc",
                    sim_s=txn.trace.elapsed_s,
                    txn=txn.global_id,
                    role="coordinator",
                    state="ABORTED",
                    reason="vote-no",
                    failed_site=failed_site,
                )
                raise TwoPhaseCommitError(
                    f"global transaction {txn.global_id} aborted: "
                    f"participant {failed_site!r} voted NO"
                )

            # Decision is now durable: presumed abort before this point,
            # guaranteed commit after.
            with self.obs.span(
                "txn.decide", txn=txn.global_id, decision="commit"
            ):
                self._crashpoint("before_coord_commit", txn=txn.global_id)
                self.wal.append(
                    LogRecordType.COORD_COMMIT, txn.global_id, flush=True
                )
                self._crashpoint("after_coord_commit", txn=txn.global_id)
            undelivered = self._deliver_decision(
                txn.global_id, participants, "commit", txn.trace
            )
            if not undelivered:
                self._crashpoint("before_coord_end", txn=txn.global_id)
                self.wal.append(LogRecordType.COORD_END, txn.global_id)
            self._finish(txn, GlobalTxnState.COMMITTED)
            span.set_sim(txn.trace.elapsed_s - sim_before)
            self.obs.emit(
                "2pc",
                sim_s=txn.trace.elapsed_s,
                txn=txn.global_id,
                role="coordinator",
                state="COMMITTED",
                undelivered=undelivered,
            )

    def abort(self, txn: GlobalTransaction) -> None:
        if txn.state in (GlobalTxnState.COMMITTED, GlobalTxnState.ABORTED):
            return
        with self.obs.span("txn.abort", txn=txn.global_id):
            self._crashpoint("before_coord_abort", txn=txn.global_id)
            self.wal.append(
                LogRecordType.COORD_ABORT, txn.global_id, flush=True
            )
            self._crashpoint("after_coord_abort", txn=txn.global_id)
            self._abort_branches(txn)
            self._finish(txn, GlobalTxnState.ABORTED)
        self.obs.emit(
            "2pc",
            sim_s=txn.trace.elapsed_s,
            txn=txn.global_id,
            role="coordinator",
            state="ABORTED",
        )

    def _abort_branches(self, txn: GlobalTransaction) -> None:
        self._deliver_decision(txn.global_id, txn.participants, "abort", txn.trace)

    # ------------------------------------------------------------------
    # Decision delivery (phase 2) with retry + durable parking
    # ------------------------------------------------------------------

    def _deliver_decision(
        self,
        global_id: object,
        sites: list[str],
        decision: str,
        trace: MessageTrace | None = None,
    ) -> list[str]:
        """Push one COMMIT/ABORT decision to every listed participant.

        Per participant: retry dropped messages up to
        ``decision_retry_limit`` times with exponential virtual backoff
        (charged to the trace); a participant that stays unreachable is
        *parked* on the durable pending-delivery list, which
        :meth:`recover_in_doubt` drains later.  A failure at one site never
        skips the remaining sites.  Returns the parked sites.
        """
        undelivered: list[str] = []
        health = self._health()
        network = self._network()
        for site in sites:
            gateway = self.gateways[site]
            delivered = False
            self._crashpoint(
                f"before_deliver:{site}", txn=global_id, decision=decision
            )
            with self.obs.span(
                "txn.deliver", txn=global_id, site=site, decision=decision
            ) as span:
                attempts = 0
                for attempt in range(self.decision_retry_limit + 1):
                    if attempt and health is not None and not health.allow(site):
                        # The site's breaker tripped: stop burning retries
                        # on a dead site — park the decision for recovery
                        # (which probes without consulting the breaker).
                        break
                    attempts = attempt + 1
                    if attempt:
                        self.decision_retries += 1
                        self.obs.metrics.inc("txn.decision_retries")
                        backoff = self.decision_retry_backoff_s * 2 ** (
                            attempt - 1
                        )
                        if trace is not None:
                            trace.add_compute(backoff)
                        if network is not None:
                            network.advance(backoff)
                    try:
                        if decision == "commit":
                            gateway.commit(global_id, trace)
                        else:
                            gateway.abort(global_id, trace)
                        delivered = True
                        break
                    except NetworkError:
                        continue  # transient loss: back off and retry
                    except TransactionError:
                        delivered = True  # branch already resolved
                        break
                    except MyriadError:
                        break  # non-transient local failure: park it
                span.tag(attempts=attempts, delivered=delivered)
            if delivered:
                self._crashpoint(
                    f"after_deliver:{site}", txn=global_id, decision=decision
                )
            else:
                self._crashpoint(
                    f"before_park:{site}", txn=global_id, decision=decision
                )
                undelivered.append(site)
                self._park_decision(global_id, site, decision)
        return undelivered

    def _park_decision(self, global_id: object, site: str, decision: str) -> None:
        self.wal.append(
            LogRecordType.COORD_PENDING,
            global_id,
            (site, decision),
            flush=True,
        )
        self.pending_deliveries.setdefault(global_id, {})[site] = decision
        self.decisions_parked += 1
        self.obs.metrics.inc("txn.decisions_parked")
        self.obs.emit("wal.park", txn=global_id, site=site, decision=decision)
        self.obs.emit(
            "2pc",
            txn=global_id,
            site=site,
            role="participant",
            state="IN-DOUBT",
            decision=decision,
        )

    def execute_federated(
        self,
        txn: GlobalTransaction,
        federation,
        sql: str | ast.Statement,
        timeout: float | None = None,
    ) -> int:
        """DML posed against an *integrated relation* of a federation.

        The relation must be updatable (a plain projection of one export
        relation — see :mod:`repro.schema.updates`); the statement is
        rewritten into the export namespace and routed to the owning site's
        branch of this global transaction.
        """
        from repro.schema.updates import resolve_updatable, rewrite_dml
        from repro.sql import parse_statement

        statement = parse_statement(sql) if isinstance(sql, str) else sql
        if isinstance(statement, (ast.Select, ast.SetOperation)):
            raise TransactionError(
                "execute_federated handles DML; use run_global_query for reads"
            )
        table = getattr(statement, "table", None)
        if table is None:
            raise TransactionError("unsupported federated statement")
        relation = federation.get_relation(table)
        source = resolve_updatable(relation)
        rewritten = rewrite_dml(statement, relation.name, source)
        result = self.execute(txn, source.site, rewritten, timeout)
        self.gateways[source.site].invalidate_stats()
        return result

    # ------------------------------------------------------------------
    # Coordinator-driven recovery
    # ------------------------------------------------------------------

    def recover_in_doubt(self) -> list[tuple[object, str, str]]:
        """Resolve branches left PREPARED (or parked) by lost decisions.

        Three passes:

        1. drain the durable pending-delivery list — decisions phase 2
           could not push to a participant despite retries; still-unreachable
           participants simply stay parked for the next round
        2. the presumed-abort scan: any remaining PREPARED branch is
           committed iff the durable coordinator log holds a COMMIT decision
           for it, otherwise aborted
        3. the orphaned-branch scan: a branch still ACTIVE whose global
           transaction no longer exists at the coordinator (crash after a
           1PC decision, or a silently swallowed decision message) is
           resolved from the durable decision log, presuming abort

        Delivery here deliberately bypasses the circuit breaker: recovery
        attempts *are* the half-open probes that re-close it.

        Returns (global_id, site, action) triples for everything resolved.
        """
        decisions = self.wal.coordinator_decisions()
        actions: list[tuple[object, str, str]] = []
        pending = self.wal.pending_deliveries()
        for (global_id, site), decision in sorted(
            pending.items(), key=lambda item: (str(item[0][0]), item[0][1])
        ):
            gateway = self.gateways.get(site)
            if gateway is None:
                continue
            try:
                if decision == "commit":
                    gateway.commit(global_id)
                else:
                    gateway.abort(global_id)
            except NetworkError:
                continue  # still unreachable; stays parked
            self.wal.append(
                LogRecordType.COORD_DELIVERED, global_id, (site,), flush=True
            )
            parked = self.pending_deliveries.get(global_id)
            if parked is not None:
                parked.pop(site, None)
                if not parked:
                    del self.pending_deliveries[global_id]
                    if decisions.get(global_id) == "commit":
                        self.wal.append(LogRecordType.COORD_END, global_id)
            self.decisions_recovered += 1
            self.obs.metrics.inc("txn.decisions_recovered")
            self.obs.emit(
                "wal.drain", txn=global_id, site=site, decision=decision
            )
            self.obs.emit(
                "2pc",
                txn=global_id,
                site=site,
                role="participant",
                state="RECOVERED",
                action=decision,
            )
            actions.append((global_id, site, decision))
        for site, gateway in self.gateways.items():
            for global_id in gateway.prepared_branches():
                decision = decisions.get(global_id, "abort")
                try:
                    if decision == "commit":
                        gateway.commit(global_id)
                    else:
                        gateway.abort(global_id)
                except NetworkError:
                    continue  # unreachable; a later round resolves it
                self.obs.emit(
                    "2pc",
                    txn=global_id,
                    site=site,
                    role="participant",
                    state="RECOVERED",
                    action=decision,
                    source="presumed-abort-scan",
                )
                actions.append((global_id, site, decision))
        with self._mutex:
            live = set(self.active)
        for site, gateway in self.gateways.items():
            for global_id, state in list(gateway.branch_states().items()):
                if state != "active" or global_id in live:
                    continue
                decision = decisions.get(global_id, "abort")
                try:
                    if decision == "commit":
                        gateway.commit(global_id)
                    else:
                        gateway.abort(global_id)
                except NetworkError:
                    continue  # unreachable; a later round resolves it
                self.obs.emit(
                    "2pc",
                    txn=global_id,
                    site=site,
                    role="participant",
                    state="RECOVERED",
                    action=decision,
                    source="orphan-scan",
                )
                actions.append((global_id, site, decision))
        return actions

    def _finish(self, txn: GlobalTransaction, state: GlobalTxnState) -> None:
        txn.state = state
        with self._mutex:
            self.active.pop(txn.global_id, None)
        if state is GlobalTxnState.COMMITTED:
            self.commits += 1
        else:
            self.aborts += 1
        self.obs.metrics.inc("txn.outcomes", outcome=state.value)
