"""Global deadlock handling.

MYRIAD's production mechanism is the *timeout*: it needs no inter-site
communication, at the price of false aborts (slow-but-not-deadlocked
transactions die) and detection latency (a real deadlock sits until the
timeout fires).  This module also implements the *oracle*: a global
wait-for-graph detector that unions every component's local wait-for edges —
the baseline the benchmarks compare the timeout policy against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gateway import Gateway


@dataclass(frozen=True)
class TimeoutPolicy:
    """The paper's policy: a timeout period per local query."""

    timeout_s: float

    def describe(self) -> str:
        return (
            f"timeout({self.timeout_s}s): abort the global transaction when "
            "any local query exceeds the period"
        )


class WaitForGraphDetector:
    """Oracle global deadlock detector over all component wait-for graphs.

    A real FDBS could not do this without violating local autonomy (it
    requires every component DBMS to expose its lock queues), which is
    exactly why MYRIAD used timeouts.  We use it as the *ground truth* in
    experiments: any cycle it reports is a genuine global deadlock, so
    timeout aborts that do not correspond to a cycle are *false aborts*.
    """

    def __init__(self, gateways: dict[str, Gateway]):
        self.gateways = gateways

    def global_edges(self) -> list[tuple[object, object]]:
        """Union of the per-site wait-for graphs (global txn ids)."""
        edges: list[tuple[object, object]] = []
        for gateway in self.gateways.values():
            edges.extend(gateway.wait_for_edges())
        return edges

    def find_cycles(self) -> list[list[object]]:
        """All simple cycles in the current global wait-for graph.

        Deduplicated by *canonical rotation* (the cycle rotated to start at
        its smallest node), not by node set: two distinct cycles over the
        same transactions — e.g. ``A→B→C→A`` and ``A→C→B→A`` — are both
        reported.
        """
        graph: dict[object, set[object]] = {}
        for source, target in self.global_edges():
            graph.setdefault(source, set()).add(target)

        cycles: list[list[object]] = []
        seen_cycles: set[tuple] = set()

        def dfs(start: object, node: object, path: list[object]) -> None:
            for neighbour in graph.get(node, ()):
                if neighbour == start:
                    key = _canonical_rotation(path)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        cycles.append(list(path))
                elif neighbour not in path:
                    dfs(start, neighbour, path + [neighbour])

        for node in list(graph):
            dfs(node, node, [node])
        return cycles

    def deadlocked_transactions(self) -> set[object]:
        return {txn for cycle in self.find_cycles() for txn in cycle}

    def victims_for(self, cycles: list[list[object]]) -> list[object]:
        """One victim per cycle (deterministic: max by string id = youngest
        for our ``G<n>``-style identifiers of equal length, else lexicographic)."""
        victims: list[object] = []
        for cycle in cycles:
            victim = max(cycle, key=_victim_order)
            if victim not in victims:
                victims.append(victim)
        return victims

    def choose_victims(self) -> list[object]:
        return self.victims_for(self.find_cycles())


def _canonical_rotation(path: list[object]) -> tuple:
    """Rotate a cycle so its smallest node comes first.

    Cycles found from different DFS start nodes are rotations of each other;
    this key identifies them without collapsing genuinely different cycles
    that happen to share a node set.
    """
    pivot = min(range(len(path)), key=lambda index: _victim_order(path[index]))
    return tuple(path[pivot:] + path[:pivot])


def _victim_order(txn_id: object) -> tuple[int, str]:
    text = str(txn_id)
    return (len(text), text)


class GlobalDeadlockMonitor:
    """Active global deadlock detection — the policy MYRIAD *didn't* ship.

    Periodically unions the component wait-for graphs, picks one victim per
    cycle, and cancels that victim's blocked lock wait (which surfaces as a
    :class:`~repro.errors.DeadlockError` and aborts the global transaction).
    Requires components to expose their lock queues, i.e. it trades local
    autonomy for precision; the benchmarks use it as the comparison point
    for the paper's timeout policy.
    """

    def __init__(
        self,
        gateways: dict[str, "Gateway"],
        interval_s: float = 0.05,
        obs=None,
    ):
        self.detector = WaitForGraphDetector(gateways)
        self.gateways = gateways
        self.interval_s = interval_s
        self._obs = obs
        self.victims_killed = 0
        self.cycles_seen = 0
        self._stop = None  # threading.Event, created on start
        self._thread = None

    @property
    def obs(self):
        """Observability handle: explicit, else any gateway's network, else off.

        Resolved lazily because callers often build the monitor with a
        gateways dict that is populated after construction.
        """
        if self._obs is not None:
            return self._obs
        from repro.obs import DISABLED, obs_of

        for gateway in self.gateways.values():
            return obs_of(gateway.network)
        return DISABLED

    def check_once(self) -> list[object]:
        """One detection round; returns the victims killed.

        ``cycles_seen`` counts every cycle found in the round (not merely
        rounds-with-cycles), so it is comparable across detection intervals.
        """
        obs = self.obs
        obs.metrics.inc("deadlock.sweeps")
        cycles = self.detector.find_cycles()
        self.cycles_seen += len(cycles)
        if not cycles:
            return []
        # Only cycle-bearing sweeps get a span: the monitor thread sweeps
        # every ``interval_s`` and empty sweeps would flood the root buffer.
        with obs.span("deadlock.sweep") as span:
            obs.metrics.inc("deadlock.cycles", len(cycles))
            victims = self.detector.victims_for(cycles)
            killed = []
            for victim in victims:
                for gateway in self.gateways.values():
                    if gateway.has_branch(victim):
                        gateway.cancel_branch_waits(victim)
                self.victims_killed += 1
                obs.metrics.inc("deadlock.victims")
                killed.append(victim)
            span.tag(cycles=len(cycles), victims=len(killed))
            obs.emit(
                "deadlock.sweep",
                cycles=[[str(txn) for txn in cycle] for cycle in cycles],
                victims=[str(victim) for victim in killed],
            )
        return killed

    def start(self) -> None:
        import threading

        if self._thread is not None:
            return
        self._stop = threading.Event()

        def loop() -> None:
            while not self._stop.is_set():
                self.check_once()
                self._stop.wait(self.interval_s)

        self._thread = threading.Thread(target=loop, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2)
        self._thread = None
