"""Global transaction management: 2PC, timeouts, deadlock handling, recovery."""

from repro.txn.coordinator import (
    GlobalTransaction,
    GlobalTransactionManager,
    GlobalTxnState,
)
from repro.txn.deadlock import (
    GlobalDeadlockMonitor,
    TimeoutPolicy,
    WaitForGraphDetector,
)
from repro.txn.recovery import RecoveryReport, recover_participant

__all__ = [
    "GlobalTransaction",
    "GlobalTransactionManager",
    "GlobalTxnState",
    "GlobalDeadlockMonitor",
    "TimeoutPolicy",
    "WaitForGraphDetector",
    "RecoveryReport",
    "recover_participant",
]
