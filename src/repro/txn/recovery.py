"""2PC recovery: resolving in-doubt branches after a coordinator crash.

Presumed abort: a participant that PREPAREd but finds no durable
``COORD_COMMIT`` record for its global transaction must abort it; a durable
``COORD_COMMIT`` means commit.  The benchmarks/tests drive this by flushing
logs at specific protocol points and "crashing" in between.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.concurrency.wal import WriteAheadLog
from repro.localdb.dbms import LocalDBMS


@dataclass
class RecoveryReport:
    """What recovery did for one component DBMS."""

    site: str
    committed: list[object] = field(default_factory=list)
    aborted: list[object] = field(default_factory=list)
    #: Global ids of branches the process had *forgotten* (simulated
    #: restart) that were reinstated from their durable prepared form.
    forgotten: list[object] = field(default_factory=list)


def recover_participant(
    dbms: LocalDBMS, coordinator_wal: WriteAheadLog
) -> RecoveryReport:
    """Resolve a participant's in-doubt (prepared) transactions.

    Consults the coordinator's durable decisions; absent a COMMIT decision,
    presumed abort applies.  Two sources of in-doubt branches:

    - live prepared transactions still in ``active_transactions()``
    - branches *forgotten* by a simulated process restart
      (:meth:`~repro.concurrency.transactions.LocalTransactionManager.
      simulate_process_restart`) — these are reinstated from their durable
      prepared form first, then resolved the same way, so a restart can
      never strand a prepared branch (or its locks) forever
    """
    report = RecoveryReport(site=dbms.name)
    decisions = coordinator_wal.coordinator_decisions()

    manager = dbms.transactions
    in_doubt_local = manager.wal.in_doubt_transactions()

    def resolve(txn) -> None:
        decision = decisions.get(txn.global_id, "abort")
        if decision == "commit":
            manager.commit_prepared(txn)
            report.committed.append(txn.global_id)
        else:
            manager.abort_prepared(txn)
            report.aborted.append(txn.global_id)

    for txn in list(manager.active_transactions()):
        if txn.txn_id not in in_doubt_local:
            continue
        resolve(txn)
    for txn_id in manager.forgotten_prepared():
        if txn_id not in in_doubt_local:
            continue
        txn = manager.reinstate_prepared(txn_id)
        report.forgotten.append(txn.global_id)
        resolve(txn)
    return report
