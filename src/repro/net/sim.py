"""Simulated network substrate.

The real MYRIAD ran on SPARCstations connected by 10 Mbit/s Ethernet and
exchanged messages over BSD sockets.  This module substitutes a deterministic
model that preserves what the experiments measure:

- every message is *accounted*: count, payload bytes, purpose
- each message has a *virtual cost* = latency + bytes/bandwidth
- a :class:`MessageTrace` accumulates virtual elapsed time for one global
  operation, with ``parallel()`` sections taking the max over branches (the
  federation layer ships independent subqueries concurrently)

No wall-clock sleeping happens; benchmarks read virtual seconds.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.errors import MessageDropped, NetworkError

#: 10BASE-T Ethernet of the era: 10 Mbit/s ≈ 1.25 MB/s on the wire.
DEFAULT_BANDWIDTH_BYTES_PER_S = 1.25e6
#: Small-LAN round-trip budget per message.
DEFAULT_LATENCY_S = 0.002


@dataclass(frozen=True)
class LinkProfile:
    """Latency/bandwidth of one (directed) link."""

    latency_s: float = DEFAULT_LATENCY_S
    bandwidth_bytes_per_s: float = DEFAULT_BANDWIDTH_BYTES_PER_S

    def cost(self, payload_bytes: int) -> float:
        return self.latency_s + payload_bytes / self.bandwidth_bytes_per_s


@dataclass
class MessageRecord:
    """One accounted message."""

    source: str
    destination: str
    payload_bytes: int
    purpose: str
    cost_s: float
    #: Request the message belongs to (``req-...``), when the sender was
    #: executing on behalf of one — joins wire traffic to spans/events.
    request_id: str | None = None
    #: Uncompressed payload size, set only when wire compression shrank
    #: this message — EXPLAIN ANALYZE renders raw vs wire per fetch.
    raw_bytes: int | None = None


class MessageTrace:
    """Accounting for one global operation (query or transaction).

    Supports nested parallel sections: within ``parallel()``, per-branch
    elapsed times are tracked separately and the section contributes the
    maximum branch time to the enclosing sequence — modelling concurrent
    subquery shipping.

    Cost-attribution contract (see ``TestMessageTrace`` for the executable
    spec): costs recorded *inside an open branch* accrue to that branch;
    costs recorded inside a parallel section but *outside any branch*
    (coordinator-side work between fetches) accrue sequentially to
    ``elapsed_s``.  Entering a branch with no open parallel section, or
    closing a section that was never opened, is misuse and raises
    :class:`~repro.errors.NetworkError` immediately rather than silently
    corrupting later measurements.

    Thread safety: branches are *per thread* — the executor runs one
    branch per worker thread inside a main-thread parallel section, so
    the open-branch stack lives in thread-local storage while the shared
    accounting (records, per-branch sums, elapsed time) is guarded by one
    lock.  Per-branch sums are order-independent (each branch is fed by
    exactly one thread, and the section contributes the *max* over
    branches), so concurrent execution produces bit-identical elapsed
    time to sequential execution.
    """

    def __init__(self):
        self.records: list[MessageRecord] = []
        self.elapsed_s = 0.0
        self._lock = threading.RLock()
        self._parallel_stack: list[dict[str, float]] = []
        self._tlocal = threading.local()
        self._open_branches = 0
        self._total_bytes = 0

    def _thread_branches(self) -> list["_BranchContext"]:
        stack = getattr(self._tlocal, "stack", None)
        if stack is None:
            stack = []
            self._tlocal.stack = stack
        return stack

    # -- recording ---------------------------------------------------------

    def add(self, record: MessageRecord) -> None:
        with self._lock:
            self.records.append(record)
            self._total_bytes += record.payload_bytes
            branches = self._thread_branches()
            if branches:
                branches[-1].records.append(record)
            self._route_cost(record.cost_s)

    def add_compute(self, seconds: float) -> None:
        """Account local (site) processing time into the same timeline."""
        with self._lock:
            self._route_cost(seconds)

    def _route_cost(self, seconds: float) -> None:
        """Accrue a cost to this thread's open branch, else sequentially."""
        stack = self._thread_branches()
        if self._parallel_stack and stack:
            branches = self._parallel_stack[-1]
            branch = stack[-1].name
            branches[branch] = branches.get(branch, 0.0) + seconds
        else:
            self.elapsed_s += seconds

    # -- parallel sections ---------------------------------------------------

    def begin_parallel(self) -> None:
        with self._lock:
            self._parallel_stack.append({})

    def branch(self, name: str) -> "_BranchContext":
        with self._lock:
            if not self._parallel_stack:
                raise NetworkError(
                    f"branch({name!r}) requires an open parallel section; "
                    "call begin_parallel() first"
                )
        return _BranchContext(self, name)

    def end_parallel(self) -> None:
        with self._lock:
            if not self._parallel_stack:
                raise NetworkError(
                    "end_parallel() without a matching begin_parallel()"
                )
            branches = self._parallel_stack.pop()
            longest = max(branches.values(), default=0.0)
            stack = self._thread_branches()
            if self._parallel_stack and stack:
                outer = self._parallel_stack[-1]
                branch = stack[-1].name
                outer[branch] = outer.get(branch, 0.0) + longest
            else:
                self.elapsed_s += longest

    @property
    def balanced(self) -> bool:
        """True when no parallel section or branch is left open."""
        with self._lock:
            return not self._parallel_stack and self._open_branches == 0

    def branch_elapsed(self, name: str) -> float:
        """Accumulated cost of one branch of the innermost open section."""
        with self._lock:
            if not self._parallel_stack:
                raise NetworkError(
                    "branch_elapsed() outside a parallel section"
                )
            return self._parallel_stack[-1].get(name, 0.0)

    # -- summary -----------------------------------------------------------

    @property
    def message_count(self) -> int:
        return len(self.records)

    @property
    def total_bytes(self) -> int:
        # Running counter maintained by add(); re-summing the record list
        # on every access made per-fetch accounting O(messages) each time.
        return self._total_bytes

    def bytes_by_purpose(self) -> dict[str, int]:
        summary: dict[str, int] = {}
        with self._lock:
            records = list(self.records)
        for record in records:
            summary[record.purpose] = (
                summary.get(record.purpose, 0) + record.payload_bytes
            )
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MessageTrace(messages={self.message_count}, "
            f"bytes={self.total_bytes}, elapsed={self.elapsed_s * 1000:.2f}ms)"
        )


class RetryJitter:
    """Seeded deterministic jitter for retry backoff.

    Scales each backoff wait by a uniform factor in ``[0.5, 1.5)`` drawn
    from a seeded RNG, so concurrent retries (and the retry storm after a
    failover) desynchronise instead of hammering a recovering site in
    lockstep.  The retry loops hold no reference at all when the knob is
    off — zero RNG draws, bit-identical accounting.
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        # Concurrent fetch retries draw from worker threads.
        self._lock = threading.Lock()

    def scale(self, backoff_s: float) -> float:
        with self._lock:
            return backoff_s * (0.5 + self._rng.random())


class _BranchContext:
    """One open branch: also captures the messages recorded inside it.

    The per-branch ``records`` list is what per-fetch accounting reads —
    slicing the shared ``trace.records`` list by index is meaningless once
    branches run on concurrent threads.
    """

    def __init__(self, trace: MessageTrace, name: str):
        self.trace = trace
        self.name = name
        self.records: list[MessageRecord] = []

    @property
    def payload_bytes(self) -> int:
        return sum(record.payload_bytes for record in self.records)

    @property
    def raw_payload_bytes(self) -> int:
        """Pre-compression bytes: what this branch *would* have shipped."""
        return sum(
            record.raw_bytes
            if record.raw_bytes is not None
            else record.payload_bytes
            for record in self.records
        )

    def __enter__(self):
        with self.trace._lock:
            self.trace._thread_branches().append(self)
            self.trace._open_branches += 1
        return self

    def __exit__(self, *exc_info):
        with self.trace._lock:
            self.trace._thread_branches().pop()
            self.trace._open_branches -= 1
        return False


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


@dataclass
class DropRule:
    """One message-drop rule; ``None`` fields match any value.

    ``remaining`` counts down per dropped message (``None`` = unlimited);
    ``probability`` < 1.0 makes the rule fire stochastically from the
    injector's seeded RNG, so runs stay reproducible.
    """

    source: str | None = None
    destination: str | None = None
    purpose: str | None = None
    remaining: int | None = 1
    probability: float = 1.0

    def matches(self, source: str, destination: str, purpose: str) -> bool:
        if self.remaining == 0:
            return False
        if self.source is not None and self.source != source:
            return False
        if self.destination is not None and self.destination != destination:
            return False
        if self.purpose is not None and self.purpose != purpose:
            return False
        return True


@dataclass
class DroppedMessage:
    """Accounting record for one injected loss."""

    source: str
    destination: str
    purpose: str
    reason: str


class FaultInjector:
    """Deterministic, seed-driven fault model for the simulated network.

    Three fault classes, all consulted by :meth:`Network.send`:

    - **drop rules** — lose the next N (or a seeded fraction of) messages
      on a link, optionally scoped by message ``purpose`` (``"prepare"``,
      ``"commit"``, ...), so a test can lose exactly the 2PC decision
      message and nothing else
    - **site crashes** — a crashed site neither sends nor receives until
      :meth:`restart_site`
    - **partitions** — site groups that cannot reach each other until
      :meth:`heal`; :meth:`partition` severs both directions,
      :meth:`partition_oneway` only one (the classic asymmetric-link
      topology where A hears B but B never hears A)

    Every loss is recorded in :attr:`dropped` and raised to the sender as
    :class:`~repro.errors.MessageDropped`.
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        # Concurrent fetches consult fault_for() from worker threads; the
        # seeded RNG and rule countdowns must mutate atomically.
        self._lock = threading.Lock()
        self._rules: list[DropRule] = []
        self._crashed: set[str] = set()
        #: Directed cuts: messages from the first set to the second are
        #: lost.  A symmetric partition stores both directions.
        self._partitions: list[tuple[frozenset, frozenset]] = []
        self.dropped: list[DroppedMessage] = []
        #: Optional :class:`repro.obs.Observability` handle; when set (by
        #: ``MyriadSystem.inject_faults`` or the owning network), crash /
        #: restart / partition / heal actions are recorded as events.
        self.obs = None

    def _emit(self, etype: str, **fields: object) -> None:
        if self.obs is not None:
            self.obs.emit(etype, **fields)

    # -- configuration -----------------------------------------------------

    def drop_next(
        self,
        count: int = 1,
        source: str | None = None,
        destination: str | None = None,
        purpose: str | None = None,
    ) -> DropRule:
        """Drop the next ``count`` messages matching the filters."""
        rule = DropRule(source, destination, purpose, remaining=count)
        self._rules.append(rule)
        return rule

    def drop_rate(
        self,
        probability: float,
        source: str | None = None,
        destination: str | None = None,
        purpose: str | None = None,
    ) -> DropRule:
        """Drop a seeded random fraction of matching messages, indefinitely."""
        rule = DropRule(
            source, destination, purpose, remaining=None, probability=probability
        )
        self._rules.append(rule)
        return rule

    def crash_site(self, site: str) -> None:
        self._crashed.add(site)
        self._emit("fault.crash", site=site)

    def restart_site(self, site: str) -> None:
        """Bring a crashed site back with a clean per-site fault slate.

        Clears the crash flag *and* every finite drop rule scoped to this
        site (as source or destination) — a restarted site should not
        inherit stale one-shot losses queued against its previous
        incarnation.  Unlimited rules (``remaining=None``, e.g. lossy-link
        ``drop_rate``) model the *link*, not the site, and survive.
        Partitions also survive: a restart reboots the site, it does not
        re-cable the network — heal partitions explicitly with
        :meth:`heal`.  Emits a ``fault.restart`` event.
        """
        self._crashed.discard(site)
        self._rules = [
            rule
            for rule in self._rules
            if rule.remaining is None or site not in (rule.source, rule.destination)
        ]
        self._emit("fault.restart", site=site)

    def is_crashed(self, site: str) -> bool:
        return site in self._crashed

    def partition(self, group_a, group_b) -> None:
        """Sever both directions between two site groups."""
        self._partitions.append((frozenset(group_a), frozenset(group_b)))
        self._partitions.append((frozenset(group_b), frozenset(group_a)))
        self._emit(
            "fault.partition",
            group_a=sorted(group_a),
            group_b=sorted(group_b),
            direction="both",
        )

    def partition_oneway(self, sources, destinations) -> None:
        """Sever one direction only: ``sources`` → ``destinations`` is lost,
        the reverse path still delivers (asymmetric link failure)."""
        self._partitions.append((frozenset(sources), frozenset(destinations)))
        self._emit(
            "fault.partition",
            group_a=sorted(sources),
            group_b=sorted(destinations),
            direction="a->b",
        )

    def heal(self) -> None:
        """Remove all partitions and restart every crashed site."""
        if self._partitions or self._crashed:
            self._emit(
                "fault.heal",
                cuts=len(self._partitions),
                crashed=sorted(self._crashed),
            )
        self._partitions.clear()
        self._crashed.clear()

    def clear(self) -> None:
        """Remove every fault (rules, crashes, partitions); keep accounting."""
        self._rules.clear()
        self.heal()

    # -- evaluation --------------------------------------------------------

    def fault_for(self, source: str, destination: str, purpose: str) -> str | None:
        """Reason this message is lost, or ``None`` to deliver it.

        Mutates rule counters, so each call models one send attempt.
        """
        with self._lock:
            for site in (source, destination):
                if site in self._crashed:
                    return f"site {site!r} is crashed"
            for sources, destinations in self._partitions:
                if source in sources and destination in destinations:
                    return f"partition between {source!r} and {destination!r}"
            for rule in self._rules:
                if not rule.matches(source, destination, purpose):
                    continue
                if (
                    rule.probability < 1.0
                    and self._rng.random() >= rule.probability
                ):
                    continue
                if rule.remaining is not None:
                    rule.remaining -= 1
                return f"drop rule on purpose {purpose!r}"
            return None

    def record(self, source: str, destination: str, purpose: str, reason: str) -> None:
        with self._lock:
            self.dropped.append(
                DroppedMessage(source, destination, purpose, reason)
            )


class Network:
    """Registry of sites and link profiles with message accounting."""

    def __init__(
        self,
        default_link: LinkProfile | None = None,
        faults: FaultInjector | None = None,
        obs=None,
        wall_delay_factor: float = 0.0,
    ):
        self.default_link = default_link or LinkProfile()
        #: When > 0, each delivered message also *sleeps* for
        #: ``cost * wall_delay_factor`` real seconds — modelling the
        #: I/O-bound wait a federation thread spends blocked on a gateway,
        #: so parallel fetch overlap is measurable in wall-clock time
        #: (experiment E15).  The sleep happens outside every lock and
        #: never touches the simulated accounting.
        self.wall_delay_factor = wall_delay_factor
        #: Guards cumulative counters and the simulated clock; never held
        #: across fault evaluation, health recording, or sleeping.
        self._lock = threading.Lock()
        self._sites: set[str] = set()
        self._links: dict[tuple[str, str], LinkProfile] = {}
        #: Optional fault injector consulted on every send.
        self.faults = faults
        #: Optional :class:`repro.obs.Observability` handle; every send is
        #: counted into its metrics registry (messages/bytes by purpose,
        #: fault-injector drops).  ``MyriadSystem`` installs its own here.
        self.obs = obs
        #: Optional :class:`repro.health.HealthTracker`; every send outcome
        #: is recorded against the non-hub endpoint (``MyriadSystem`` wires
        #: this so circuit breakers see all traffic).
        self.health = None
        #: Endpoint treated as the federation hub for health attribution:
        #: a lost hub↔site message blames the *site*, never the hub.
        self.health_hub = "federation"
        # Cumulative counters (all traces).
        self.total_messages = 0
        self.total_bytes = 0
        self.dropped_messages = 0
        #: Monotonic simulated clock: the cumulative virtual cost of every
        #: delivered message (plus link latency burned on each drop) and
        #: any explicit :meth:`advance` — the time source for health-check
        #: cooldowns and retry backoff.
        self.now_s = 0.0

    def advance(self, seconds: float) -> None:
        """Advance the simulated clock (e.g. a retry backoff or idle wait)."""
        if seconds < 0:
            raise NetworkError("cannot advance the simulated clock backwards")
        with self._lock:
            self.now_s += seconds

    def _blame(self, source: str, destination: str) -> str:
        """The endpoint whose health a message outcome reflects."""
        return destination if source == self.health_hub else source

    # -- topology ----------------------------------------------------------

    def add_site(self, name: str) -> None:
        self._sites.add(name)

    def has_site(self, name: str) -> bool:
        return name in self._sites

    def set_link(self, source: str, destination: str, profile: LinkProfile) -> None:
        """Override the profile for a directed link (both sites must exist)."""
        for site in (source, destination):
            if site not in self._sites:
                raise NetworkError(f"unknown site {site!r}")
        self._links[(source, destination)] = profile

    def link(self, source: str, destination: str) -> LinkProfile:
        return self._links.get((source, destination), self.default_link)

    # -- messaging -----------------------------------------------------------

    def send(
        self,
        source: str,
        destination: str,
        payload_bytes: int,
        purpose: str,
        trace: MessageTrace | None = None,
        request_id: str | None = None,
        raw_bytes: int | None = None,
    ) -> float:
        """Account one message; returns its virtual cost in seconds.

        ``raw_bytes`` is the pre-compression payload size when the sender
        wire-compressed this message; it is carried on the trace record
        for observability only — cost and byte accounting always charge
        ``payload_bytes`` (what actually crosses the link).
        """
        if source not in self._sites:
            raise NetworkError(f"unknown source site {source!r}")
        if destination not in self._sites:
            raise NetworkError(f"unknown destination site {destination!r}")
        if source == destination:
            return 0.0  # local calls are free
        if self.faults is not None:
            reason = self.faults.fault_for(source, destination, purpose)
            if reason is not None:
                with self._lock:
                    self.dropped_messages += 1
                    # The sender still burns the link latency discovering
                    # the loss (timeout), so failures advance simulated
                    # time too.
                    self.now_s += self.link(source, destination).latency_s
                self.faults.record(source, destination, purpose, reason)
                # Replica-to-replica consensus traffic is exempt from
                # breaker attribution: _blame would charge the *sender*
                # (usually the group leader) for a peer's unreachability.
                if self.health is not None and not purpose.startswith("raft."):
                    self.health.record_failure(
                        self._blame(source, destination), reason=reason
                    )
                if self.obs is not None:
                    self.obs.metrics.inc("net.dropped", purpose=purpose)
                    self.obs.emit(
                        "fault.drop",
                        sim_s=trace.elapsed_s if trace is not None else None,
                        source=source,
                        destination=destination,
                        purpose=purpose,
                        reason=reason,
                    )
                raise MessageDropped(
                    f"message {purpose!r} from {source!r} to {destination!r} "
                    f"lost: {reason}",
                    source=source,
                    destination=destination,
                    purpose=purpose,
                    reason=reason,
                )
        cost = self.link(source, destination).cost(payload_bytes)
        with self._lock:
            self.total_messages += 1
            self.total_bytes += payload_bytes
            self.now_s += cost
        if self.wall_delay_factor > 0:
            time.sleep(cost * self.wall_delay_factor)
        if self.health is not None and not purpose.startswith("raft."):
            self.health.record_success(self._blame(source, destination))
        if self.obs is not None:
            metrics = self.obs.metrics
            metrics.inc("net.messages", purpose=purpose)
            metrics.inc("net.bytes", payload_bytes, purpose=purpose)
        if trace is not None:
            trace.add(
                MessageRecord(
                    source,
                    destination,
                    payload_bytes,
                    purpose,
                    cost,
                    request_id=request_id,
                    raw_bytes=raw_bytes,
                )
            )
        return cost


# ---------------------------------------------------------------------------
# Payload sizing
# ---------------------------------------------------------------------------


def estimate_value_bytes(value: object) -> int:
    """Wire-size estimate of one value (same model as storage stats)."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value) + 4
    return 16


def estimate_rows_bytes(rows: list[tuple]) -> int:
    """Wire-size estimate of a rowset (plus per-row framing)."""
    total = 0
    for row in rows:
        total += 8  # framing
        for value in row:
            total += estimate_value_bytes(value)
    return total
