"""Simulated network: message accounting with virtual latency/bandwidth."""

from repro.net.codec import (
    EncodedColumn,
    EncodedFragment,
    decode_fragment,
    encode_fragment,
)
from repro.net.sim import (
    DEFAULT_BANDWIDTH_BYTES_PER_S,
    DEFAULT_LATENCY_S,
    DropRule,
    DroppedMessage,
    FaultInjector,
    LinkProfile,
    MessageRecord,
    MessageTrace,
    Network,
    RetryJitter,
    estimate_rows_bytes,
    estimate_value_bytes,
)

__all__ = [
    "DEFAULT_BANDWIDTH_BYTES_PER_S",
    "DEFAULT_LATENCY_S",
    "DropRule",
    "DroppedMessage",
    "EncodedColumn",
    "EncodedFragment",
    "decode_fragment",
    "encode_fragment",
    "FaultInjector",
    "LinkProfile",
    "MessageRecord",
    "MessageTrace",
    "Network",
    "RetryJitter",
    "estimate_rows_bytes",
    "estimate_value_bytes",
]
