"""Dictionary/RLE wire encoding for shipped fragments.

Federated query cost is dominated by shipped-fragment volume, and the cost
model's primary currency is simulated bytes-on-wire.  This codec encodes a
fragment column-wise before the gateway's ``result`` message is accounted,
so the network charges *compressed* bytes:

- **dict** — low-cardinality columns ship their distinct values once plus
  a narrow code (1/2/4 bytes) per row;
- **rle** — runs of equal consecutive values collapse to ``(value, count)``
  pairs (sorted or constant columns, e.g. uniform initial balances);
- **raw** — everything else ships as-is.

Per column the encoder picks whichever of the applicable encodings is
smallest under the same sizing model the raw path uses
(:func:`~repro.net.sim.estimate_value_bytes`).  Applicability is decided by
a cheap sampling heuristic (~:data:`SAMPLE_TARGET` probes per column) so
incompressible columns never pay a full encoding pass.  If the encoded
fragment would not beat the raw rowset (headers included), the whole
fragment falls back to raw — **wire bytes never exceed raw bytes**.

Decoding is an exact inverse: the decoded rows are the same value objects
zipped back into tuples, so results and downstream accounting are
bit-identical to shipping raw rows.

Equality hazards: Python hashes/compares ``True == 1 == 1.0`` as equal, so
both the dictionary and the run detector key on ``(type, value)`` — a
column holding ``True`` and ``1`` never collapses them into one code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.sim import estimate_rows_bytes, estimate_value_bytes

#: Fragment-level framing: codec map, column count, row count.
FRAGMENT_HEADER_BYTES = 16
#: Per-column framing: encoding tag + payload length.
COLUMN_HEADER_BYTES = 8
#: Probes per column for the applicability heuristic.
SAMPLE_TARGET = 64
#: Sampled distinct-ratio at or below which dictionary encoding is tried.
DICT_THRESHOLD = 0.5
#: Sampled run-ratio at or below which run-length encoding is tried.
RLE_THRESHOLD = 0.5


@dataclass
class EncodedColumn:
    """One encoded column of a shipped fragment."""

    #: ``"raw"`` | ``"dict"`` | ``"rle"``
    encoding: str
    #: raw: the value list; dict: ``(values, codes)``; rle: ``[(value,
    #: run_length), ...]``.
    data: object
    #: Simulated size of this column on the wire (header excluded).
    wire_bytes: int


@dataclass
class EncodedFragment:
    """A shipped fragment after column-wise encoding.

    ``columns_data`` is None when the encoder fell back to shipping the
    raw rowset (``rows`` holds it); otherwise one :class:`EncodedColumn`
    per output column.
    """

    columns: list[str]
    row_count: int
    #: Simulated size of the unencoded rowset (what the raw path charges).
    raw_bytes: int
    #: Simulated size actually charged to the network.
    wire_bytes: int
    #: Summary like ``"dict,rle"`` or ``"raw"`` — per-column encodings in
    #: column order, deduplicated for display.
    codec: str
    columns_data: list[EncodedColumn] | None = None
    rows: list[tuple] | None = None


def _raw_column_bytes(values: list) -> int:
    total = 0
    for value in values:
        total += estimate_value_bytes(value)
    return total


def _code_width(distinct: int) -> int:
    if distinct <= 256:
        return 1
    if distinct <= 65536:
        return 2
    return 4


def _sample_stats(values: list) -> tuple[float, float]:
    """(distinct_ratio, run_ratio) over ~SAMPLE_TARGET evenly-spaced probes.

    The run probe walks a short contiguous prefix (runs are a property of
    *adjacent* values — striding would destroy them).
    """
    n = len(values)
    step = max(1, n // SAMPLE_TARGET)
    sample = values[::step]
    seen = {(type(value), value) for value in sample}
    distinct_ratio = len(seen) / len(sample)
    prefix = values[: min(n, SAMPLE_TARGET)]
    runs = 1
    for i in range(1, len(prefix)):
        value, previous = prefix[i], prefix[i - 1]
        if not (type(value) is type(previous) and value == previous):
            runs += 1
    run_ratio = runs / len(prefix)
    return distinct_ratio, run_ratio


def _encode_dict(values: list) -> EncodedColumn | None:
    """Dictionary-encode one column, or None if a value is unhashable."""
    codes: list[int] = []
    mapping: dict = {}
    distinct: list = []
    try:
        for value in values:
            key = (type(value), value)
            code = mapping.get(key)
            if code is None:
                code = len(distinct)
                mapping[key] = code
                distinct.append(value)
            codes.append(code)
    except TypeError:
        return None
    wire = _raw_column_bytes(distinct) + len(values) * _code_width(
        len(distinct)
    )
    return EncodedColumn("dict", (distinct, codes), wire)


def _encode_rle(values: list) -> EncodedColumn:
    """Run-length encode one column (type-strict run detection)."""
    runs: list[tuple] = []
    previous = None
    count = 0
    for value in values:
        if count and type(value) is type(previous) and value == previous:
            count += 1
        else:
            if count:
                runs.append((previous, count))
            previous = value
            count = 1
    if count:
        runs.append((previous, count))
    wire = 0
    for value, _ in runs:
        wire += estimate_value_bytes(value) + 4  # value + run length
    return EncodedColumn("rle", runs, wire)


def encode_fragment(columns: list[str], rows: list[tuple]) -> EncodedFragment:
    """Encode one fragment column-wise; falls back to raw when not smaller."""
    raw_bytes = estimate_rows_bytes(rows)
    if not rows or not columns:
        return EncodedFragment(
            list(columns), len(rows), raw_bytes, raw_bytes, "raw", rows=rows
        )
    column_values = [list(values) for values in zip(*rows)]
    encoded: list[EncodedColumn] = []
    wire_total = FRAGMENT_HEADER_BYTES
    for values in column_values:
        best = EncodedColumn("raw", values, _raw_column_bytes(values))
        distinct_ratio, run_ratio = _sample_stats(values)
        if distinct_ratio <= DICT_THRESHOLD:
            candidate = _encode_dict(values)
            if candidate is not None and candidate.wire_bytes < best.wire_bytes:
                best = candidate
        if run_ratio <= RLE_THRESHOLD:
            candidate = _encode_rle(values)
            if candidate.wire_bytes < best.wire_bytes:
                best = candidate
        encoded.append(best)
        wire_total += COLUMN_HEADER_BYTES + best.wire_bytes
    if wire_total >= raw_bytes or all(
        column.encoding == "raw" for column in encoded
    ):
        # Headers ate the win, or no column actually compressed (the
        # column layout alone must not be charged cheaper than rows):
        # ship raw rows.
        return EncodedFragment(
            list(columns), len(rows), raw_bytes, raw_bytes, "raw", rows=rows
        )
    summary = ",".join(
        sorted({column.encoding for column in encoded})
    )
    return EncodedFragment(
        list(columns),
        len(rows),
        raw_bytes,
        wire_total,
        summary,
        columns_data=encoded,
    )


def decode_fragment(fragment: EncodedFragment) -> list[tuple]:
    """Exact inverse of :func:`encode_fragment`."""
    if fragment.columns_data is None:
        return list(fragment.rows)
    columns: list[list] = []
    for column in fragment.columns_data:
        if column.encoding == "raw":
            columns.append(column.data)
        elif column.encoding == "dict":
            distinct, codes = column.data
            columns.append([distinct[code] for code in codes])
        else:  # rle
            values: list = []
            for value, count in column.data:
                values.extend([value] * count)
            columns.append(values)
    if not columns:
        return [()] * fragment.row_count
    return list(zip(*columns))
