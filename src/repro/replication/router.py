"""Routing a replica group behind the single-site gateway interface.

:class:`ReplicatedGateway` presents the full :class:`~repro.gateway.
Gateway` surface for one logical site while fanning the work over a
:class:`~repro.replication.raft.ReplicaGroup`:

- every operation routes to the current leader through a
  :class:`ReplicaRouter`, which models the classic NOT_LEADER redirect
  (a stale leader pointer costs one accounted ``raft.redirect`` round
  trip and a hint), detects leader failure (dropped messages, or the
  leader replica's circuit breaker open), triggers a deterministic
  election, and retries against the new leader with exponential backoff
  charged to the simulated clock — bounded, so a majority-dead group
  still surfaces as an unreachable site
- committed local writes are captured as export-namespace SQL and fed to
  the group's replicated log: 2PC ``prepare`` replicates the branch's
  write-set to a majority *before* the YES vote, and a ``commit`` /
  ``abort`` decision must be majority-durable before the leader applies
  it — so "the group acknowledged it" always implies "a leader crash
  cannot lose it"
- autocommit snapshot SELECTs may be served by followers
  (``follower_reads=True``) under a bounded-staleness guard: a follower
  answers only while ``leader commit index − follower applied index``
  is within ``staleness_bound`` entries (surfaced as the
  ``raft.staleness`` gauge); others fall back to the leader

With ``replication_factor=1`` :class:`~repro.myriad.MyriadSystem` never
constructs any of this — single-replica sites keep today's plain
:class:`~repro.gateway.Gateway` with bit-identical accounting.
"""

from __future__ import annotations

import threading

from repro.errors import CircuitOpenError, MessageDropped, NetworkError
from repro.gateway import FEDERATION_SITE, Gateway
from repro.net import MessageTrace
from repro.replication.raft import ReplicaGroup
from repro.sql import ast, to_sql

#: Failover retries per routed operation (beyond the first attempt).
FAILOVER_RETRY_LIMIT = 2
FAILOVER_RETRY_BACKOFF_S = 0.02


class ReplicaRouter:
    """Leader discovery, redirects, failover retries for one group."""

    def __init__(self, group: ReplicaGroup):
        self.group = group
        #: The leader replica index this router last confirmed.  Kept
        #: deliberately lazy: after an election triggered elsewhere the
        #: pointer is stale, and the next operation pays the NOT_LEADER
        #: redirect round trip before following the hint.
        self.presumed_leader = group.leader_index
        self.retry_limit = FAILOVER_RETRY_LIMIT
        self.retry_backoff_s = FAILOVER_RETRY_BACKOFF_S
        self._read_rr = 0
        self._mutex = threading.Lock()

    def _health(self):
        return getattr(self.group.network, "health", None)

    def _redirect(self, stale, leader, trace: MessageTrace | None) -> None:
        """Pay for discovering the leader moved: one redirect round trip."""
        group = self.group
        with self._mutex:
            group.redirects += 1
            self.presumed_leader = group.leader_index
        group.obs.metrics.inc("raft.redirects", group=group.site)
        try:
            group.network.send(
                FEDERATION_SITE, stale.site, 32, "raft.redirect", trace
            )
            group.network.send(
                stale.site, FEDERATION_SITE, 16, "raft.redirect", trace
            )
        except MessageDropped:
            return  # the stale replica is dead too; the hint costs nothing

    def leader_op(self, op, trace: MessageTrace | None = None):
        """Run ``op(gateway)`` against the elected leader, with failover.

        Detection → election → bounded retry: a dropped message at the
        leader (or its breaker open) triggers :meth:`ReplicaGroup.elect`,
        and the operation is retried against the winner with exponential
        backoff charged to the simulated clock and the caller's trace.
        Exhausted retries re-raise — the logical site is down.
        """
        group = self.group
        group.tick()
        health = self._health()
        last_error: NetworkError | None = None
        for attempt in range(self.retry_limit + 1):
            if attempt:
                group.obs.metrics.inc("raft.failover_retries", group=group.site)
                backoff = self.retry_backoff_s * 2 ** (attempt - 1)
                if trace is not None:
                    trace.add_compute(backoff)
                group.network.advance(backoff)
            leader = group.leader
            with self._mutex:
                stale = (
                    group.replicas[self.presumed_leader]
                    if self.presumed_leader != group.leader_index
                    else None
                )
            if stale is not None:
                self._redirect(stale, leader, trace)
            if (
                len(group.replicas) > 1
                and health is not None
                and health.is_blocked(leader.site)
            ):
                # Breaker-open leader: elect before sending anything.
                group.obs.emit(
                    "raft.failover",
                    sim_s=group.network.now_s,
                    group=group.site,
                    suspect=leader.site,
                    reason="breaker-open",
                )
                try:
                    leader = group.elect(trace=trace, suspect=leader.site)
                except MessageDropped as error:
                    last_error = error
                    continue
                with self._mutex:
                    self.presumed_leader = group.leader_index
            try:
                result = op(leader.gateway)
            except MessageDropped as error:
                last_error = error
                if len(group.replicas) == 1:
                    raise
                group.obs.emit(
                    "raft.failover",
                    sim_s=group.network.now_s,
                    group=group.site,
                    suspect=leader.site,
                    reason=error.reason or "message dropped",
                )
                try:
                    group.elect(trace=trace, suspect=leader.site)
                except MessageDropped as election_error:
                    last_error = election_error
                    continue
                with self._mutex:
                    self.presumed_leader = group.leader_index
                continue
            with self._mutex:
                self.presumed_leader = group.leader_index
            return result
        raise last_error

    def pick_follower(self, staleness_bound: int):
        """A follower eligible to serve a read, or ``None``.

        Round-robin over followers whose applied index is within
        ``staleness_bound`` entries of the leader's commit index and
        whose breaker is not open.
        """
        group = self.group
        leader = group.leader
        health = self._health()
        candidates = [
            replica
            for replica in group.replicas
            if replica is not leader
            and leader.commit_index - replica.applied_index
            <= staleness_bound
            and (health is None or not health.is_blocked(replica.site))
        ]
        if not candidates:
            return None
        with self._mutex:
            choice = candidates[self._read_rr % len(candidates)]
            self._read_rr += 1
        return choice


class ReplicatedGateway:
    """The gateway interface of one logical site, backed by a group.

    Drop-in for :class:`~repro.gateway.Gateway` in
    ``MyriadSystem.gateways``: the executor, coordinator, deadlock
    monitor, and introspection talk to it unchanged.
    """

    def __init__(
        self,
        group: ReplicaGroup,
        follower_reads: bool = False,
        staleness_bound: int = 0,
    ):
        self.group = group
        self.site = group.site
        self.network = group.network
        self.router = ReplicaRouter(group)
        #: Serve autocommit snapshot SELECTs from followers when within
        #: ``staleness_bound`` entries of the leader's commit index.
        self.follower_reads = follower_reads
        self.staleness_bound = staleness_bound
        # The logical site participates in accounting-level lookups
        # (set_link, health snapshots) even though traffic flows to the
        # replica sites.
        group.network.add_site(self.site)

    # -- replica plumbing ----------------------------------------------

    def _leader_gateway(self) -> Gateway:
        return self.group.leader.gateway

    @property
    def obs(self):
        return self._leader_gateway().obs

    @property
    def dbms(self):
        """The current leader's component DBMS."""
        return self._leader_gateway().dbms

    @property
    def exports(self):
        return self._leader_gateway().exports

    @property
    def replica_dbmses(self) -> list:
        """Every replica's DBMS — workload builders load all of them."""
        return [replica.gateway.dbms for replica in self.group.replicas]

    @property
    def replica_gateways(self) -> list[Gateway]:
        return [replica.gateway for replica in self.group.replicas]

    # -- aggregated experiment counters --------------------------------

    @property
    def queries_executed(self) -> int:
        return sum(r.gateway.queries_executed for r in self.group.replicas)

    @property
    def timeouts(self) -> int:
        return sum(r.gateway.timeouts for r in self.group.replicas)

    @property
    def snapshot_reads(self) -> int:
        return sum(r.gateway.snapshot_reads for r in self.group.replicas)

    @property
    def stats_version(self) -> int:
        return self._leader_gateway().stats_version

    # -- fault hooks delegate to the current leader --------------------

    @property
    def fail_next_prepares(self) -> int:
        return self._leader_gateway().fail_next_prepares

    @fail_next_prepares.setter
    def fail_next_prepares(self, value: int) -> None:
        self._leader_gateway().fail_next_prepares = value

    @property
    def drop_next_commits(self) -> int:
        return self._leader_gateway().drop_next_commits

    @drop_next_commits.setter
    def drop_next_commits(self, value: int) -> None:
        self._leader_gateway().drop_next_commits = value

    # ------------------------------------------------------------------
    # Export management: definitions fan out to every replica
    # ------------------------------------------------------------------

    def export_table(self, *args, **kwargs):
        relation = None
        for replica in self.group.replicas:
            result = replica.gateway.export_table(*args, **kwargs)
            if replica is self.group.leader:
                relation = result
        return relation

    def export_names(self) -> list[str]:
        return self._leader_gateway().export_names()

    def export_relation_schema(self, name: str):
        return self._leader_gateway().export_relation_schema(name)

    def export_stats(self, name: str, refresh: bool = False):
        return self._leader_gateway().export_stats(name, refresh)

    def invalidate_stats(self) -> None:
        self._leader_gateway().invalidate_stats()

    def data_version(self, export_name: str) -> tuple[int, int, int]:
        return self._leader_gateway().data_version(export_name)

    # ------------------------------------------------------------------
    # Query shipping
    # ------------------------------------------------------------------

    def execute_query(
        self,
        query,
        trace: MessageTrace | None = None,
        from_site: str = FEDERATION_SITE,
        timeout: float | None = None,
        global_id: object | None = None,
        request_id: str | None = None,
    ):
        group = self.group
        if (
            global_id is None
            and self.follower_reads
            and len(group.replicas) > 1
        ):
            follower = self.router.pick_follower(self.staleness_bound)
            if follower is not None:
                try:
                    result = follower.gateway.execute_query(
                        query,
                        trace=trace,
                        from_site=from_site,
                        timeout=timeout,
                        global_id=None,
                        request_id=request_id,
                    )
                except (MessageDropped, CircuitOpenError):
                    pass  # fall through to the leader path
                else:
                    group.follower_reads += 1
                    group.obs.metrics.inc(
                        "raft.follower_read",
                        group=group.site,
                        replica=follower.site,
                    )
                    return result
        return self.router.leader_op(
            lambda gw: gw.execute_query(
                query,
                trace=trace,
                from_site=from_site,
                timeout=timeout,
                global_id=global_id,
                request_id=request_id,
            ),
            trace=trace,
        )

    def execute_update(
        self,
        statement,
        global_id: object,
        trace: MessageTrace | None = None,
        from_site: str = FEDERATION_SITE,
        timeout: float | None = None,
    ) -> int:
        sql_text = self._statement_text(statement)
        if global_id is None:
            # Autocommit DML: majority-replicate the write *before* the
            # leader applies it, so an acknowledged write survives any
            # single failover (no committed-then-lost entry).
            entry = self._replicate("write", None, (sql_text,), trace)
            if entry is None:
                raise MessageDropped(
                    f"replica group {self.site!r}: write not "
                    "majority-durable",
                    destination=self.site,
                    purpose="raft.append",
                    reason="no quorum",
                )

            def apply_at_leader(gw: Gateway) -> int:
                # A failover between replication and apply can hand us a
                # leader that already applied this entry from the log (it
                # was a follower when the entry committed): never run the
                # statement twice.
                if self.group.replica_of(gw).applied_index >= entry.index:
                    return 0
                return gw.execute_update(
                    statement,
                    None,
                    trace=trace,
                    from_site=from_site,
                    timeout=timeout,
                )

            result = self.router.leader_op(apply_at_leader, trace=trace)
            self.group.mark_leader_applied()
            return result
        result = self.router.leader_op(
            lambda gw: gw.execute_update(
                statement,
                global_id,
                trace=trace,
                from_site=from_site,
                timeout=timeout,
            ),
            trace=trace,
        )
        self.group.record_statement(global_id, sql_text)
        return result

    def _replicate(
        self,
        kind: str,
        global_id: object,
        statements: tuple[str, ...],
        trace: MessageTrace | None,
    ):
        """Majority-replicate one entry, failing over if the leader is the
        unreachable party.

        A failed append means the leader could not reach a majority —
        which, when the leader itself is crashed or isolated, the healthy
        majority can fix by electing among themselves.  One election +
        re-drive; returns the committed entry or ``None`` (genuine loss of
        quorum).
        """
        group = self.group
        entry = group.append_and_replicate(
            kind, global_id, statements, trace=trace
        )
        if entry is not None or len(group.replicas) == 1:
            return entry
        group.obs.emit(
            "raft.failover",
            sim_s=group.network.now_s,
            group=group.site,
            suspect=group.leader.site,
            reason=f"append {kind!r} below quorum",
        )
        try:
            group.elect(trace=trace, suspect=group.leader.site)
        except MessageDropped:
            return None
        with self.router._mutex:
            self.router.presumed_leader = group.leader_index
        return group.append_and_replicate(
            kind, global_id, statements, trace=trace
        )

    @staticmethod
    def _statement_text(statement) -> str:
        if isinstance(statement, str):
            return statement
        if isinstance(statement, ast.Statement):
            return to_sql(statement)
        return str(statement)

    # ------------------------------------------------------------------
    # 2PC participant proxy
    # ------------------------------------------------------------------

    def begin(
        self,
        global_id: object,
        trace: MessageTrace | None = None,
        from_site: str = FEDERATION_SITE,
    ) -> None:
        self.router.leader_op(
            lambda gw: gw.begin(global_id, trace, from_site), trace=trace
        )
        self.group.pending_stmts.setdefault(global_id, [])

    def prepare(
        self,
        global_id: object,
        trace: MessageTrace | None = None,
        from_site: str = FEDERATION_SITE,
    ) -> bool:
        group = self.group
        statements = group.pending_statements(global_id)
        # Replicate the branch's write-set to a majority *before* voting
        # YES: a YES vote promises the commit can be honoured even if the
        # leader dies, which requires a quorum to know the write-set.
        if self._replicate("prepare", global_id, statements, trace) is None:
            # Cannot promise durability: vote NO.  Abort the local branch
            # first (as a NO-voting participant does), so the coordinator
            # sees a clean refusal.
            leader = self._leader_gateway()
            if leader.has_branch(global_id):
                leader.resolve_replicated(global_id, "abort")
            group.clear_pending(global_id)
            group.obs.metrics.inc("raft.vote_no_quorum", group=group.site)
            return False
        def vote_at_leader(gw: Gateway) -> bool:
            # A failover (before this call or during a leader_op retry)
            # can hand us a leader that never ran the branch: re-create it
            # from the majority-durable write-set and hold it PREPARED —
            # the group's vote stays consistent across the failover.  The
            # new leader may also hold it PREPARED already (adopted when
            # it won the election): the YES vote is then already secured.
            if not gw.has_branch(global_id):
                gw.adopt_branch(global_id, statements)
                replica = group.replica_of(gw)
                replica.pending_prepares[global_id] = statements
                group.mark_leader_applied()
                group.obs.metrics.inc(
                    "raft.branch_adopted", group=group.site
                )
                return True
            if gw.branch_states().get(global_id) == "prepared":
                return True
            return gw.prepare(global_id, trace, from_site)

        return self.router.leader_op(vote_at_leader, trace=trace)

    def commit(
        self,
        global_id: object,
        trace: MessageTrace | None = None,
        from_site: str = FEDERATION_SITE,
    ) -> None:
        group = self.group
        statements = group.pending_statements(global_id)
        self.group._chaos("before_decision:commit", global_id=global_id)
        # The decision is durable at this participant only once a
        # majority holds it; until then the coordinator must keep the
        # branch in doubt (it parks and retries on MessageDropped).
        if self._replicate("commit", global_id, statements, trace) is None:
            raise MessageDropped(
                f"replica group {self.site!r}: commit decision not "
                "majority-durable",
                destination=self.site,
                purpose="raft.append",
                reason="no quorum",
            )
        self.group._chaos("after_decision:commit", global_id=global_id)
        self.router.leader_op(
            lambda gw: gw.commit(global_id, trace, from_site), trace=trace
        )
        group.leader.pending_prepares.pop(global_id, None)
        group.mark_leader_applied()
        group.clear_pending(global_id)

    def abort(
        self,
        global_id: object,
        trace: MessageTrace | None = None,
        from_site: str = FEDERATION_SITE,
    ) -> None:
        group = self.group
        # Presumed abort: only branches whose prepare entry reached the
        # log need a durable abort entry (followers must drop the pending
        # write-set); a never-prepared branch just rolls back locally.
        if group._find_entry("prepare", global_id) is not None:
            if self._replicate("abort", global_id, (), trace) is None:
                raise MessageDropped(
                    f"replica group {self.site!r}: abort decision not "
                    "majority-durable",
                    destination=self.site,
                    purpose="raft.append",
                    reason="no quorum",
                )
        self.router.leader_op(
            lambda gw: gw.abort(global_id, trace, from_site), trace=trace
        )
        group.leader.pending_prepares.pop(global_id, None)
        group.mark_leader_applied()
        group.clear_pending(global_id)

    # ------------------------------------------------------------------
    # Branch bookkeeping / introspection (leader-side state)
    # ------------------------------------------------------------------

    def has_branch(self, global_id: object) -> bool:
        return self._leader_gateway().has_branch(global_id)

    def cancel_branch_waits(self, global_id: object) -> None:
        self._leader_gateway().cancel_branch_waits(global_id)

    def prepared_branches(self) -> list[object]:
        return self._leader_gateway().prepared_branches()

    def branch_states(self) -> dict[object, str]:
        return self._leader_gateway().branch_states()

    def wait_for_edges(self):
        return self._leader_gateway().wait_for_edges()

    def lock_table(self) -> list[dict]:
        return self._leader_gateway().lock_table()
