"""Deterministic Raft-style replica groups for component sites.

Each component site becomes a *replica group*: a leader plus N followers,
every replica backed by its own :class:`~repro.localdb.LocalDBMS` and its
own :class:`~repro.gateway.Gateway` registered under a replica network
site (``b0#0``, ``b0#1``, ...).  The group implements the Raft essentials
on the **simulated clock** — no background threads:

- **term-based leader election**, driven lazily from routed operations:
  when the leader is unreachable (dropped message) or its circuit breaker
  is open, :meth:`ReplicaGroup.elect` draws election timeouts from a
  seeded RNG (reproducible schedules), charges the winning timeout to the
  simulated clock, and campaigns with ``raft.vote_req`` /
  ``raft.vote_resp`` messages — all fault-injectable, so elections fail
  realistically under partitions and crashes
- **log replication** of committed local writes: autocommit DML, and the
  2PC branch lifecycle (prepare write-sets, commit/abort decisions) are
  appended to the leader's log and shipped to followers as
  ``raft.append`` messages; the commit index advances at **majority
  ack**, and a write is only reported durable once majority-replicated
- **deterministic apply**: followers apply committed entries to their own
  DBMS through the normal gateway DML machinery (parse → export rewrite →
  local execution → version bumps), so follower state converges to the
  leader's and follower reads stay explainable

Safety bookkeeping doubles as the chaos audit surface: the group records
every ``(term, leader)`` election and every majority-committed entry, so
:mod:`repro.chaos` can check *at most one leader per term* and *no
committed-then-lost entry* across any failover schedule.

Raft message purposes (all consulted by the fault injector, all exempt
from circuit-breaker attribution — replica-to-replica losses must not
open the federation-facing breaker of the *sender*):

========================  ============================================
``raft.vote_req``         candidate → peer vote solicitation
``raft.vote_resp``        peer → candidate vote grant
``raft.append``           leader → follower log entries (+ commit index)
``raft.append_ack``       follower → leader replication ack
``raft.heartbeat``        leader → follower liveness + commit index
``raft.redirect``         stale-leader NOT_LEADER reply with leader hint
========================  ============================================
"""

from __future__ import annotations

import random
import threading
import zlib
from dataclasses import dataclass, field

from repro.errors import MessageDropped, NetworkError
from repro.gateway import Gateway
from repro.net import MessageTrace, Network
from repro.obs import DISABLED

#: Election timeout window (simulated seconds); each candidacy draws from
#: it uniformly, so the seeded RNG fully determines the failover schedule.
ELECTION_TIMEOUT_S = (0.15, 0.30)
#: Leader heartbeat cadence on the simulated clock.
HEARTBEAT_INTERVAL_S = 0.05
#: Campaign rounds before the group gives up and reports itself down.
MAX_ELECTION_ROUNDS = 6


@dataclass(frozen=True)
class LogEntry:
    """One replicated log entry.

    ``kind`` is one of ``write`` (autocommit DML), ``prepare`` (a 2PC
    branch's write-set, replicated before the YES vote), ``commit`` or
    ``abort`` (the branch decision).  ``statements`` are export-namespace
    SQL texts — each replica re-translates them through its own gateway.
    """

    index: int  # 1-based position in the log
    term: int
    kind: str
    global_id: object = None
    statements: tuple[str, ...] = ()

    def payload_bytes(self) -> int:
        return 24 + sum(len(s.encode()) for s in self.statements)


class Replica:
    """One member of a replica group: role, term, log, apply cursor."""

    def __init__(self, index: int, site: str, gateway: Gateway):
        self.index = index
        self.site = site
        self.gateway = gateway
        self.role = "follower"
        self.term = 1
        #: term → candidate site this replica granted its vote to.
        self.voted_for: dict[int, str] = {}
        self.log: list[LogEntry] = []
        #: Highest log index known committed (majority-replicated).
        self.commit_index = 0
        #: Highest log index applied to this replica's DBMS.
        self.applied_index = 0
        #: Committed-but-undecided 2PC branches: global_id → statements.
        self.pending_prepares: dict[object, tuple[str, ...]] = {}

    def last_log(self) -> tuple[int, int]:
        """(last term, last index) — Raft's up-to-date comparison key."""
        if not self.log:
            return (0, 0)
        return (self.log[-1].term, self.log[-1].index)

    def lag(self) -> int:
        """Entries this replica has yet to apply (vs its own commit view)."""
        return max(0, self.commit_index - self.applied_index)


class ReplicaGroup:
    """A leader + followers presenting one logical component site.

    All state transitions run inline on the caller's thread, paced by the
    shared simulated clock; a seeded :class:`random.Random` makes every
    election schedule reproducible from ``(seed, site)``.
    """

    def __init__(
        self,
        site: str,
        gateways: list[Gateway],
        network: Network,
        seed: int = 0,
        obs=None,
        election_timeout_s: tuple[float, float] = ELECTION_TIMEOUT_S,
        heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S,
    ):
        if not gateways:
            raise NetworkError(f"replica group {site!r} needs >= 1 replica")
        self.site = site
        self.network = network
        self.obs = obs or DISABLED
        self.election_timeout_s = election_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.replicas = [
            Replica(i, gw.site, gw) for i, gw in enumerate(gateways)
        ]
        self.leader_index = 0
        self.replicas[0].role = "leader"
        #: History of elections: term → winning replica site.  A second
        #: winner for a term is the classic split-brain bug; it is
        #: recorded in :attr:`violations` instead of asserted, so chaos
        #: sweeps report it as an invariant failure.
        self.elections: dict[int, str] = {1: self.replicas[0].site}
        self.violations: list[str] = []
        #: Every entry that ever reached majority commit, in commit
        #: order — the "no committed-then-lost entry" audit trail.
        self.committed_history: list[LogEntry] = []
        #: Statements executed under each open global transaction branch,
        #: captured at the wrapper so prepare/commit entries carry them.
        self.pending_stmts: dict[object, list[str]] = {}
        #: Chaos hook: called with a schedule-point label at enumerated
        #: replication protocol steps (``before_append:commit``,
        #: ``mid_election``, ...); the chaos explorer kills the leader
        #: from it.  Must never be wrapped in try/except here.
        self.chaos_hook = None
        self._rng = random.Random((seed << 16) ^ zlib.crc32(site.encode()))
        self._last_heartbeat_s = network.now_s
        self._mutex = threading.RLock()
        # Failover accounting for the benchmark / dashboard.
        self.elections_run = 0
        self.failovers = 0
        self.heartbeat_misses = 0
        self.redirects = 0
        self.follower_reads = 0
        self.last_failover_s = 0.0
        self._set_gauges()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    @property
    def leader(self) -> Replica:
        return self.replicas[self.leader_index]

    @property
    def term(self) -> int:
        return max(r.term for r in self.replicas)

    def majority(self) -> int:
        return len(self.replicas) // 2 + 1

    def replica_sites(self) -> list[str]:
        return [r.site for r in self.replicas]

    def replica_of(self, gateway: Gateway) -> Replica:
        for replica in self.replicas:
            if replica.gateway is gateway:
                return replica
        raise NetworkError(
            f"gateway {gateway.site!r} is not a member of group {self.site!r}"
        )

    def stats(self) -> dict:
        """JSON-safe snapshot for federation_stats / the dashboard."""
        leader = self.leader
        return {
            "replicas": len(self.replicas),
            "leader": leader.site,
            "term": leader.term,
            "commit_index": leader.commit_index,
            "applied": {r.site: r.applied_index for r in self.replicas},
            "staleness": {
                r.site: max(0, leader.commit_index - r.applied_index)
                for r in self.replicas
                if r is not leader
            },
            "elections": self.elections_run,
            "failovers": self.failovers,
            "heartbeat_misses": self.heartbeat_misses,
            "redirects": self.redirects,
            "follower_reads": self.follower_reads,
            "log_length": len(leader.log),
        }

    def _chaos(self, point: str, **context: object) -> None:
        if self.chaos_hook is not None:
            self.chaos_hook(point, group=self.site, **context)

    def _set_gauges(self) -> None:
        metrics = self.obs.metrics
        leader = self.leader
        metrics.set_gauge("raft.term", leader.term, group=self.site)
        metrics.set_gauge(
            "raft.commit_index", leader.commit_index, group=self.site
        )
        for replica in self.replicas:
            if replica is leader:
                continue
            metrics.set_gauge(
                "raft.staleness",
                max(0, leader.commit_index - replica.applied_index),
                group=self.site,
                replica=replica.site,
            )

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Send a heartbeat round when the cadence is due (lazy driver).

        Called from every routed operation; heartbeats piggyback the
        leader's commit index so healthy followers stay applied without
        dedicated traffic.  Losses are counted as ``raft.heartbeat_miss``
        — failure *detection* stays with the routing layer, which reacts
        to real operation failures rather than to missed idle beats.
        """
        with self._mutex:
            if (
                len(self.replicas) == 1
                or self.network.now_s - self._last_heartbeat_s
                < self.heartbeat_interval_s
            ):
                return
            self._last_heartbeat_s = self.network.now_s
            leader = self.leader
            for replica in self.replicas:
                if replica is leader:
                    continue
                try:
                    self.network.send(
                        leader.site, replica.site, 16, "raft.heartbeat"
                    )
                except MessageDropped as error:
                    self.heartbeat_misses += 1
                    self.obs.metrics.inc(
                        "raft.heartbeat_miss", group=self.site
                    )
                    self.obs.emit(
                        "raft.heartbeat_miss",
                        sim_s=self.network.now_s,
                        group=self.site,
                        leader=leader.site,
                        follower=replica.site,
                        reason=error.reason,
                    )
                    continue
                if (
                    replica.last_log() != leader.last_log()
                    or replica.commit_index < leader.commit_index
                ):
                    self._sync_follower(replica, leader)
                else:
                    replica.term = max(replica.term, leader.term)

    # ------------------------------------------------------------------
    # Log replication
    # ------------------------------------------------------------------

    def record_statement(self, global_id: object, sql_text: str) -> None:
        """Capture one branch statement for later prepare/commit entries."""
        with self._mutex:
            self.pending_stmts.setdefault(global_id, []).append(sql_text)

    def pending_statements(self, global_id: object) -> tuple[str, ...]:
        with self._mutex:
            return tuple(self.pending_stmts.get(global_id, ()))

    def clear_pending(self, global_id: object) -> None:
        with self._mutex:
            self.pending_stmts.pop(global_id, None)

    def _find_entry(self, kind: str, global_id: object) -> LogEntry | None:
        for entry in reversed(self.leader.log):
            if entry.kind == kind and entry.global_id == global_id:
                return entry
        return None

    def append_and_replicate(
        self,
        kind: str,
        global_id: object = None,
        statements: tuple[str, ...] = (),
        trace: MessageTrace | None = None,
    ) -> LogEntry | None:
        """Append one entry at the leader and replicate to majority.

        Returns the entry when it is majority-durable (commit index
        advanced past it), ``None`` otherwise.  Idempotent per ``(kind,
        global_id)`` for branch entries: a retried decision re-drives
        replication of the existing entry instead of appending a
        duplicate.
        """
        with self._mutex:
            leader = self.leader
            entry = (
                self._find_entry(kind, global_id)
                if global_id is not None
                else None
            )
            if entry is not None and entry.index <= leader.commit_index:
                return entry  # already majority-durable (retried decision)
            if entry is None:
                self._chaos(f"before_append:{kind}", global_id=global_id)
                entry = LogEntry(
                    index=len(leader.log) + 1,
                    term=leader.term,
                    kind=kind,
                    global_id=global_id,
                    statements=tuple(statements),
                )
                leader.log.append(entry)
            acks = 1  # the leader's own durable copy
            followers = [r for r in self.replicas if r is not leader]
            for position, replica in enumerate(followers):
                if self._sync_follower(replica, leader, trace=trace):
                    acks += 1
                if position == 0:
                    self._chaos(f"mid_append:{kind}", global_id=global_id)
            self._chaos(f"after_append:{kind}", global_id=global_id, acks=acks)
            if acks < self.majority():
                return None
            self._chaos(f"before_commit_advance:{kind}", global_id=global_id)
            self._advance_commit(leader, entry.index)
            self._chaos(f"after_commit_advance:{kind}", global_id=global_id)
            # Re-announce the moved commit index so acked followers apply
            # now rather than at the next heartbeat (cheap, drop-tolerant).
            for replica in self.replicas:
                if replica is leader:
                    continue
                try:
                    self.network.send(
                        leader.site, replica.site, 16, "raft.commit", trace
                    )
                except MessageDropped:
                    continue
                replica.commit_index = min(
                    leader.commit_index, len(replica.log)
                )
                self._apply_committed(replica)
            self._set_gauges()
            return entry

    def _sync_follower(
        self,
        follower: Replica,
        leader: Replica,
        trace: MessageTrace | None = None,
    ) -> bool:
        """Ship the follower everything it is missing; True on ack.

        Models one append-entries exchange: the Raft consistency check is
        the truncate-then-copy below — a follower whose suffix diverges
        from the leader's log (a deposed leader's uncommitted entries)
        adopts the leader's version.
        """
        start = 0
        while (
            start < len(follower.log)
            and start < len(leader.log)
            and follower.log[start] == leader.log[start]
        ):
            start += 1
        missing = leader.log[start:]
        payload = 16 + sum(e.payload_bytes() for e in missing)
        try:
            self.network.send(
                leader.site, follower.site, payload, "raft.append", trace
            )
            self.network.send(
                follower.site, leader.site, 16, "raft.append_ack", trace
            )
        except MessageDropped:
            return False
        del follower.log[start:]
        follower.log.extend(missing)
        follower.term = max(follower.term, leader.term)
        follower.commit_index = min(leader.commit_index, len(follower.log))
        self._apply_committed(follower)
        return True

    def _advance_commit(self, leader: Replica, index: int) -> None:
        for entry in leader.log[leader.commit_index : index]:
            self.committed_history.append(entry)
            self.obs.metrics.inc(
                "raft.entries_committed", group=self.site, kind=entry.kind
            )
        leader.commit_index = max(leader.commit_index, index)

    # ------------------------------------------------------------------
    # Applying committed entries
    # ------------------------------------------------------------------

    def mark_leader_applied(self) -> None:
        """The leader applied its newest entries in-band (through its own
        gateway session); move its cursor so the replay loop skips them."""
        leader = self.leader
        leader.applied_index = max(leader.applied_index, leader.commit_index)

    def _apply_committed(self, replica: Replica) -> None:
        """Replay committed-but-unapplied entries onto one replica's DBMS."""
        while replica.applied_index < min(
            replica.commit_index, len(replica.log)
        ):
            entry = replica.log[replica.applied_index]
            self._apply_entry(replica, entry)
            replica.applied_index = entry.index

    def _apply_entry(self, replica: Replica, entry: LogEntry) -> None:
        gateway = replica.gateway
        if entry.kind == "write":
            for sql_text in entry.statements:
                gateway.apply_replicated(sql_text)
        elif entry.kind == "prepare":
            replica.pending_prepares[entry.global_id] = entry.statements
        elif entry.kind in ("commit", "abort"):
            statements = replica.pending_prepares.pop(
                entry.global_id, entry.statements
            )
            if gateway.has_branch(entry.global_id):
                # This replica led when the branch ran (it may be a healed
                # ex-leader): resolve the live local branch itself.
                gateway.resolve_replicated(entry.global_id, entry.kind)
            elif entry.kind == "commit":
                for sql_text in statements:
                    gateway.apply_replicated(sql_text)

    # ------------------------------------------------------------------
    # Elections
    # ------------------------------------------------------------------

    def elect(
        self,
        trace: MessageTrace | None = None,
        suspect: str | None = None,
    ) -> Replica:
        """Run a leader election; returns the new leader.

        ``suspect`` (the replica site that just failed an operation) does
        not stand as a candidate.  Each round draws per-replica election
        timeouts from the seeded RNG; the earliest timer fires first and
        that replica campaigns.  The winning timeout is charged to the
        simulated clock (and the caller's trace) — that *is* the failover
        latency the benchmark measures.  Raises
        :class:`~repro.errors.MessageDropped` when no candidate can reach
        a majority within :data:`MAX_ELECTION_ROUNDS` (the group is down).
        """
        with self._mutex:
            self.elections_run += 1
            started_s = self.network.now_s
            for _ in range(MAX_ELECTION_ROUNDS):
                self._chaos("mid_election")
                draws = sorted(
                    (
                        self._rng.uniform(*self.election_timeout_s),
                        replica.index,
                        replica,
                    )
                    for replica in self.replicas
                    if replica.site != suspect
                )
                if not draws:
                    break
                timeout = draws[0][0]
                self.network.advance(timeout)
                if trace is not None:
                    trace.add_compute(timeout)
                for _, _, candidate in draws:
                    if self._campaign(candidate, trace):
                        self.failovers += 1
                        self.last_failover_s = (
                            self.network.now_s - started_s
                        )
                        self.obs.metrics.inc("raft.failover", group=self.site)
                        self.obs.metrics.observe(
                            "raft.failover_latency_s",
                            self.last_failover_s,
                            group=self.site,
                        )
                        return self.leader
            raise MessageDropped(
                f"replica group {self.site!r}: no leader electable "
                f"(majority unreachable)",
                destination=self.site,
                purpose="raft.vote_req",
                reason="no quorum",
            )

    def _campaign(
        self, candidate: Replica, trace: MessageTrace | None
    ) -> bool:
        term = max(r.term for r in self.replicas) + 1
        candidate.term = term
        candidate.role = "candidate"
        candidate.voted_for[term] = candidate.site
        votes = 1
        for peer in self.replicas:
            if peer is candidate:
                continue
            try:
                self.network.send(
                    candidate.site, peer.site, 24, "raft.vote_req", trace
                )
            except MessageDropped:
                continue
            if not self._grant_vote(peer, candidate, term):
                continue
            try:
                self.network.send(
                    peer.site, candidate.site, 16, "raft.vote_resp", trace
                )
            except MessageDropped:
                continue  # granted but the grant was lost: not counted
            votes += 1
        if votes < self.majority():
            candidate.role = "follower"
            return False
        self._become_leader(candidate, term, votes)
        return True

    def _grant_vote(
        self, peer: Replica, candidate: Replica, term: int
    ) -> bool:
        if term < peer.term:
            return False
        if term > peer.term:
            peer.term = term
        voted = peer.voted_for.get(term)
        if voted is not None and voted != candidate.site:
            return False
        # Leader completeness: never elect a candidate whose log is
        # behind — a majority-committed entry lives on some majority
        # member, and that member refuses this vote.
        if candidate.last_log() < peer.last_log():
            return False
        peer.voted_for[term] = candidate.site
        return True

    def _become_leader(
        self, candidate: Replica, term: int, votes: int
    ) -> None:
        previous = self.elections.get(term)
        if previous is not None and previous != candidate.site:
            self.violations.append(
                f"group {self.site}: two leaders for term {term}: "
                f"{previous} and {candidate.site}"
            )
        self.elections[term] = candidate.site
        for replica in self.replicas:
            replica.role = "follower"
        candidate.role = "leader"
        self.leader_index = candidate.index
        self._last_heartbeat_s = self.network.now_s
        self.obs.metrics.inc("raft.election", group=self.site)
        self.obs.emit(
            "raft.election",
            sim_s=self.network.now_s,
            group=self.site,
            term=term,
            leader=candidate.site,
            votes=votes,
        )
        # The new leader re-drives its log: replicate the suffix to every
        # reachable follower, recompute the majority commit point, apply.
        self._replicate_suffix(candidate)
        self._apply_committed(candidate)
        self._materialize_prepared(candidate)
        self._set_gauges()

    def _replicate_suffix(self, leader: Replica) -> None:
        if len(self.replicas) == 1:
            return
        matched = [len(leader.log)]  # the leader's own copy
        for replica in self.replicas:
            if replica is leader:
                continue
            if self._sync_follower(replica, leader):
                matched.append(len(replica.log))
            else:
                matched.append(0)
        matched.sort(reverse=True)
        quorum_index = matched[self.majority() - 1]
        if quorum_index > leader.commit_index:
            self._advance_commit(leader, quorum_index)
            # Followers synced *before* the advance: announce the moved
            # commit index so they apply the re-driven suffix now.
            for replica in self.replicas:
                if replica is leader:
                    continue
                try:
                    self.network.send(
                        leader.site, replica.site, 16, "raft.commit"
                    )
                except MessageDropped:
                    continue
                replica.commit_index = min(
                    leader.commit_index, len(replica.log)
                )
                self._apply_committed(replica)

    def _materialize_prepared(self, leader: Replica) -> None:
        """Re-create in-doubt prepared branches at a newly elected leader.

        A committed ``prepare`` entry without a committed decision means
        the coordinator may still decide either way; the new leader must
        hold a real PREPARED local branch so decision delivery (and
        presumed-abort recovery) resolve it exactly as they would have at
        the old leader — the group keeps voting consistently across the
        failover.
        """
        decided = {
            e.global_id for e in leader.log if e.kind in ("commit", "abort")
        }
        for global_id, statements in sorted(
            leader.pending_prepares.items(), key=lambda item: str(item[0])
        ):
            if global_id in decided:
                continue
            if leader.gateway.has_branch(global_id):
                continue
            leader.gateway.adopt_branch(global_id, statements)

    # ------------------------------------------------------------------
    # Heal / convergence
    # ------------------------------------------------------------------

    def catch_up(self) -> None:
        """Bring every reachable replica up to the leader's log and state.

        Called after a heal: replays the leader's log onto followers,
        applies everything committed, and resolves stray local branches a
        deposed leader may still hold for transactions whose entries did
        not survive (presumed abort — exactly what participant recovery
        would do).  Idempotent.
        """
        with self._mutex:
            leader = self.leader
            self._replicate_suffix(leader)
            self._apply_committed(leader)
            live_prepares = {
                e.global_id
                for e in leader.log[: leader.commit_index]
                if e.kind == "prepare"
            }
            for replica in self.replicas:
                if replica is leader:
                    continue
                for global_id in list(replica.gateway.branch_states()):
                    if global_id in live_prepares:
                        continue  # genuinely in doubt: the leader owns it
                    replica.gateway.resolve_replicated(global_id, "abort")
            self._set_gauges()
