"""Raft-style replica groups for MYRIAD component sites.

See :mod:`repro.replication.raft` for the consensus layer and
:mod:`repro.replication.router` for the gateway-facing wrapper.
"""

from repro.replication.raft import (
    ELECTION_TIMEOUT_S,
    HEARTBEAT_INTERVAL_S,
    MAX_ELECTION_ROUNDS,
    LogEntry,
    Replica,
    ReplicaGroup,
)
from repro.replication.router import (
    FAILOVER_RETRY_BACKOFF_S,
    FAILOVER_RETRY_LIMIT,
    ReplicaRouter,
    ReplicatedGateway,
)

__all__ = [
    "ELECTION_TIMEOUT_S",
    "FAILOVER_RETRY_BACKOFF_S",
    "FAILOVER_RETRY_LIMIT",
    "HEARTBEAT_INTERVAL_S",
    "MAX_ELECTION_ROUNDS",
    "LogEntry",
    "Replica",
    "ReplicaGroup",
    "ReplicaRouter",
    "ReplicatedGateway",
]
