"""Secondary indexes: hash (equality) and ordered (range).

Indexes map a key tuple (values of the indexed columns) to the RIDs holding
that key.  Postings are kept as sorted lists maintained with ``bisect`` at
insert time, so scans that need deterministic RID order (``IndexScan``)
read them straight through instead of re-sorting on every lookup.  The
ordered index additionally keeps keys in a sorted list and supports range
scans, standing in for the B-tree a disk system would use.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator

from repro.errors import IntegrityError
from repro.storage.types import null_first_key

Key = tuple[object, ...]


def _sort_key(key: Key) -> tuple:
    return tuple(null_first_key(value) for value in key)


class Index:
    """Base class: maintains key → sorted [rid] plus uniqueness enforcement."""

    def __init__(self, name: str, table: str, columns: list[str], unique: bool = False):
        self.name = name
        self.table = table
        self.columns = list(columns)
        self.unique = unique
        self._entries: dict[Key, list[int]] = {}

    def __len__(self) -> int:
        return sum(len(rids) for rids in self._entries.values())

    @property
    def distinct_keys(self) -> int:
        return len(self._entries)

    def insert(self, key: Key, rid: int) -> None:
        rids = self._entries.get(key)
        if rids is None:
            self._entries[key] = [rid]
            self._key_added(key)
            return
        if self.unique and not _key_has_null(key):
            raise IntegrityError(
                f"unique index {self.name!r} violation on key {key!r}"
            )
        position = bisect.bisect_left(rids, rid)
        if position < len(rids) and rids[position] == rid:
            return
        rids.insert(position, rid)

    def delete(self, key: Key, rid: int) -> None:
        rids = self._entries.get(key)
        if rids is None:
            return
        position = bisect.bisect_left(rids, rid)
        if position >= len(rids) or rids[position] != rid:
            return
        rids.pop(position)
        if not rids:
            del self._entries[key]
            self._key_removed(key)

    def lookup(self, key: Key) -> set[int]:
        """RIDs whose indexed columns equal ``key`` exactly."""
        return set(self._entries.get(key, ()))

    def sorted_rids(self, key: Key) -> tuple[int, ...]:
        """RIDs for ``key`` in ascending order — no per-call sort."""
        return tuple(self._entries.get(key, ()))

    def contains_key(self, key: Key) -> bool:
        return key in self._entries

    def _key_added(self, key: Key) -> None:  # pragma: no cover - hook
        pass

    def _key_removed(self, key: Key) -> None:  # pragma: no cover - hook
        pass


def _key_has_null(key: Key) -> bool:
    return any(value is None for value in key)


class HashIndex(Index):
    """Pure equality index — the dict in the base class is all it needs."""


class OrderedIndex(Index):
    """Equality plus range lookups over a sorted key list."""

    def __init__(self, name: str, table: str, columns: list[str], unique: bool = False):
        super().__init__(name, table, columns, unique)
        self._sorted_keys: list[tuple[tuple, Key]] = []  # (sortable, key)

    def _key_added(self, key: Key) -> None:
        item = (_sort_key(key), key)
        bisect.insort(self._sorted_keys, item)

    def _key_removed(self, key: Key) -> None:
        item = (_sort_key(key), key)
        position = bisect.bisect_left(self._sorted_keys, item)
        if (
            position < len(self._sorted_keys)
            and self._sorted_keys[position][1] == key
        ):
            self._sorted_keys.pop(position)

    def range_scan(
        self,
        low: Key | None = None,
        high: Key | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Key, set[int]]]:
        """Yield (key, rids) for keys in [low, high], skipping NULL keys.

        ``None`` bounds are open.  Keys containing NULL never match a range
        (SQL comparison semantics).
        """
        for key in self._range_keys(low, high, low_inclusive, high_inclusive):
            yield key, set(self._entries[key])

    def range_scan_sorted(
        self,
        low: Key | None = None,
        high: Key | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Key, tuple[int, ...]]]:
        """Like :meth:`range_scan` but yields RIDs in ascending order."""
        for key in self._range_keys(low, high, low_inclusive, high_inclusive):
            yield key, tuple(self._entries[key])

    def _range_keys(
        self,
        low: Key | None,
        high: Key | None,
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> Iterator[Key]:
        if low is None:
            start = 0
        else:
            sort_low = _sort_key(low)
            if low_inclusive:
                start = bisect.bisect_left(self._sorted_keys, (sort_low, low))
            else:
                start = bisect.bisect_right(self._sorted_keys, (sort_low, (_INFINITY,)))
        for position in range(start, len(self._sorted_keys)):
            sortable, key = self._sorted_keys[position]
            if high is not None:
                sort_high = _sort_key(high)
                if high_inclusive:
                    if sortable[: len(sort_high)] > sort_high:
                        return
                elif sortable[: len(sort_high)] >= sort_high:
                    return
            if _key_has_null(key):
                continue
            yield key


class _Infinity:
    """Sorts after every other value; used for exclusive lower bounds."""

    def __lt__(self, other: object) -> bool:
        return False

    def __gt__(self, other: object) -> bool:
        return True


_INFINITY = _Infinity()
