"""Secondary indexes: hash (equality) and ordered (range).

Indexes map a key tuple (values of the indexed columns) to the set of RIDs
holding that key.  The ordered index keeps keys in a sorted list maintained
with ``bisect`` and supports range scans, standing in for the B-tree a disk
system would use.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator

from repro.errors import IntegrityError
from repro.storage.types import null_first_key

Key = tuple[object, ...]


def _sort_key(key: Key) -> tuple:
    return tuple(null_first_key(value) for value in key)


class Index:
    """Base class: maintains key → {rid} plus uniqueness enforcement."""

    def __init__(self, name: str, table: str, columns: list[str], unique: bool = False):
        self.name = name
        self.table = table
        self.columns = list(columns)
        self.unique = unique
        self._entries: dict[Key, set[int]] = {}

    def __len__(self) -> int:
        return sum(len(rids) for rids in self._entries.values())

    @property
    def distinct_keys(self) -> int:
        return len(self._entries)

    def insert(self, key: Key, rid: int) -> None:
        rids = self._entries.get(key)
        if rids is None:
            self._entries[key] = {rid}
            self._key_added(key)
            return
        if self.unique and not _key_has_null(key):
            raise IntegrityError(
                f"unique index {self.name!r} violation on key {key!r}"
            )
        rids.add(rid)

    def delete(self, key: Key, rid: int) -> None:
        rids = self._entries.get(key)
        if rids is None or rid not in rids:
            return
        rids.discard(rid)
        if not rids:
            del self._entries[key]
            self._key_removed(key)

    def lookup(self, key: Key) -> set[int]:
        """RIDs whose indexed columns equal ``key`` exactly."""
        return set(self._entries.get(key, ()))

    def contains_key(self, key: Key) -> bool:
        return key in self._entries

    def _key_added(self, key: Key) -> None:  # pragma: no cover - hook
        pass

    def _key_removed(self, key: Key) -> None:  # pragma: no cover - hook
        pass


def _key_has_null(key: Key) -> bool:
    return any(value is None for value in key)


class HashIndex(Index):
    """Pure equality index — the dict in the base class is all it needs."""


class OrderedIndex(Index):
    """Equality plus range lookups over a sorted key list."""

    def __init__(self, name: str, table: str, columns: list[str], unique: bool = False):
        super().__init__(name, table, columns, unique)
        self._sorted_keys: list[tuple[tuple, Key]] = []  # (sortable, key)

    def _key_added(self, key: Key) -> None:
        item = (_sort_key(key), key)
        bisect.insort(self._sorted_keys, item)

    def _key_removed(self, key: Key) -> None:
        item = (_sort_key(key), key)
        position = bisect.bisect_left(self._sorted_keys, item)
        if (
            position < len(self._sorted_keys)
            and self._sorted_keys[position][1] == key
        ):
            self._sorted_keys.pop(position)

    def range_scan(
        self,
        low: Key | None = None,
        high: Key | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Key, set[int]]]:
        """Yield (key, rids) for keys in [low, high], skipping NULL keys.

        ``None`` bounds are open.  Keys containing NULL never match a range
        (SQL comparison semantics).
        """
        if low is None:
            start = 0
        else:
            sort_low = _sort_key(low)
            if low_inclusive:
                start = bisect.bisect_left(self._sorted_keys, (sort_low, low))
            else:
                start = bisect.bisect_right(self._sorted_keys, (sort_low, (_INFINITY,)))
        for position in range(start, len(self._sorted_keys)):
            sortable, key = self._sorted_keys[position]
            if high is not None:
                sort_high = _sort_key(high)
                if high_inclusive:
                    if sortable[: len(sort_high)] > sort_high:
                        return
                elif sortable[: len(sort_high)] >= sort_high:
                    return
            if _key_has_null(key):
                continue
            yield key, set(self._entries[key])


class _Infinity:
    """Sorts after every other value; used for exclusive lower bounds."""

    def __lt__(self, other: object) -> bool:
        return False

    def __gt__(self, other: object) -> bool:
        return True


_INFINITY = _Infinity()
