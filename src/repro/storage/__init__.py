"""In-memory relational storage engine.

Rows are tuples, relations are :class:`~repro.storage.table.Table` heaps with
hash/ordered indexes, and each component database keeps its relations in a
:class:`~repro.storage.catalog.Catalog`.
"""

from repro.storage.catalog import Catalog
from repro.storage.index import HashIndex, Index, OrderedIndex
from repro.storage.schema import Column, Row, TableSchema
from repro.storage.stats import ColumnStats, TableStats, analyze_table
from repro.storage.table import Table
from repro.storage.types import (
    BOOLEAN,
    DATE,
    DECIMAL,
    FLOAT,
    INTEGER,
    TIMESTAMP,
    VARCHAR,
    DataType,
    TypeKind,
    infer_type,
    null_first_key,
    tv_and,
    tv_not,
    tv_or,
)

__all__ = [
    "Catalog",
    "HashIndex",
    "Index",
    "OrderedIndex",
    "Column",
    "Row",
    "TableSchema",
    "ColumnStats",
    "TableStats",
    "analyze_table",
    "Table",
    "BOOLEAN",
    "DATE",
    "DECIMAL",
    "FLOAT",
    "INTEGER",
    "TIMESTAMP",
    "VARCHAR",
    "DataType",
    "TypeKind",
    "infer_type",
    "null_first_key",
    "tv_and",
    "tv_not",
    "tv_or",
]
