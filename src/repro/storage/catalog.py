"""Per-database catalog: tables, indexes, and cached statistics."""

from __future__ import annotations

from repro.errors import CatalogError
from repro.storage.schema import TableSchema
from repro.storage.stats import TableStats, analyze_table
from repro.storage.table import Table


class Catalog:
    """The system catalog of one component database.

    Table names are case-insensitive.  Statistics are computed lazily and
    invalidated on DDL; DML invalidation is the caller's choice via
    :meth:`invalidate_stats` (mirrors ANALYZE in real systems).
    """

    def __init__(self, database_name: str = "db"):
        self.database_name = database_name
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}

    # -- tables ----------------------------------------------------------

    def table_names(self) -> list[str]:
        return sorted(table.schema.name for table in self._tables.values())

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def create_table(self, schema: TableSchema, if_not_exists: bool = False) -> Table:
        key = schema.name.lower()
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise CatalogError(
                f"table {schema.name!r} already exists in {self.database_name!r}"
            )
        table = Table(schema)
        self._tables[key] = table
        return table

    def get_table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no table {name!r} in database {self.database_name!r}"
            ) from None

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(
                f"no table {name!r} in database {self.database_name!r}"
            )
        del self._tables[key]
        self._stats.pop(key, None)

    # -- statistics --------------------------------------------------------

    def stats(self, name: str, refresh: bool = False) -> TableStats:
        """Statistics for a table, computing and caching on first use."""
        key = name.lower()
        table = self.get_table(name)
        if refresh or key not in self._stats:
            self._stats[key] = analyze_table(table)
        return self._stats[key]

    def invalidate_stats(self, name: str | None = None) -> None:
        """Forget cached statistics (for one table, or all)."""
        if name is None:
            self._stats.clear()
        else:
            self._stats.pop(name.lower(), None)

    def analyze_all(self) -> None:
        """Recompute statistics for every table (ANALYZE equivalent)."""
        for key, table in self._tables.items():
            self._stats[key] = analyze_table(table)
