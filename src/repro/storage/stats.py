"""Table statistics used by the local planner and the global cost model.

MYRIAD's "full-fledged" optimizer needs per-relation cardinalities and
per-column selectivity estimates.  We compute classic System-R-style
statistics: row count, per-column distinct counts, min/max, null fraction,
and an equi-width histogram for numeric columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.schema import TableSchema
from repro.storage.table import Table

#: Default selectivities when statistics cannot answer (System R constants).
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.25


@dataclass
class ColumnStats:
    """Statistics for one column."""

    name: str
    distinct: int = 0
    null_count: int = 0
    minimum: object = None
    maximum: object = None
    histogram: list[int] = field(default_factory=list)  # equi-width buckets
    histogram_bounds: tuple[float, float] | None = None
    #: Average stored width of this column in bytes (0.0 = unknown, e.g.
    #: statistics loaded from an older snapshot without per-column widths).
    avg_bytes: float = 0.0

    def null_fraction(self, row_count: int) -> float:
        if row_count == 0:
            return 0.0
        return self.null_count / row_count

    def eq_selectivity(self, row_count: int) -> float:
        """Estimated fraction of rows matching ``col = const``."""
        if row_count == 0:
            return 0.0
        if self.distinct <= 0:
            return DEFAULT_EQ_SELECTIVITY
        return max(1.0 / self.distinct, 1.0 / max(row_count, 1))

    def range_selectivity(self, op: str, value: object, row_count: int) -> float:
        """Estimated fraction matching ``col <op> value`` for </<=/>/>=."""
        if row_count == 0:
            return 0.0
        if (
            self.histogram
            and self.histogram_bounds
            and isinstance(value, (int, float))
        ):
            low, high = self.histogram_bounds
            if high <= low:
                return DEFAULT_RANGE_SELECTIVITY
            total = sum(self.histogram)
            if total == 0:
                return DEFAULT_RANGE_SELECTIVITY
            width = (high - low) / len(self.histogram)
            below = 0.0
            for bucket_index, count in enumerate(self.histogram):
                bucket_low = low + bucket_index * width
                bucket_high = bucket_low + width
                if bucket_high <= value:
                    below += count
                elif bucket_low < value:
                    fraction = (value - bucket_low) / width
                    below += count * fraction
            fraction_below = below / total
            if op in ("<", "<="):
                return min(max(fraction_below, 0.0), 1.0)
            return min(max(1.0 - fraction_below, 0.0), 1.0)
        return DEFAULT_RANGE_SELECTIVITY


@dataclass
class TableStats:
    """Statistics for one relation."""

    table_name: str
    row_count: int = 0
    avg_row_bytes: float = 64.0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())


_HISTOGRAM_BUCKETS = 16


def _estimate_value_bytes(value: object) -> int:
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value) + 4
    return 16


def analyze_table(table: Table) -> TableStats:
    """Compute full statistics by scanning a table once."""
    schema: TableSchema = table.schema
    return analyze_rows(
        schema.name,
        schema.column_names,
        [row for _, row in table.scan()],
    )


def analyze_rows(
    table_name: str, column_names: list[str], rows: list[tuple]
) -> TableStats:
    """Statistics over an arbitrary rowset (e.g. an export view)."""
    stats = TableStats(table_name=table_name, row_count=len(rows))

    values_by_column: list[list[object]] = [[] for _ in column_names]
    bytes_by_column: list[int] = [0 for _ in column_names]
    total_bytes = 0
    for row in rows:
        for position, value in enumerate(row):
            values_by_column[position].append(value)
            value_bytes = _estimate_value_bytes(value)
            bytes_by_column[position] += value_bytes
            total_bytes += value_bytes
    if rows:
        stats.avg_row_bytes = total_bytes / len(rows)

    for position, name in enumerate(column_names):
        values = values_by_column[position]
        non_null = [v for v in values if v is not None]
        column_stats = ColumnStats(
            name=name,
            distinct=len(set(map(_hashable, non_null))),
            null_count=len(values) - len(non_null),
            avg_bytes=bytes_by_column[position] / len(rows) if rows else 0.0,
        )
        if non_null:
            try:
                column_stats.minimum = min(non_null)
                column_stats.maximum = max(non_null)
            except TypeError:  # mixed un-comparable types; skip min/max
                pass
            numeric = [
                float(v) for v in non_null if isinstance(v, (int, float)) and
                not isinstance(v, bool)
            ]
            if len(numeric) >= 2:
                low, high = min(numeric), max(numeric)
                if high > low:
                    histogram = [0] * _HISTOGRAM_BUCKETS
                    width = (high - low) / _HISTOGRAM_BUCKETS
                    for value in numeric:
                        bucket = min(
                            int((value - low) / width), _HISTOGRAM_BUCKETS - 1
                        )
                        histogram[bucket] += 1
                    column_stats.histogram = histogram
                    column_stats.histogram_bounds = (low, high)
        stats.columns[name.lower()] = column_stats
    return stats


def _hashable(value: object) -> object:
    if isinstance(value, (list, dict, set)):  # pragma: no cover - defensive
        return str(value)
    return value
