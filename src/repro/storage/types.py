"""SQL value and type system.

Values are plain Python objects (``int``, ``float``, ``decimal.Decimal``,
``str``, ``bool``, ``datetime.date``, ``datetime.datetime``, and ``None`` for
SQL NULL).  :class:`DataType` carries the SQL-level type identity used for
schema validation, casting, and gateway type mapping.

Three-valued logic lives here as the tiny functions :func:`tv_and`,
:func:`tv_or`, :func:`tv_not` operating on ``True``/``False``/``None``.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass
from decimal import Decimal, InvalidOperation

from repro.errors import SQLTypeError


class TypeKind(enum.Enum):
    """Canonical SQL type families supported by the engine."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    DECIMAL = "DECIMAL"
    VARCHAR = "VARCHAR"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"
    TIMESTAMP = "TIMESTAMP"
    #: Pass-through type for federation temp tables holding computed
    #: columns (shipped aggregates) whose type is only known dynamically.
    ANY = "ANY"


#: Dialect/global spellings → canonical type kind.
_TYPE_ALIASES: dict[str, TypeKind] = {
    "INT": TypeKind.INTEGER,
    "INTEGER": TypeKind.INTEGER,
    "SMALLINT": TypeKind.INTEGER,
    "BIGINT": TypeKind.INTEGER,
    "FLOAT": TypeKind.FLOAT,
    "DOUBLE": TypeKind.FLOAT,
    "REAL": TypeKind.FLOAT,
    "DECIMAL": TypeKind.DECIMAL,
    "NUMERIC": TypeKind.DECIMAL,
    "NUMBER": TypeKind.DECIMAL,
    "CHAR": TypeKind.VARCHAR,
    "VARCHAR": TypeKind.VARCHAR,
    "VARCHAR2": TypeKind.VARCHAR,
    "TEXT": TypeKind.VARCHAR,
    "STRING": TypeKind.VARCHAR,
    "BOOLEAN": TypeKind.BOOLEAN,
    "BOOL": TypeKind.BOOLEAN,
    "DATE": TypeKind.DATE,
    "TIMESTAMP": TypeKind.TIMESTAMP,
    "DATETIME": TypeKind.TIMESTAMP,
    "ANY": TypeKind.ANY,
}


@dataclass(frozen=True)
class DataType:
    """A concrete SQL type: kind plus optional length/precision parameters."""

    kind: TypeKind
    params: tuple[int, ...] = ()

    @classmethod
    def from_name(cls, name: str, params: tuple[int, ...] = ()) -> "DataType":
        """Resolve a (possibly dialect-specific) type spelling.

        Accepts embedded parameters too: ``VARCHAR(40)``.
        """
        text = name.strip().upper()
        if "(" in text and text.endswith(")"):
            base, _, rest = text.partition("(")
            try:
                params = tuple(int(p) for p in rest[:-1].split(","))
            except ValueError:
                raise SQLTypeError(f"bad type parameters in {name!r}") from None
            text = base.strip()
        kind = _TYPE_ALIASES.get(text)
        if kind is None:
            raise SQLTypeError(f"unknown type name {name!r}")
        # NUMBER(1) is how the Oracle dialect spells BOOLEAN; keep it DECIMAL
        # here — the gateway layer decides how to interpret it.
        return cls(kind, params)

    @property
    def name(self) -> str:
        if self.params:
            return f"{self.kind.value}({','.join(str(p) for p in self.params)})"
        return self.kind.value

    # -- value handling -----------------------------------------------

    def validate(self, value: object) -> object:
        """Coerce ``value`` into this type, raising SQLTypeError if impossible.

        NULL (None) is always accepted here; NOT NULL enforcement is the
        schema's job.
        """
        if value is None:
            return None
        if self.kind is TypeKind.ANY:
            return value
        try:
            coerce = _COERCERS[self.kind]
        except KeyError:  # pragma: no cover - all kinds covered
            raise SQLTypeError(f"unsupported type {self.kind}") from None
        result = coerce(value)
        if (
            self.kind is TypeKind.VARCHAR
            and self.params
            and len(result) > self.params[0]
        ):
            raise SQLTypeError(
                f"value {result!r} exceeds {self.name} length {self.params[0]}"
            )
        return result

    def is_numeric(self) -> bool:
        return self.kind in (TypeKind.INTEGER, TypeKind.FLOAT, TypeKind.DECIMAL)

    def __str__(self) -> str:
        return self.name


# Convenience singletons used throughout the codebase and tests.
ANY = DataType(TypeKind.ANY)
INTEGER = DataType(TypeKind.INTEGER)
FLOAT = DataType(TypeKind.FLOAT)
DECIMAL = DataType(TypeKind.DECIMAL)
VARCHAR = DataType(TypeKind.VARCHAR)
BOOLEAN = DataType(TypeKind.BOOLEAN)
DATE = DataType(TypeKind.DATE)
TIMESTAMP = DataType(TypeKind.TIMESTAMP)


def _coerce_integer(value: object) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value != int(value):
            raise SQLTypeError(f"cannot store non-integral {value!r} as INTEGER")
        return int(value)
    if isinstance(value, Decimal):
        if value != value.to_integral_value():
            raise SQLTypeError(f"cannot store non-integral {value!r} as INTEGER")
        return int(value)
    if isinstance(value, str):
        try:
            return int(value.strip())
        except ValueError:
            raise SQLTypeError(f"cannot convert {value!r} to INTEGER") from None
    raise SQLTypeError(f"cannot convert {type(value).__name__} to INTEGER")


def _coerce_float(value: object) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, Decimal):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            raise SQLTypeError(f"cannot convert {value!r} to FLOAT") from None
    raise SQLTypeError(f"cannot convert {type(value).__name__} to FLOAT")


def _coerce_decimal(value: object) -> Decimal:
    if isinstance(value, bool):
        return Decimal(int(value))
    if isinstance(value, Decimal):
        return value
    if isinstance(value, int):
        return Decimal(value)
    if isinstance(value, float):
        return Decimal(str(value))
    if isinstance(value, str):
        try:
            return Decimal(value.strip())
        except InvalidOperation:
            raise SQLTypeError(f"cannot convert {value!r} to DECIMAL") from None
    raise SQLTypeError(f"cannot convert {type(value).__name__} to DECIMAL")


def _coerce_varchar(value: object) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float, Decimal)):
        return str(value)
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    raise SQLTypeError(f"cannot convert {type(value).__name__} to VARCHAR")


def _coerce_boolean(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("t", "true", "1", "yes", "y"):
            return True
        if lowered in ("f", "false", "0", "no", "n"):
            return False
    raise SQLTypeError(f"cannot convert {value!r} to BOOLEAN")


def _coerce_date(value: object) -> datetime.date:
    if isinstance(value, datetime.datetime):
        return value.date()
    if isinstance(value, datetime.date):
        return value
    if isinstance(value, str):
        try:
            return datetime.date.fromisoformat(value.strip())
        except ValueError:
            raise SQLTypeError(f"cannot convert {value!r} to DATE") from None
    raise SQLTypeError(f"cannot convert {type(value).__name__} to DATE")


def _coerce_timestamp(value: object) -> datetime.datetime:
    if isinstance(value, datetime.datetime):
        return value
    if isinstance(value, datetime.date):
        return datetime.datetime(value.year, value.month, value.day)
    if isinstance(value, str):
        try:
            return datetime.datetime.fromisoformat(value.strip())
        except ValueError:
            raise SQLTypeError(f"cannot convert {value!r} to TIMESTAMP") from None
    raise SQLTypeError(f"cannot convert {type(value).__name__} to TIMESTAMP")


_COERCERS = {
    TypeKind.INTEGER: _coerce_integer,
    TypeKind.FLOAT: _coerce_float,
    TypeKind.DECIMAL: _coerce_decimal,
    TypeKind.VARCHAR: _coerce_varchar,
    TypeKind.BOOLEAN: _coerce_boolean,
    TypeKind.DATE: _coerce_date,
    TypeKind.TIMESTAMP: _coerce_timestamp,
}


def infer_type(value: object) -> DataType:
    """Infer a :class:`DataType` for a Python value (used for literals)."""
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, Decimal):
        return DECIMAL
    if isinstance(value, str):
        return VARCHAR
    if isinstance(value, datetime.datetime):
        return TIMESTAMP
    if isinstance(value, datetime.date):
        return DATE
    if value is None:
        return VARCHAR  # NULL literal: arbitrary; coercion fixes it up
    raise SQLTypeError(f"cannot infer SQL type for {type(value).__name__}")


# ---------------------------------------------------------------------------
# Three-valued logic
# ---------------------------------------------------------------------------


def tv_and(left: bool | None, right: bool | None) -> bool | None:
    """SQL AND over {TRUE, FALSE, NULL}."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def tv_or(left: bool | None, right: bool | None) -> bool | None:
    """SQL OR over {TRUE, FALSE, NULL}."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def tv_not(value: bool | None) -> bool | None:
    """SQL NOT over {TRUE, FALSE, NULL}."""
    if value is None:
        return None
    return not value


#: Sort key that orders NULLs first and handles mixed numeric types.
def null_first_key(value: object) -> tuple[int, object]:
    """Key function for sorting column values with NULLs first."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, Decimal):
        return (1, float(value))
    return (1, value)
