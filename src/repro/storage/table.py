"""Heap tables: row storage with RIDs, constraint checks, index maintenance."""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import CatalogError, IntegrityError
from repro.storage.index import HashIndex, Index, OrderedIndex
from repro.storage.schema import Row, TableSchema


class Table:
    """An in-memory heap of rows addressed by integer RIDs.

    Responsibilities:

    - assign RIDs and store rows (tuples positionally matching the schema)
    - enforce the primary key (via an implicit unique index) and NOT NULL
    - keep secondary indexes in sync on every mutation

    Concurrency control is *not* handled here — the lock manager in
    :mod:`repro.concurrency` serialises access above this layer, which is
    how the real MYRIAD relied on each component DBMS's own 2PL.

    For snapshot readers (which bypass the lock manager entirely) the table
    additionally carries MVCC side state maintained by the transaction
    layer: ``versions`` maps RID → immutable chain of committed
    ``(commit_ts, value)`` entries, and ``uncommitted`` maps RID → ``(owner
    txn id, last committed value)`` while a writer's change is in flight.
    See :mod:`repro.concurrency.mvcc`.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows: dict[int, Row] = {}
        self.next_rid = 1
        self.indexes: dict[str, Index] = {}
        #: RID → committed version chain (ascending commit-ts tuples).
        self.versions: dict[int, tuple] = {}
        #: RID → (writer txn id, last committed value) pending markers.
        self.uncommitted: dict[int, tuple] = {}
        if schema.primary_key:
            self.create_index(
                f"__pk_{schema.name}", schema.primary_key, unique=True, ordered=True
            )

    # -- basic properties -------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    # -- scanning ---------------------------------------------------------

    def scan(self) -> Iterator[tuple[int, Row]]:
        """Yield (rid, row) pairs in insertion order."""
        yield from list(self.rows.items())

    def get(self, rid: int) -> Row:
        try:
            return self.rows[rid]
        except KeyError:
            raise IntegrityError(f"no row with rid {rid} in {self.name!r}") from None

    def fetch_by_key(self, key: Row) -> tuple[int, Row] | None:
        """Primary-key point lookup; None if absent or table has no PK."""
        if not self.schema.primary_key:
            return None
        index = self.indexes.get(f"__pk_{self.schema.name}")
        if index is None:  # pragma: no cover - PK index always exists
            return None
        rids = index.lookup(tuple(key))
        if not rids:
            return None
        rid = next(iter(rids))
        return rid, self.rows[rid]

    # -- mutation ----------------------------------------------------------

    def insert(
        self, values: list[object] | Row, pending_owner: object | None = None
    ) -> int:
        """Validate and insert one row; returns its RID.

        ``pending_owner`` (a transaction id) registers the pending marker
        *before* the row becomes visible in the heap, so snapshot readers
        never observe the uncommitted insert.
        """
        row = self.schema.validate_row(values)
        key = self.schema.key_of(row)
        if key is not None and any(value is None for value in key):
            raise IntegrityError(
                f"primary key of {self.name!r} cannot contain NULL"
            )
        rid = self.next_rid
        self.next_rid += 1
        # Insert into indexes first so unique violations abort cleanly.
        inserted: list[Index] = []
        try:
            for index in self.indexes.values():
                index.insert(self._index_key(index, row), rid)
                inserted.append(index)
        except IntegrityError:
            for index in inserted:
                index.delete(self._index_key(index, row), rid)
            raise
        if pending_owner is not None:
            # Fresh RID: committed value is "absent".
            self.uncommitted[rid] = (pending_owner, None)
        self.rows[rid] = row
        return rid

    def delete(self, rid: int) -> Row:
        """Remove a row by RID; returns the old row (for undo logging)."""
        row = self.get(rid)
        for index in self.indexes.values():
            index.delete(self._index_key(index, row), rid)
        del self.rows[rid]
        return row

    def update(self, rid: int, new_values: list[object] | Row) -> tuple[Row, Row]:
        """Replace the row at ``rid``; returns (old_row, new_row)."""
        old_row = self.get(rid)
        new_row = self.schema.validate_row(new_values)
        key = self.schema.key_of(new_row)
        if key is not None and any(value is None for value in key):
            raise IntegrityError(
                f"primary key of {self.name!r} cannot contain NULL"
            )
        for index in self.indexes.values():
            index.delete(self._index_key(index, old_row), rid)
        try:
            inserted: list[Index] = []
            try:
                for index in self.indexes.values():
                    index.insert(self._index_key(index, new_row), rid)
                    inserted.append(index)
            except IntegrityError:
                for index in inserted:
                    index.delete(self._index_key(index, new_row), rid)
                raise
        except IntegrityError:
            for index in self.indexes.values():  # restore old entries
                index.insert(self._index_key(index, old_row), rid)
            raise
        self.rows[rid] = new_row
        return old_row, new_row

    def restore(self, rid: int, row: Row) -> None:
        """Re-insert a row under a specific RID (transaction undo path)."""
        if rid in self.rows:
            raise IntegrityError(f"rid {rid} already present in {self.name!r}")
        for index in self.indexes.values():
            index.insert(self._index_key(index, row), rid)
        self.rows[rid] = row
        self.next_rid = max(self.next_rid, rid + 1)

    def mark_pending(self, rid: int, owner: object) -> None:
        """Record the committed pre-image of ``rid`` before mutating it.

        Idempotent per RID: the first marker (set by the single uncommitted
        writer the exclusive table lock allows) wins, so a transaction
        touching the same RID repeatedly keeps the true committed value.
        """
        if rid not in self.uncommitted:
            self.uncommitted[rid] = (owner, self.rows.get(rid))

    def clear_pending(self, rid: int) -> None:
        """Drop a pending marker (after the writer resolved and undid/won)."""
        self.uncommitted.pop(rid, None)

    def truncate(self) -> None:
        """Remove all rows (keeps schema and empty indexes).

        Not MVCC-safe: version chains and pending markers are discarded,
        so concurrent snapshot readers would observe the truncation.  Only
        used by workload resets, never under concurrent traffic.
        """
        self.rows.clear()
        self.versions.clear()
        self.uncommitted.clear()
        for name, index in list(self.indexes.items()):
            klass = type(index)
            self.indexes[name] = klass(
                index.name, index.table, index.columns, index.unique
            )

    # -- indexes -----------------------------------------------------------

    def create_index(
        self,
        name: str,
        columns: list[str],
        unique: bool = False,
        ordered: bool = True,
    ) -> Index:
        """Build a new index over existing rows."""
        if name in self.indexes:
            raise CatalogError(f"index {name!r} already exists on {self.name!r}")
        for column in columns:
            self.schema.column_index(column)  # validate
        klass = OrderedIndex if ordered else HashIndex
        index = klass(name, self.name, columns, unique)
        positions = [self.schema.column_index(c) for c in columns]
        for rid, row in self.rows.items():
            index.insert(tuple(row[p] for p in positions), rid)
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise CatalogError(f"no index {name!r} on table {self.name!r}")
        del self.indexes[name]

    def find_index(self, columns: list[str]) -> Index | None:
        """An index whose key is a prefix-match of ``columns``, if any."""
        wanted = [c.lower() for c in columns]
        for index in self.indexes.values():
            have = [c.lower() for c in index.columns]
            if have == wanted:
                return index
        return None

    def _index_key(self, index: Index, row: Row) -> tuple:
        positions = [self.schema.column_index(c) for c in index.columns]
        return tuple(row[p] for p in positions)
